//! Comparison and explanation of the observability artifacts the bench
//! harness writes: `BENCH_*.json` run reports and `TRACE_*.json` Chrome
//! trace files. This is the library behind the `incognito-report` binary:
//!
//! * [`BenchDoc::load`] parses a `BENCH_*.json` report into workload
//!   parameters plus per-run counters and timings;
//! * [`diff`] pairs two reports run-by-run and yields per-metric deltas;
//! * [`gate`] turns a diff into a pass/fail verdict against a threshold —
//!   deterministic counters are always gated, wall-clock timings and
//!   allocation accounting only on request (timings are noisy on shared
//!   CI hardware; memory gets its own, wider tolerance band because peak
//!   live bytes move with allocator and thread-scheduling details);
//! * [`explain_trace`] folds a span tree back into the paper's Figure 12
//!   style per-iteration table plus a self-time profile.
//!
//! Everything round-trips through [`incognito_obs::Json`]; no external
//! parser is involved.

use std::fmt;
use std::fs;
use std::path::Path;

use incognito_obs::trace::{build_tree, profile, TraceRecord};
use incognito_obs::Json;

/// Top-level report fields that identify the *recording*, not the
/// workload: two reports may differ in all of these and still be
/// comparable. `memory` is the process allocation summary — a
/// measurement, not a parameter.
const VOLATILE_FIELDS: [&str; 6] =
    ["report_version", "tool_version", "unix_time", "git", "runs", "memory"];

/// The per-run `memory` fields that are comparable across reports. Flows
/// that depend on how long the process ran before the run (live bytes at
/// run end) are excluded; peak footprint and allocation count are the
/// regression signals.
const MEMORY_METRICS: [&str; 3] = ["peak_live_bytes", "allocated_bytes", "allocs"];

/// Identity of one recorded run inside a report: algorithm label,
/// dataset, `k`, and quasi-identifier arity. Reports are paired run-by-run
/// on this key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Algorithm label (the paper's legend name, e.g. `"Basic Incognito"`).
    pub label: String,
    /// Dataset name (`"adults"`, `"landsend"`, ...).
    pub dataset: String,
    /// The k of k-anonymity.
    pub k: i64,
    /// Number of quasi-identifier attributes.
    pub qi_arity: i64,
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} k={} qi={}", self.label, self.dataset, self.k, self.qi_arity)
    }
}

/// One run's comparable metrics: integer counters (deterministic — node
/// checks, marks, scans) and float timings (noisy — wall clock, phases).
#[derive(Debug, Clone)]
pub struct Run {
    /// Who ran on what.
    pub key: RunKey,
    /// Deterministic counters, e.g. `stats.nodes_checked`.
    pub counters: Vec<(String, i64)>,
    /// Wall-clock timings in seconds, e.g. `timings.scan_secs`.
    pub timings: Vec<(String, f64)>,
    /// Allocation accounting, e.g. `memory.peak_live_bytes` (see
    /// [`MEMORY_METRICS`]). Empty for reports written before the
    /// tracking allocator existed.
    pub memory: Vec<(String, i64)>,
}

/// A parsed `BENCH_*.json` report.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The report name (`"fig09_datasets"`, ...).
    pub name: String,
    /// Workload parameters: every top-level field that is not in
    /// [`VOLATILE_FIELDS`], serialized compactly. Two reports must agree
    /// on these to be gateable.
    pub workload: Vec<(String, String)>,
    /// The recorded runs, in file order.
    pub runs: Vec<Run>,
}

impl BenchDoc {
    /// Read and parse a report file.
    pub fn load(path: &Path) -> Result<BenchDoc, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchDoc::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Extract the comparable view of a parsed report.
    pub fn from_json(doc: &Json) -> Result<BenchDoc, String> {
        let fields = match doc {
            Json::Obj(fields) => fields,
            _ => return Err("report is not a JSON object".to_owned()),
        };
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("report has no name field")?
            .to_owned();
        let workload = fields
            .iter()
            .filter(|(k, _)| !VOLATILE_FIELDS.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.to_compact_string()))
            .collect();
        let mut runs = Vec::new();
        for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
            runs.push(run_from_json(run)?);
        }
        Ok(BenchDoc { name, workload, runs })
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(x) => Some(*x as f64),
        Json::Num(x) => Some(*x),
        _ => None,
    }
}

fn run_from_json(run: &Json) -> Result<Run, String> {
    let key = RunKey {
        label: run
            .get("label")
            .and_then(Json::as_str)
            .ok_or("run has no label field")?
            .to_owned(),
        dataset: run.get("dataset").and_then(Json::as_str).unwrap_or("").to_owned(),
        k: run.get("k").and_then(Json::as_int).unwrap_or(0),
        qi_arity: run.get("qi_arity").and_then(Json::as_int).unwrap_or(0),
    };
    let mut counters = Vec::new();
    for field in ["generalizations", "minimal_height"] {
        if let Some(x) = run.get(field).and_then(Json::as_int) {
            counters.push((field.to_owned(), x));
        }
    }
    if let Some(Json::Obj(stats)) = run.get("stats") {
        for (name, value) in stats {
            if let Some(x) = value.as_int() {
                counters.push((format!("stats.{name}"), x));
            }
        }
    }
    let mut timings = Vec::new();
    if let Some(x) = run.get("wall_secs").and_then(as_f64) {
        timings.push(("wall_secs".to_owned(), x));
    }
    if let Some(Json::Obj(phases)) = run.get("timings") {
        for (name, value) in phases {
            if let Some(x) = as_f64(value) {
                timings.push((format!("timings.{name}"), x));
            }
        }
    }
    let mut memory = Vec::new();
    if let Some(Json::Obj(mem)) = run.get("memory") {
        for (name, value) in mem {
            if MEMORY_METRICS.contains(&name.as_str()) {
                if let Some(x) = value.as_int() {
                    memory.push((format!("memory.{name}"), x));
                }
            }
        }
    }
    Ok(Run { key, counters, timings, memory })
}

/// One metric compared across two reports.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Which run the metric belongs to.
    pub key: RunKey,
    /// Metric name (`stats.nodes_checked`, `wall_secs`, ...).
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Relative change in percent, `None` when the baseline is zero.
    pub pct: Option<f64>,
    /// Timings are gated only on request; counters always.
    pub is_timing: bool,
    /// Allocation metrics are gated only on request, against their own
    /// (wider) threshold.
    pub is_memory: bool,
}

impl Delta {
    /// Did the metric get worse by more than `threshold_pct` percent?
    /// A zero baseline growing to a nonzero value always counts.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.new > self.old && self.pct.is_none_or(|p| p > threshold_pct)
    }
}

/// Pair two reports run-by-run (on [`RunKey`]) and compute a [`Delta`] for
/// every metric present on both sides. Runs or metrics present on only
/// one side are skipped here — [`gate`] treats missing *runs* as a
/// workload mismatch.
pub fn diff(old: &BenchDoc, new: &BenchDoc) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for old_run in &old.runs {
        let Some(new_run) = new.runs.iter().find(|r| r.key == old_run.key) else {
            continue;
        };
        for (metric, old_v) in &old_run.counters {
            if let Some((_, new_v)) = new_run.counters.iter().find(|(m, _)| m == metric) {
                deltas.push(make_delta(
                    &old_run.key,
                    metric,
                    *old_v as f64,
                    *new_v as f64,
                    false,
                    false,
                ));
            }
        }
        for (metric, old_v) in &old_run.timings {
            if let Some((_, new_v)) = new_run.timings.iter().find(|(m, _)| m == metric) {
                deltas.push(make_delta(&old_run.key, metric, *old_v, *new_v, true, false));
            }
        }
        for (metric, old_v) in &old_run.memory {
            if let Some((_, new_v)) = new_run.memory.iter().find(|(m, _)| m == metric) {
                deltas.push(make_delta(
                    &old_run.key,
                    metric,
                    *old_v as f64,
                    *new_v as f64,
                    false,
                    true,
                ));
            }
        }
    }
    deltas
}

fn make_delta(
    key: &RunKey,
    metric: &str,
    old: f64,
    new: f64,
    is_timing: bool,
    is_memory: bool,
) -> Delta {
    let pct = if old != 0.0 { Some((new - old) / old * 100.0) } else { None };
    Delta { key: key.clone(), metric: metric.to_owned(), old, new, pct, is_timing, is_memory }
}

/// Render deltas as an aligned text table. Timings are hidden unless
/// `show_timings` and memory metrics unless `show_memory`; unchanged
/// counters are always elided to keep the table focused on movement.
/// Memory rows judge "REGRESSED" against `memory_threshold_pct`,
/// everything else against `threshold_pct`.
pub fn render_diff(
    deltas: &[Delta],
    show_timings: bool,
    show_memory: bool,
    threshold_pct: f64,
    memory_threshold_pct: f64,
) -> String {
    let mut rows: Vec<[String; 5]> = Vec::new();
    for d in deltas {
        if d.is_timing && !show_timings {
            continue;
        }
        if d.is_memory && !show_memory {
            continue;
        }
        if !d.is_timing && d.old == d.new {
            continue;
        }
        let fmt_v = |v: f64| {
            if d.is_timing { format!("{v:.6}") } else { format!("{}", v as i64) }
        };
        let pct = match d.pct {
            Some(p) => format!("{p:+.1}%"),
            None if d.new == d.old => "=".to_owned(),
            None => "new".to_owned(),
        };
        let verdict = if d.regressed(if d.is_memory { memory_threshold_pct } else { threshold_pct })
        {
            "REGRESSED"
        } else if d.new < d.old {
            "improved"
        } else {
            ""
        };
        rows.push([
            format!("{} {}", d.key, d.metric),
            fmt_v(d.old),
            fmt_v(d.new),
            pct,
            verdict.to_owned(),
        ]);
    }
    if rows.is_empty() {
        return "no metric movement\n".to_owned();
    }
    let headers = ["run / metric", "old", "new", "delta", ""];
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[&str]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Left-align the name column, right-align numbers.
            let pad = w.saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, &headers);
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        line(&mut out, &cells);
    }
    out
}

/// The verdict of [`gate`].
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Every compared metric.
    pub deltas: Vec<Delta>,
    /// The subset of gated metrics that regressed past the threshold.
    pub regressions: Vec<Delta>,
}

/// What [`gate`] checks and how hard.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Regression tolerance for counters (and timings) in percent.
    pub threshold_pct: f64,
    /// Gate wall-clock timings (noisy on shared hardware; off by default).
    pub gate_timings: bool,
    /// Gate allocation metrics (`memory.peak_live_bytes` etc.).
    pub gate_memory: bool,
    /// Regression tolerance for allocation metrics. Wider than the
    /// counter threshold: peak live bytes move with allocator layout and
    /// thread scheduling, not just with algorithmic behavior.
    pub memory_threshold_pct: f64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            threshold_pct: 5.0,
            gate_timings: false,
            gate_memory: false,
            memory_threshold_pct: 25.0,
        }
    }
}

impl GateConfig {
    /// The threshold that applies to `d`.
    pub fn threshold_for(&self, d: &Delta) -> f64 {
        if d.is_memory { self.memory_threshold_pct } else { self.threshold_pct }
    }

    fn gated(&self, d: &Delta) -> bool {
        if d.is_timing {
            self.gate_timings
        } else if d.is_memory {
            self.gate_memory
        } else {
            true
        }
    }
}

/// Compare a candidate report against a committed baseline. Returns
/// `Err` — a *mismatch*, distinct from a regression — when the two
/// reports describe different workloads: different report name, different
/// workload parameters, or baseline runs absent from the candidate.
/// Counters are always gated; timings only when [`GateConfig::gate_timings`]
/// and allocation metrics only when [`GateConfig::gate_memory`] (against
/// [`GateConfig::memory_threshold_pct`]).
pub fn gate(old: &BenchDoc, new: &BenchDoc, cfg: &GateConfig) -> Result<GateReport, String> {
    if old.name != new.name {
        return Err(format!("report name mismatch: baseline {:?} vs candidate {:?}", old.name, new.name));
    }
    for (param, old_v) in &old.workload {
        match new.workload.iter().find(|(p, _)| p == param) {
            Some((_, new_v)) if new_v == old_v => {}
            Some((_, new_v)) => {
                return Err(format!(
                    "workload mismatch on {param}: baseline {old_v} vs candidate {new_v} \
                     (not comparable; regenerate the baseline)"
                ));
            }
            None => return Err(format!("workload parameter {param} missing from candidate")),
        }
    }
    for run in &old.runs {
        if !new.runs.iter().any(|r| r.key == run.key) {
            return Err(format!("baseline run missing from candidate: {}", run.key));
        }
    }
    let deltas = diff(old, new);
    let regressions = deltas
        .iter()
        .filter(|d| cfg.gated(d) && d.regressed(cfg.threshold_for(d)))
        .cloned()
        .collect();
    Ok(GateReport { deltas, regressions })
}

/// Load a `TRACE_*.json` Chrome trace file back into span records.
pub fn load_trace(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    incognito_obs::trace::from_chrome_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

fn arg_int(r: &TraceRecord, key: &str) -> Option<i64> {
    r.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_int())
}

fn arg_str<'a>(r: &'a TraceRecord, key: &str) -> Option<&'a str> {
    r.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_str())
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Fold a span tree back into a per-iteration search-plan table (the
/// explain plan the `--trace` flag captured) followed by a self-time
/// profile. Understands both the in-memory engine's span names
/// (`iteration`/`check`) and the SQL path's (`sql.iteration`/`sql.check`).
pub fn explain_trace(records: &[TraceRecord]) -> String {
    let forest = build_tree(records);
    let mut out = String::new();

    // Per-iteration rows, in span-open order. Each "search" root owns its
    // iterations; label the section with the search's algo/k args.
    let mut rows: Vec<[String; 9]> = Vec::new();
    let mut stack: Vec<&incognito_obs::trace::TraceNode> = forest.iter().rev().collect();
    while let Some(node) = stack.pop() {
        let r = &records[node.index];
        if r.name == "search" {
            let algo = arg_str(r, "algo").unwrap_or("?");
            let k = arg_int(r, "k").unwrap_or(0);
            rows.push([
                format!("— {algo} (k={k}) —"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        if r.name == "iteration" || r.name == "sql.iteration" {
            let mut by_source = [0i64; 4]; // scan, rollup, superroot, cube
            let mut anonymous = 0i64;
            for child in &node.children {
                let c = &records[child.index];
                if c.name != "check" && c.name != "sql.check" {
                    continue;
                }
                match arg_str(c, "via") {
                    Some("scan") => by_source[0] += 1,
                    Some("rollup") => by_source[1] += 1,
                    Some("superroot") => by_source[2] += 1,
                    Some("cube") => by_source[3] += 1,
                    _ => {}
                }
                if matches!(
                    c.args.iter().find(|(k, _)| k == "anonymous"),
                    Some((_, Json::Bool(true)))
                ) {
                    anonymous += 1;
                }
            }
            rows.push([
                arg_int(r, "arity").map_or_else(|| "?".into(), |v| v.to_string()),
                arg_int(r, "candidates").map_or_else(|| "?".into(), |v| v.to_string()),
                arg_int(r, "edges").map_or_else(|| "?".into(), |v| v.to_string()),
                by_source[0].to_string(),
                by_source[1].to_string(),
                (by_source[2] + by_source[3]).to_string(),
                anonymous.to_string(),
                arg_int(r, "survivors").map_or_else(|| "?".into(), |v| v.to_string()),
                fmt_ns(r.dur_ns),
            ]);
        }
        stack.extend(node.children.iter().rev());
    }

    let headers = ["iter", "cands", "edges", "scan", "rollup", "other", "anon", "surv", "wall"];
    if rows.is_empty() {
        out.push_str("no iteration spans in trace\n");
    } else {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        for row in &rows {
            // Section-header rows span the table; skip them when sizing.
            if row[1].is_empty() {
                continue;
            }
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        for (i, (h, w)) in headers.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&" ".repeat(w.saturating_sub(h.chars().count())));
            out.push_str(h);
        }
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rows {
            if row[1].is_empty() {
                out.push_str(&row[0]);
                out.push('\n');
                continue;
            }
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                out.push_str(cell);
            }
            out.push('\n');
        }
    }

    // Self-time profile: where did the wall clock actually go?
    let prof = profile(records);
    if !prof.is_empty() {
        out.push_str("\nspan profile (by total time):\n");
        let mut prows: Vec<[String; 5]> = Vec::new();
        for p in prof.iter().take(12) {
            prows.push([
                p.name.clone(),
                p.count.to_string(),
                fmt_ns(p.total_ns),
                fmt_ns(p.self_ns),
                fmt_ns(p.max_ns),
            ]);
        }
        let pheaders = ["span", "count", "total", "self", "max"];
        let mut widths: Vec<usize> = pheaders.iter().map(|h| h.chars().count()).collect();
        for row in &prows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        for (i, (h, w)) in pheaders.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(h);
                out.push_str(&" ".repeat(w.saturating_sub(h.chars().count())));
            } else {
                out.push_str(&" ".repeat(w.saturating_sub(h.chars().count())));
                out.push_str(h);
            }
        }
        out.push('\n');
        for row in &prows {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                } else {
                    out.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                    out.push_str(cell);
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_with_peak(
        name: &str,
        rows: i64,
        nodes_checked: i64,
        wall: f64,
        peak: i64,
    ) -> BenchDoc {
        let mut run = Json::obj();
        run.set("label", "Basic Incognito");
        run.set("dataset", "adults");
        run.set("k", 2i64);
        run.set("qi_arity", 5i64);
        run.set("wall_secs", wall);
        run.set("generalizations", 65i64);
        let mut stats = Json::obj();
        stats.set("nodes_checked", nodes_checked);
        stats.set("table_scans", 80i64);
        run.set("stats", stats);
        let mut mem = Json::obj();
        mem.set("peak_live_bytes", peak);
        mem.set("live_bytes", 64i64);
        mem.set("allocated_bytes", 4 * peak);
        mem.set("allocs", 5_000i64);
        run.set("memory", mem);
        let mut d = Json::obj();
        d.set("name", name);
        d.set("rows_adults", rows);
        d.set("runs", Json::Arr(vec![run]));
        d.set("memory", Json::obj());
        BenchDoc::from_json(&d).unwrap()
    }

    fn doc(name: &str, rows: i64, nodes_checked: i64, wall: f64) -> BenchDoc {
        doc_with_peak(name, rows, nodes_checked, wall, 1_000_000)
    }

    fn cfg(threshold_pct: f64, gate_timings: bool) -> GateConfig {
        GateConfig { threshold_pct, gate_timings, ..GateConfig::default() }
    }

    #[test]
    fn identical_reports_gate_clean() {
        let a = doc("fig09", 1000, 116, 0.08);
        let g = gate(&a, &a, &cfg(5.0, true)).unwrap();
        assert!(g.regressions.is_empty());
        assert!(!g.deltas.is_empty());
    }

    #[test]
    fn counter_regression_past_threshold_fails() {
        let old = doc("fig09", 1000, 100, 0.08);
        let new = doc("fig09", 1000, 120, 0.08);
        let g = gate(&old, &new, &cfg(10.0, false)).unwrap();
        assert_eq!(g.regressions.len(), 1);
        assert_eq!(g.regressions[0].metric, "stats.nodes_checked");
        // Within threshold: 5% growth gated at 10% passes.
        let ok = gate(&old, &doc("fig09", 1000, 105, 0.08), &cfg(10.0, false)).unwrap();
        assert!(ok.regressions.is_empty());
        // Improvements never fail.
        let better = gate(&old, &doc("fig09", 1000, 80, 0.08), &cfg(10.0, false)).unwrap();
        assert!(better.regressions.is_empty());
    }

    #[test]
    fn timings_gated_only_on_request() {
        let old = doc("fig09", 1000, 100, 0.010);
        let new = doc("fig09", 1000, 100, 0.100);
        assert!(gate(&old, &new, &cfg(5.0, false)).unwrap().regressions.is_empty());
        let strict = gate(&old, &new, &cfg(5.0, true)).unwrap();
        assert_eq!(strict.regressions.len(), 1);
        assert_eq!(strict.regressions[0].metric, "wall_secs");
    }

    #[test]
    fn memory_gated_only_on_request_with_its_own_threshold() {
        let old = doc_with_peak("fig09", 1000, 100, 0.08, 1_000_000);
        let worse = doc_with_peak("fig09", 1000, 100, 0.08, 1_500_000);
        // +50% peak: invisible to the default gate...
        assert!(gate(&old, &worse, &cfg(5.0, false)).unwrap().regressions.is_empty());
        // ...but caught with --memory at the default 25% band. Both the
        // peak and the (4x-coupled) allocated_bytes flow regress.
        let mem = GateConfig { gate_memory: true, ..GateConfig::default() };
        let g = gate(&old, &worse, &mem).unwrap();
        let names: Vec<&str> = g.regressions.iter().map(|d| d.metric.as_str()).collect();
        assert!(names.contains(&"memory.peak_live_bytes"), "{names:?}");
        assert!(g.regressions.iter().all(|d| d.is_memory));
        // Growth inside the band passes: +10% at 25% tolerance.
        let mild = doc_with_peak("fig09", 1000, 100, 0.08, 1_100_000);
        assert!(gate(&old, &mild, &mem).unwrap().regressions.is_empty());
        // A baseline without memory sections gates clean against a
        // candidate that has them (metrics only on one side are skipped).
        let mut legacy = old.clone();
        for run in &mut legacy.runs {
            run.memory.clear();
        }
        assert!(gate(&legacy, &worse, &mem).unwrap().regressions.is_empty());
    }

    #[test]
    fn workload_mismatch_is_an_error_not_a_regression() {
        let old = doc("fig09", 1000, 100, 0.08);
        assert!(gate(&old, &doc("fig09", 2000, 100, 0.08), &cfg(5.0, false)).is_err());
        assert!(gate(&old, &doc("fig10", 1000, 100, 0.08), &cfg(5.0, false)).is_err());
    }

    #[test]
    fn diff_renders_moved_counters() {
        let old = doc("fig09", 1000, 100, 0.08);
        let new = doc_with_peak("fig09", 1000, 120, 0.09, 2_000_000);
        let text = render_diff(&diff(&old, &new), false, false, 5.0, 25.0);
        assert!(text.contains("stats.nodes_checked"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("+20.0%"), "{text}");
        assert!(!text.contains("wall_secs"), "timings hidden by default: {text}");
        assert!(!text.contains("memory."), "memory hidden by default: {text}");
        let with_mem = render_diff(&diff(&old, &new), false, true, 5.0, 25.0);
        assert!(with_mem.contains("memory.peak_live_bytes"), "{with_mem}");
    }

    #[test]
    fn explain_folds_iterations_and_checks() {
        let mk = |name: &str, seq, parent, dur, args: Vec<(&str, Json)>| TraceRecord {
            name: name.to_owned(),
            tid: 1,
            seq,
            parent,
            ts_ns: seq * 10,
            dur_ns: dur,
            args: args.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        };
        let records = vec![
            mk("search", 1, None, 5_000, vec![("algo", "basic".into()), ("k", Json::Int(2))]),
            mk(
                "iteration",
                2,
                Some(1),
                4_000,
                vec![
                    ("arity", Json::Int(1)),
                    ("candidates", Json::Int(3)),
                    ("edges", Json::Int(2)),
                    ("survivors", Json::Int(3)),
                ],
            ),
            mk(
                "check",
                3,
                Some(2),
                1_000,
                vec![("via", "scan".into()), ("anonymous", Json::Bool(true))],
            ),
            mk(
                "check",
                4,
                Some(2),
                1_000,
                vec![("via", "rollup".into()), ("anonymous", Json::Bool(false))],
            ),
        ];
        let text = explain_trace(&records);
        assert!(text.contains("basic"), "{text}");
        let row = text.lines().find(|l| l.trim_start().starts_with('1')).unwrap();
        // arity=1, 3 candidates, 2 edges, 1 scan, 1 rollup, 0 other, 1 anon, 3 survivors.
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(&cells[..8], &["1", "3", "2", "1", "1", "0", "1", "3"]);
        assert!(text.contains("span profile"), "{text}");
    }
}
