//! Umbrella crate for the Incognito reproduction.
//!
//! Re-exports the component crates under stable module names so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`hierarchy`] — domain generalization hierarchies and builders;
//! * [`table`] — the columnar table substrate, frequency sets, rollup;
//! * [`lattice`] — generalization lattices and a-priori candidate graphs;
//! * [`algo`] — the Incognito algorithm suite and baselines;
//! * [`models`] — the Section 5 taxonomy of recoding models;
//! * [`data`] — dataset generators (Patients, Adults, Lands End) and CSV IO;
//! * [`rel`] — the mini relational engine (the paper ran on SQL/DB2);
//! * [`star`] — the star schema (Figure 4) and the SQL-path Incognito;
//! * [`exec`] — the work-stealing executor behind `Config::with_threads`;
//! * [`obs`] — observability: metrics, spans, run reports, seeded PRNG;
//! * [`report`] — `BENCH_*.json` diffing, the perf-regression gate, and
//!   trace explain plans (the `incognito-report` binary's library).

#![forbid(unsafe_code)]

pub mod report;

pub use incognito_core as algo;
pub use incognito_data as data;
pub use incognito_exec as exec;
pub use incognito_hierarchy as hierarchy;
pub use incognito_lattice as lattice;
pub use incognito_models as models;
pub use incognito_obs as obs;
pub use incognito_rel as rel;
pub use incognito_star as star;
pub use incognito_table as table;
