//! `incognito-report` — compare, gate, and explain the observability
//! artifacts under `results/`.
//!
//! ```text
//! incognito-report diff <old.json> <new.json> [--timings] [--memory] [--threshold <pct>] [--mem-threshold <pct>]
//! incognito-report gate --baseline <dir> [--candidate <dir>] [--threshold <pct>] [--gate-timings] [--memory] [--mem-threshold <pct>]
//! incognito-report explain <trace.json>
//! ```
//!
//! * `diff` prints a per-metric delta table between two `BENCH_*.json`
//!   reports (counters by default; add `--timings` for wall clocks,
//!   `--memory` for allocation accounting).
//! * `gate` pairs every `BENCH_*.json` in the baseline directory with the
//!   same-named file in the candidate directory (default `results/`) and
//!   fails when any gated metric regresses past the threshold (default
//!   5%). Deterministic counters are always gated; timings only with
//!   `--gate-timings`; allocation metrics (`memory.peak_live_bytes`,
//!   `memory.allocated_bytes`, `memory.allocs`) only with `--memory`,
//!   against their own `--mem-threshold` band (default 25% — peaks move
//!   with allocator layout and scheduling, not just with the algorithm).
//! * `explain` folds a `TRACE_*.json` Chrome trace back into the
//!   per-iteration search plan and a span profile.
//!
//! Exit codes: 0 clean, 1 regression, 2 usage / IO / workload mismatch.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use incognito::report::{diff, explain_trace, gate, load_trace, render_diff, BenchDoc, GateConfig};

const USAGE: &str = "\
usage:
  incognito-report diff <old.json> <new.json> [--timings] [--memory] [--threshold <pct>] [--mem-threshold <pct>]
  incognito-report gate --baseline <dir> [--candidate <dir>] [--threshold <pct>] [--gate-timings] [--memory] [--mem-threshold <pct>]
  incognito-report explain <trace.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("incognito-report: {message}");
            ExitCode::from(2)
        }
    }
}

/// `Ok(true)` = exit 0, `Ok(false)` = regression (exit 1),
/// `Err` = usage / IO / mismatch (exit 2).
fn run(args: &[String]) -> Result<bool, String> {
    let threshold: f64 = match flag_value(args, "--threshold") {
        Some(v) => v.parse().map_err(|_| format!("bad --threshold value: {v}"))?,
        None => 5.0,
    };
    let mem_threshold: f64 = match flag_value(args, "--mem-threshold") {
        Some(v) => v.parse().map_err(|_| format!("bad --mem-threshold value: {v}"))?,
        None => 25.0,
    };
    match args.first().map(String::as_str) {
        Some("diff") => {
            let paths: Vec<&String> =
                args[1..].iter().filter(|a| !a.starts_with("--")).collect();
            let [old_path, new_path] = paths.as_slice() else {
                return Err(format!("diff needs exactly two report paths\n{USAGE}"));
            };
            let old = BenchDoc::load(Path::new(old_path))?;
            let new = BenchDoc::load(Path::new(new_path))?;
            print!(
                "{}",
                render_diff(
                    &diff(&old, &new),
                    has_flag(args, "--timings"),
                    has_flag(args, "--memory"),
                    threshold,
                    mem_threshold,
                )
            );
            Ok(true)
        }
        Some("gate") => {
            let baseline = PathBuf::from(
                flag_value(args, "--baseline").ok_or(format!("gate needs --baseline <dir>\n{USAGE}"))?,
            );
            let candidate =
                PathBuf::from(flag_value(args, "--candidate").unwrap_or_else(|| "results".to_owned()));
            let cfg = GateConfig {
                threshold_pct: threshold,
                gate_timings: has_flag(args, "--gate-timings"),
                gate_memory: has_flag(args, "--memory"),
                memory_threshold_pct: mem_threshold,
            };
            gate_dirs(&baseline, &candidate, &cfg)
        }
        Some("explain") => {
            let path = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or(format!("explain needs a trace path\n{USAGE}"))?;
            let records = load_trace(Path::new(path))?;
            print!("{}", explain_trace(&records));
            Ok(true)
        }
        _ => Err(USAGE.to_owned()),
    }
}

fn gate_dirs(baseline: &Path, candidate: &Path, cfg: &GateConfig) -> Result<bool, String> {
    let threshold = cfg.threshold_pct;
    let mut reports: Vec<PathBuf> = std::fs::read_dir(baseline)
        .map_err(|e| format!("cannot read baseline dir {}: {e}", baseline.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    reports.sort();
    if reports.is_empty() {
        return Err(format!("no BENCH_*.json reports in {}", baseline.display()));
    }
    let mut clean = true;
    for old_path in &reports {
        let file = old_path.file_name().unwrap();
        let new_path = candidate.join(file);
        let old = BenchDoc::load(old_path)?;
        let new = BenchDoc::load(&new_path)?;
        let report = gate(&old, &new, cfg)?;
        println!(
            "== {} (threshold {threshold}%, {} metrics, {} regressions) ==",
            file.to_string_lossy(),
            report.deltas.len(),
            report.regressions.len()
        );
        print!(
            "{}",
            render_diff(
                &report.deltas,
                cfg.gate_timings,
                cfg.gate_memory,
                threshold,
                cfg.memory_threshold_pct,
            )
        );
        if !report.regressions.is_empty() {
            clean = false;
            for r in &report.regressions {
                eprintln!(
                    "REGRESSION: {} {} went {} -> {} (threshold {}%)",
                    r.key,
                    r.metric,
                    r.old,
                    r.new,
                    cfg.threshold_for(r)
                );
            }
        }
    }
    if clean {
        println!("gate: PASS");
    } else {
        eprintln!("gate: FAIL");
    }
    Ok(clean)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
