//! Command-line front end: anonymize arbitrary CSV files with the
//! algorithms in this workspace.
//!
//! ```text
//! incognito describe  --spec schema.spec --data table.csv
//! incognito check     --spec schema.spec --data table.csv --qi Age,Sex,Zip --k 5
//! incognito anonymize --spec schema.spec --data table.csv --qi Age,Sex,Zip --k 5 \
//!                     [--max-suppress N] [--algorithm basic|superroots|cube|binary-search|datafly] \
//!                     [--select height|discernibility] [--list] [--output out.csv]
//! ```
//!
//! The spec format is documented in `incognito::data::spec` (one line per
//! attribute: `identity`, `suppression`, `round N`, `ranges W1,W2 [suppress]`,
//! or `taxonomy` with an indented tree).

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use incognito::algo::{
    binary_search::samarati_binary_search, cube::cube_incognito, datafly::datafly,
    incognito as run_incognito, AnonymizationResult, Config,
};
use incognito::data::csvio::write_csv;
use incognito::data::spec::{load_csv_with_spec, SchemaSpec};
use incognito::models::release::full_domain_release;
use incognito::table::{GroupSpec, Table};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == &format!("--{name}"))
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }
}

fn run() -> Result<(), String> {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return Err(USAGE.to_string());
    };
    let args = Args(argv.collect());
    match command.as_str() {
        "describe" => describe(&args),
        "check" => check(&args),
        "anonymize" => anonymize(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  incognito describe  --spec S --data D
  incognito check     --spec S --data D --qi A,B,C --k K
  incognito anonymize --spec S --data D --qi A,B,C --k K
                      [--max-suppress N] [--algorithm basic|superroots|cube|binary-search|datafly]
                      [--select height|discernibility] [--list] [--output OUT.csv]";

fn load(args: &Args) -> Result<Table, String> {
    let spec_path = args.require("spec")?;
    let data_path = args.require("data")?;
    let spec_text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let spec = SchemaSpec::parse(&spec_text).map_err(|e| e.to_string())?;
    let file = File::open(data_path).map_err(|e| format!("opening {data_path}: {e}"))?;
    load_csv_with_spec(&spec, BufReader::new(file)).map_err(|e| e.to_string())
}

fn parse_qi(args: &Args, table: &Table) -> Result<Vec<usize>, String> {
    let qi_arg = args.require("qi")?;
    qi_arg
        .split(',')
        .map(|name| {
            table
                .schema()
                .index_of(name.trim())
                .ok_or_else(|| format!("unknown attribute {name:?} in --qi"))
        })
        .collect()
}

fn parse_k(args: &Args) -> Result<u64, String> {
    args.require("k")?.parse().map_err(|_| "--k must be a positive integer".to_string())
}

fn describe(args: &Args) -> Result<(), String> {
    let table = load(args)?;
    println!("{} rows, schema {}", table.num_rows(), table.schema());
    for attr in table.schema().attributes() {
        let h = attr.hierarchy();
        println!(
            "  {:20} {:>7} distinct values, hierarchy height {}",
            attr.name(),
            h.ground_size(),
            h.height()
        );
    }
    Ok(())
}

fn check(args: &Args) -> Result<(), String> {
    let table = load(args)?;
    let qi = parse_qi(args, &table)?;
    let k = parse_k(args)?;
    let spec = GroupSpec::ground(&qi).map_err(|e| e.to_string())?;
    let freq = table.frequency_set(&spec).map_err(|e| e.to_string())?;
    let ok = freq.is_k_anonymous(k);
    println!(
        "{}: {} equivalence classes, smallest {}, {} tuples below k",
        if ok { "k-anonymous" } else { "NOT k-anonymous" },
        freq.num_groups(),
        freq.min_count().unwrap_or(0),
        freq.tuples_below(k)
    );
    if !ok {
        return Err(format!("table is not {k}-anonymous over the given quasi-identifier"));
    }
    Ok(())
}

fn anonymize(args: &Args) -> Result<(), String> {
    let table = load(args)?;
    let qi = parse_qi(args, &table)?;
    let k = parse_k(args)?;
    let max_suppress: u64 = args
        .get("max-suppress")
        .map(|v| v.parse().map_err(|_| "--max-suppress must be an integer".to_string()))
        .transpose()?
        .unwrap_or(0);
    let mut cfg = Config::new(k).with_suppression(max_suppress);

    let algorithm = args.get("algorithm").unwrap_or("basic");
    let result: AnonymizationResult = match algorithm {
        "basic" => run_incognito(&table, &qi, &cfg).map_err(|e| e.to_string())?,
        "superroots" => {
            cfg = cfg.with_superroots(true);
            run_incognito(&table, &qi, &cfg).map_err(|e| e.to_string())?
        }
        "cube" => cube_incognito(&table, &qi, &cfg).map_err(|e| e.to_string())?,
        "binary-search" => samarati_binary_search(&table, &qi, &cfg).map_err(|e| e.to_string())?,
        "datafly" => datafly(&table, &qi, &cfg).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown --algorithm {other:?}")),
    };

    if result.is_empty() {
        return Err("no k-anonymous full-domain generalization exists under this budget".into());
    }
    println!(
        "{} k-anonymous generalization(s) found; {} nodes checked, {} table scans.",
        result.len(),
        result.stats().nodes_checked(),
        result.stats().table_scans
    );
    if args.has("list") {
        for g in result.generalizations() {
            println!("  {}  (height {})", g.describe(table.schema(), result.qi()), g.height());
        }
    }

    let select = args.get("select").unwrap_or("height");
    let chosen = match select {
        "height" => *result
            .minimal_by_height()
            .first()
            .expect("nonempty result has a minimal element"),
        "discernibility" => result
            .minimal_frontier()
            .into_iter()
            .min_by_key(|g| {
                full_domain_release(&table, result.qi(), &g.levels, None)
                    .map(|r| r.metrics(k).discernibility)
                    .unwrap_or(u128::MAX)
            })
            .expect("nonempty result has a frontier"),
        other => return Err(format!("unknown --select {other:?}")),
    };
    println!("selected {} (by {select})", chosen.describe(table.schema(), result.qi()));

    let (view, suppressed) = result.materialize(&table, chosen).map_err(|e| e.to_string())?;
    println!("released {} rows ({suppressed} suppressed)", view.num_rows());
    if let Some(path) = args.get("output") {
        let file = File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        write_csv(&view, file).map_err(|e| e.to_string())?;
        println!("written to {path}");
    } else {
        write_csv(&view, std::io::stdout().lock()).map_err(|e| e.to_string())?;
    }
    Ok(())
}
