//! Medical-microdata release workflow on the (synthetic) Adults census
//! table — the scenario the paper's introduction motivates: publish
//! microdata for public-health research without enabling joining attacks.
//!
//! Steps:
//! 1. quantify the re-identification risk of the raw table (how many
//!    records have a unique quasi-identifier combination);
//! 2. run Incognito to get *all* k-anonymous full-domain generalizations;
//! 3. pick minimal releases under three different minimality criteria
//!    (§2.1's height, the discernibility metric, and a criterion that
//!    insists Gender stays intact);
//! 4. materialize and re-check the chosen release, then export it as CSV.
//!
//! Run with: `cargo run --release --example medical_microdata`

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::csvio::write_csv;
use incognito::data::{adults, AdultsConfig};
use incognito::models::release::full_domain_release;
use incognito::table::{GroupSpec, Table};

fn unique_fraction(table: &Table, qi: &[usize]) -> f64 {
    let freq = table
        .frequency_set(&GroupSpec::ground(qi).expect("valid qi"))
        .expect("valid qi");
    let unique: u64 = freq.iter().filter(|&(_, c)| c == 1).map(|(_, c)| c).sum();
    unique as f64 / table.num_rows() as f64
}

fn main() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 7 });
    // QI: Age, Gender, Race, Marital Status, Education (the attributes an
    // attacker plausibly finds in public registries).
    let qi = [0usize, 1, 2, 3, 4];
    let k = 5u64;

    println!(
        "Raw table: {} records; {:.1}% have a UNIQUE ⟨Age, Gender, Race, Marital, Education⟩ \
         combination (cf. the 87% zipcode/sex/birthdate statistic in the paper's introduction).",
        table.num_rows(),
        100.0 * unique_fraction(&table, &qi)
    );

    println!("\nSearching all {k}-anonymous full-domain generalizations (Incognito)...");
    let result = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
    println!(
        "  {} k-anonymous generalizations found ({} nodes checked, {} marked, {} table scans).",
        result.len(),
        result.stats().nodes_checked(),
        result.stats().nodes_marked(),
        result.stats().table_scans,
    );

    let schema = table.schema();

    // Criterion 1: minimal height (the Samarati/Sweeney definition).
    let by_height = result.minimal_by_height();
    println!("\nMinimal by height:");
    for g in by_height.iter().take(5) {
        println!("  {}", g.describe(schema, result.qi()));
    }

    // Criterion 2: minimal discernibility over the minimal frontier.
    let frontier = result.minimal_frontier();
    println!("\nMinimal frontier has {} incomparable generalizations.", frontier.len());
    let best_dm = frontier
        .iter()
        .map(|g| {
            let rel = full_domain_release(&table, &qi, &g.levels, None).expect("valid gen");
            (rel.metrics(k).discernibility, *g)
        })
        .min_by_key(|(dm, _)| *dm)
        .expect("nonempty frontier");
    println!(
        "Best by discernibility: {} (C_DM = {})",
        best_dm.1.describe(schema, result.qi()),
        best_dm.0
    );

    // Criterion 3: keep Gender intact, then minimize height — the
    // user-defined minimality the paper says binary search cannot serve.
    let gender_pos = result.qi().iter().position(|&a| a == 1).expect("gender in QI");
    let keep_gender = result
        .min_by_cost(|g| (g.levels[gender_pos], g.height()))
        .expect("nonempty result");
    println!(
        "Best with Gender released intact: {}",
        keep_gender.describe(schema, result.qi())
    );

    // Materialize the discernibility-optimal release and verify it.
    let (view, suppressed) = result.materialize(&table, best_dm.1).expect("valid gen");
    assert_eq!(suppressed, 0);
    let spec = GroupSpec::ground(&qi).expect("valid qi");
    assert!(view.is_k_anonymous(&spec, k).expect("valid qi"));
    println!(
        "\nReleased view: {} records, re-identification risk {:.2}% unique (was {:.1}%).",
        view.num_rows(),
        100.0 * unique_fraction(&view, &qi),
        100.0 * unique_fraction(&table, &qi)
    );
    println!("Sample rows:");
    for row in [0usize, 1, 2] {
        let cells: Vec<&str> = (0..view.schema().arity()).map(|a| view.label(row, a)).collect();
        println!("  {}", cells.join(" | "));
    }

    let path = std::env::temp_dir().join("adults_k5_release.csv");
    let file = std::fs::File::create(&path).expect("temp dir writable");
    write_csv(&view, file).expect("csv export");
    println!("\nRelease exported to {}.", path.display());
}
