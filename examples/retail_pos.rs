//! Retail point-of-sale anonymization at scale — the Lands End scenario:
//! a large transaction table whose ⟨Zipcode, Order date, Gender, Style⟩
//! combination links purchases to customers.
//!
//! Demonstrates the parts of Incognito that matter at this scale:
//! super-roots (fewer base-table scans), the zero-generalization cube
//! (build once, anonymize many times for different k), and the §2.1
//! tuple-suppression threshold that spares the release from over-
//! generalizing because of a few outlier transactions.
//!
//! Run with: `cargo run --release --example retail_pos [-- --rows N]`

use std::time::Instant;

use incognito::algo::cube::{anonymize_with_cube, Cube};
use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::{lands_end, LandsEndConfig};

fn main() {
    let rows = std::env::args()
        .skip_while(|a| a != "--rows")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    println!("Generating synthetic Lands End table ({rows} rows)...");
    let table = lands_end(&LandsEndConfig { rows, ..LandsEndConfig::default() });
    let qi = [0usize, 1, 2, 3]; // Zipcode, Order date, Gender, Style
    let k = 10u64;

    // Basic vs super-roots: same answer, fewer scans of the big table.
    let t0 = Instant::now();
    let basic = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
    let basic_time = t0.elapsed();
    let t1 = Instant::now();
    let sup = run_incognito(&table, &qi, &Config::new(k).with_superroots(true))
        .expect("valid workload");
    let sup_time = t1.elapsed();
    assert_eq!(basic.generalizations(), sup.generalizations());
    println!(
        "Basic Incognito:      {:>7.3}s, {} table scans",
        basic_time.as_secs_f64(),
        basic.stats().table_scans
    );
    println!(
        "Super-roots variant:  {:>7.3}s, {} table scans (same {} generalizations)",
        sup_time.as_secs_f64(),
        sup.stats().table_scans,
        sup.len()
    );

    // The cube amortizes across repeated anonymization runs (different k).
    let t2 = Instant::now();
    let cube = Cube::build(&table, &qi, k).expect("valid workload");
    println!(
        "\nZero-generalization cube: {} frequency sets in {:.3}s.",
        cube.len(),
        t2.elapsed().as_secs_f64()
    );
    for k in [2u64, 10, 50] {
        let t = Instant::now();
        let r = anonymize_with_cube(&table, &cube, &Config::new(k), &mut |_| {})
            .expect("valid workload");
        println!(
            "  k = {k:>2}: {} generalizations in {:.3}s (marginal, cube reused)",
            r.len(),
            t.elapsed().as_secs_f64()
        );
    }

    // Suppression threshold: tolerate 0.1% outlier transactions.
    let budget = (rows as u64) / 1000;
    let strict = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
    let relaxed = run_incognito(&table, &qi, &Config::new(k).with_suppression(budget))
        .expect("valid workload");
    let schema = table.schema();
    println!(
        "\nSuppression threshold {budget} tuples: minimal height {} -> {}",
        strict.minimal_height().map_or("none".into(), |h| h.to_string()),
        relaxed.minimal_height().map_or("none".into(), |h| h.to_string()),
    );
    if let Some(g) = relaxed.minimal_by_height().first() {
        let (view, suppressed) = relaxed.materialize(&table, g).expect("valid gen");
        println!(
            "Released {} under {} with {suppressed} transactions suppressed.",
            view.num_rows(),
            g.describe(schema, relaxed.qi())
        );
        println!("Sample released rows:");
        for row in [0usize, 1, 2] {
            let cells: Vec<&str> =
                (0..view.schema().arity()).map(|a| view.label(row, a)).collect();
            println!("  {}", cells.join(" | "));
        }
    }
}
