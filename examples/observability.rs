//! Observability: what the engine actually did, Basic vs. Cube Incognito.
//!
//! Enables the global metrics layer, runs Basic Incognito and Cube
//! Incognito over the same Adults workload, and prints the table-engine
//! and lattice counters side by side — making the paper's §3.3.2 claim
//! visible in numbers: the cube variant answers every frequency-set
//! question from one materialized cube instead of repeated base-table
//! work.
//!
//! Run with: `cargo run --release --example observability`

use std::time::Instant;

use incognito::algo::cube::{anonymize_with_cube, Cube};
use incognito::algo::{incognito::incognito, Config, SearchStats};
use incognito::data::{adults, AdultsConfig};
use incognito::obs::{self, MetricsSnapshot, MetricValue};

fn main() {
    // Everything the engine records is gated on this flag; when it is off
    // (the default) the probes cost a single relaxed atomic load.
    obs::set_enabled(true);

    let cfg = AdultsConfig { rows: 5_000, ..AdultsConfig::default() };
    let table = adults(&cfg);
    let qi: Vec<usize> = (0..6).collect();
    let config = Config::new(2);
    println!(
        "Adults ({} rows), quasi-identifier = first {} attributes, k = {}\n",
        cfg.rows,
        qi.len(),
        config.k
    );

    // --- Basic Incognito -----------------------------------------------
    let before = obs::snapshot();
    let t0 = Instant::now();
    let basic = incognito(&table, &qi, &config).expect("valid workload");
    let basic_wall = t0.elapsed();
    let basic_metrics = obs::snapshot().diff(&before);

    // --- Cube Incognito ------------------------------------------------
    let before = obs::snapshot();
    let t0 = Instant::now();
    let cube = Cube::build(&table, &qi, config.k).expect("valid workload");
    let cubed = anonymize_with_cube(&table, &cube, &config, &mut |_| {}).expect("valid workload");
    let cube_wall = t0.elapsed();
    let cube_metrics = obs::snapshot().diff(&before);

    assert_eq!(basic.generalizations(), cubed.generalizations(), "variants agree");
    println!(
        "Both variants found the same {} k-anonymous generalizations.",
        basic.len()
    );
    println!(
        "Wall-clock: Basic {:.3}s, Cube {:.3}s (incl. {:.3}s cube build)\n",
        basic_wall.as_secs_f64(),
        cube_wall.as_secs_f64(),
        cubed.stats().timings.cube_build.unwrap_or_default().as_secs_f64()
    );

    phase_table("Basic", basic.stats());
    phase_table("Cube", cubed.stats());

    println!("\n{:<40} {:>14} {:>14}", "engine metric", "Basic", "Cube");
    println!("{}", "-".repeat(70));
    let names: std::collections::BTreeSet<&str> =
        basic_metrics.iter().map(|(n, _)| n).chain(cube_metrics.iter().map(|(n, _)| n)).collect();
    for name in names {
        let (a, b) = (fmt_metric(&basic_metrics, name), fmt_metric(&cube_metrics, name));
        println!("{name:<40} {a:>14} {b:>14}");
    }

    let b_scans = basic_metrics.counter("table.scan.count");
    let c_scans = cube_metrics.counter("table.scan.count");
    println!(
        "\nThe cube variant issued {c_scans} base-table scan(s) against Basic's {b_scans}: \
         after the single cube pass, every frequency set is a projection."
    );
}

/// Print the per-phase wall-clock breakdown recorded in [`SearchStats`].
fn phase_table(label: &str, stats: &SearchStats) {
    let t = &stats.timings;
    println!(
        "{label:<6} phases: total {:.3}s = scan {:.3}s + rollup {:.3}s + candidate-gen {:.3}s{}",
        t.total.as_secs_f64(),
        t.scan.as_secs_f64(),
        t.rollup.as_secs_f64(),
        t.candidate_gen.as_secs_f64(),
        match t.cube_build {
            Some(d) => format!(" (+ cube build {:.3}s)", d.as_secs_f64()),
            None => String::new(),
        }
    );
}

/// One metric rendered for the comparison table: counters as counts,
/// timers as their total in milliseconds.
fn fmt_metric(s: &MetricsSnapshot, name: &str) -> String {
    match s.iter().find(|(n, _)| *n == name) {
        Some((_, MetricValue::Counter(v))) => v.to_string(),
        Some((_, MetricValue::Gauge(v))) => v.to_string(),
        Some((_, MetricValue::Timer(t))) => {
            format!("{:.2}ms/{}", t.total.as_secs_f64() * 1e3, t.count)
        }
        None => "-".to_string(),
    }
}
