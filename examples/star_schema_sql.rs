//! The paper's implementation strategy, visible: build the Figure 4 star
//! schema over the Patients table, run the §1.1 `GROUP BY COUNT(*)` check
//! and a §3 `SUM(count)` rollup as actual relational queries, then execute
//! the whole Incognito search through the SQL path and confirm it matches
//! the native engine.
//!
//! Run with: `cargo run --release --example star_schema_sql`

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::patients;
use incognito::star::freq::{frequency_set_sql, is_k_anonymous_sql, rollup_sql};
use incognito::star::{incognito_sql, StarSchema};

fn main() {
    let table = patients();
    let qi = [0usize, 1, 2];
    let star = StarSchema::build(&table, &qi).expect("valid schema");

    println!("Fact relation (first rows):");
    let fact = star.fact();
    print!("{}", fact.sorted());

    println!("\nZipcode dimension (Figure 4's Zipcode generalization dimension):");
    print!("{}", star.dim(2).expect("zip in QI"));

    // §1.1's example: SELECT COUNT(*) FROM Patients GROUP BY Sex, Zipcode.
    println!("\nSELECT COUNT(*) ... GROUP BY Sex, Zipcode:");
    let f = frequency_set_sql(&star, &[(1, 0), (2, 0)]).expect("valid query");
    print!("{}", f.sorted());
    println!(
        "2-anonymous? {} (groups of size one exist — the joining attack works)",
        is_k_anonymous_sql(&f, 2, 0).expect("count column")
    );

    // Rollup Property: derive ⟨Sex, Z1⟩ from the ground frequency set by a
    // SUM(count) query through the Zipcode dimension.
    println!("\nSUM(count) rollup to ⟨Sex, Z1⟩:");
    let rolled = rollup_sql(&star, &f, &[(1, 0), (2, 0)], &[0, 1]).expect("valid rollup");
    print!("{}", rolled.sorted());

    // The full search through the SQL path.
    println!("\nRunning Incognito through the relational engine (k = 2)...");
    let sql = incognito_sql(&table, &qi, &Config::new(2)).expect("valid workload");
    println!(
        "  {} generalizations, {} nodes checked ({} scan queries, {} rollup queries)",
        sql.generalizations.len(),
        sql.nodes_checked,
        sql.scan_queries,
        sql.rollup_queries
    );
    let native = run_incognito(&table, &qi, &Config::new(2)).expect("valid workload");
    let native_levels: Vec<Vec<u8>> =
        native.generalizations().iter().map(|g| g.levels.clone()).collect();
    assert_eq!(sql.generalizations, native_levels);
    println!("  SQL path and native columnar engine agree on all {} results.", native.len());
    for levels in &sql.generalizations {
        println!("    ⟨B{}, S{}, Z{}⟩", levels[0], levels[1], levels[2]);
    }
}
