//! The Section 5 taxonomy, side by side: anonymize the same table under
//! every recoding model in the paper's catalog and compare information
//! loss — the "explicit tradeoffs between performance and flexibility" the
//! section calls for.
//!
//! Run with: `cargo run --release --example model_taxonomy`

use std::time::Instant;

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::{adults, AdultsConfig};
use incognito::models::genetic::{genetic_anonymize, GeneticConfig};
use incognito::models::koptimize::koptimize_anonymize;
use incognito::models::local::{cell_generalization_anonymize, cell_suppression_anonymize};
use incognito::models::mondrian::mondrian_anonymize;
use incognito::models::partition1d::ordered_partition_anonymize;
use incognito::models::tds::tds_anonymize;
use incognito::models::release::{
    attribute_suppression_release, full_domain_release, AnonymizedRelease,
};
use incognito::models::subgraph::full_subgraph_anonymize;
use incognito::models::subtree::{full_subtree_anonymize, SubtreeMode};
use incognito::models::{taxonomy, Metrics};

fn main() {
    let table = adults(&AdultsConfig { rows: 5_000, seed: 99 });
    let qi = [0usize, 1, 3]; // Age, Gender, Marital Status
    let k = 10u64;

    println!("Section 5 model catalog:");
    for m in taxonomy() {
        println!(
            "  {:44} {:6?} recoding, {:15?}, {:6?}-dimension   [{}]",
            m.name, m.recoding, m.style, m.dimensionality, m.reference
        );
    }

    println!(
        "\nAnonymizing {} rows over ⟨Age, Gender, Marital Status⟩ with k = {k} under each model:\n",
        table.num_rows()
    );

    // Full-domain: the discernibility-optimal member of Incognito's
    // complete answer set.
    let complete = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
    let full_domain = complete
        .generalizations()
        .iter()
        .map(|g| full_domain_release(&table, &qi, &g.levels, None).expect("valid gen"))
        .min_by_key(|r| r.metrics(k).discernibility)
        .expect("nonempty result");

    let runs: Vec<(&str, AnonymizedRelease)> = vec![
        ("Full-domain (best of Incognito)", full_domain),
        (
            "Attribute suppression",
            attribute_suppression_release(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Single-dim full-subtree",
            full_subtree_anonymize(&table, &qi, k, SubtreeMode::FullSubtree)
                .expect("valid workload"),
        ),
        (
            "Unrestricted single-dim",
            full_subtree_anonymize(&table, &qi, k, SubtreeMode::Unrestricted)
                .expect("valid workload"),
        ),
        (
            "Single-dim full-subtree via TDS [7]",
            tds_anonymize(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Single-dim full-subtree via GA [11]",
            genetic_anonymize(&table, &qi, k, &GeneticConfig::default())
                .expect("valid workload"),
        ),
        (
            "Single-dim ordered partitioning",
            ordered_partition_anonymize(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Single-dim partitioning via K-Optimize [3]",
            // K-Optimize is exponential in the split alphabet; run it on
            // the two small-domain attributes only.
            koptimize_anonymize(&table, &[1, 3], k).expect("small alphabet").release,
        ),
        (
            "Multi-dim full-subgraph",
            full_subgraph_anonymize(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Multi-dim ordered partitioning (Mondrian)",
            mondrian_anonymize(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Cell suppression (local)",
            cell_suppression_anonymize(&table, &qi, k).expect("valid workload"),
        ),
        (
            "Cell generalization (local)",
            cell_generalization_anonymize(&table, &qi, k).expect("valid workload"),
        ),
    ];

    println!(
        "{:44} {:>9} {:>12} {:>8} {:>9} {:>7} {:>10}",
        "Model", "classes", "C_DM", "C_AVG", "Prec", "LM", "suppressed"
    );
    println!("{}", "-".repeat(108));
    for (name, release) in &runs {
        assert!(release.is_k_anonymous(k), "{name} must be k-anonymous");
        let m: Metrics = release.metrics(k);
        println!(
            "{:44} {:>9} {:>12} {:>8.2} {:>9.3} {:>7.3} {:>10}",
            name, m.classes, m.discernibility, m.avg_class_size, m.precision, m.loss, m.suppressed
        );
    }

    println!(
        "\nReading the table: multi-dimension and local models sit lower on C_DM/LM than \
         single-dimension global models — the flexibility ordering §5 predicts. Timings for \
         the search algorithms themselves are in the fig10/fig11 harness binaries.\n\
         (K-Optimize runs on the two small-domain attributes ⟨Gender, Marital⟩ only — the \
         optimal search is exponential in the split alphabet — so its row is not directly \
         comparable to the three-attribute ones.)"
    );

    // A quick flexibility-vs-cost illustration: how long the full-domain
    // search took vs the greedy Mondrian.
    let t0 = Instant::now();
    let _ = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
    let full_t = t0.elapsed();
    let t1 = Instant::now();
    let _ = mondrian_anonymize(&table, &qi, k).expect("valid workload");
    let mond_t = t1.elapsed();
    println!(
        "\nSearch cost: Incognito (complete) {:.3}s vs Mondrian (greedy) {:.3}s on this workload.",
        full_t.as_secs_f64(),
        mond_t.as_secs_f64()
    );
}
