//! Quickstart: the paper's running example end to end.
//!
//! Reproduces the Figure 1 joining attack, then walks Basic Incognito over
//! the Patients table exactly as Examples 3.1/3.2 describe, prints every
//! search decision, and materializes the minimal 2-anonymous view.
//!
//! Run with: `cargo run --release --example quickstart`

use incognito::algo::trace::TraceEvent;
use incognito::algo::{incognito::incognito_traced, Config};
use incognito::data::{patients, voter_registration};

fn main() {
    let patients = patients();
    let voters = voter_registration();

    // --- The joining attack (Figure 1) --------------------------------
    println!("Patients table (quasi-identifier: Birthdate, Sex, Zipcode):");
    for row in 0..patients.num_rows() {
        println!(
            "  {:8} {:6} {:5}  {}",
            patients.label(row, 0),
            patients.label(row, 1),
            patients.label(row, 2),
            patients.label(row, 3),
        );
    }
    println!("\nJoining with the public voter registration list re-identifies:");
    for vr in 0..voters.num_rows() {
        for pr in 0..patients.num_rows() {
            if voters.label(vr, 1) == patients.label(pr, 0)
                && voters.label(vr, 2) == patients.label(pr, 1)
                && voters.label(vr, 3) == patients.label(pr, 2)
            {
                println!(
                    "  {} -> {} (via ⟨{}, {}, {}⟩)",
                    voters.label(vr, 0),
                    patients.label(pr, 3),
                    voters.label(vr, 1),
                    voters.label(vr, 2),
                    voters.label(vr, 3),
                );
            }
        }
    }

    // --- Incognito search (Examples 3.1 / 3.2) -------------------------
    let qi = [0usize, 1, 2];
    let k = 2;
    println!("\nRunning Basic Incognito (k = {k}) over ⟨Birthdate, Sex, Zipcode⟩...");
    let (result, trace) =
        incognito_traced(&patients, &qi, &Config::new(k)).expect("valid workload");
    let schema = patients.schema();
    let show = |spec: &[(usize, u8)]| -> String {
        let parts: Vec<String> = spec
            .iter()
            .map(|&(a, l)| format!("{}{}", initial(schema.attribute(a).name()), l))
            .collect();
        format!("⟨{}⟩", parts.join(","))
    };
    for event in &trace {
        match event {
            TraceEvent::IterationStart { arity, candidates, edges } => {
                println!("  iteration {arity}: {candidates} candidate nodes, {edges} edges");
            }
            TraceEvent::Checked { spec, via, anonymous } => {
                println!(
                    "    check {:10} via {:?}: {}",
                    show(spec),
                    via,
                    if *anonymous { "k-anonymous" } else { "NOT k-anonymous" }
                );
            }
            TraceEvent::Marked { spec, implied_by } => {
                println!("    mark  {:10} (implied by {})", show(spec), show(implied_by));
            }
            TraceEvent::IterationEnd { survivors } => {
                println!("    -> {survivors} nodes survive");
            }
        }
    }

    println!("\nAll {} k-anonymous full-domain generalizations:", result.len());
    for g in result.generalizations() {
        println!("  {}  (height {})", g.describe(schema, result.qi()), g.height());
    }
    let minimal = result.minimal_by_height();
    println!("\nMinimal (height-optimal) generalization(s):");
    for g in &minimal {
        println!("  {}", g.describe(schema, result.qi()));
    }

    let (view, suppressed) =
        result.materialize(&patients, minimal[0]).expect("reported gens are valid");
    println!("\nReleased view under {} ({suppressed} tuples suppressed):", minimal[0].describe(schema, result.qi()));
    for row in 0..view.num_rows() {
        println!(
            "  {:8} {:6} {:5}  {}",
            view.label(row, 0),
            view.label(row, 1),
            view.label(row, 2),
            view.label(row, 3),
        );
    }
    println!("\nThe join key ⟨Birthdate, Sex, Zipcode⟩ now matches ≥ {k} patients per voter: the attack is blunted.");
}

fn initial(name: &str) -> char {
    name.chars().next().unwrap_or('?')
}
