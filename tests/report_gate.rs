//! End-to-end test of the `incognito-report` regression gate: identical
//! reports pass (exit 0), a synthetically injected over-threshold
//! counter regression fails (exit 1), and a workload mismatch is a
//! usage error (exit 2), matching the contract in
//! `src/bin/incognito_report.rs`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use incognito::obs::Json;

/// A minimal but schema-faithful `BENCH_*.json` document.
fn bench_doc(rows: i64, nodes_checked: i64, wall: f64) -> String {
    bench_doc_with_peak(rows, nodes_checked, wall, 1_000_000)
}

fn bench_doc_with_peak(rows: i64, nodes_checked: i64, wall: f64, peak: i64) -> String {
    let mut run = Json::obj();
    run.set("label", "Basic Incognito");
    run.set("dataset", "adults");
    run.set("k", 2i64);
    run.set("qi_arity", 5i64);
    run.set("wall_secs", wall);
    run.set("generalizations", 65i64);
    let mut stats = Json::obj();
    stats.set("nodes_checked", nodes_checked);
    stats.set("table_scans", 80i64);
    run.set("stats", stats);
    let mut mem = Json::obj();
    mem.set("peak_live_bytes", peak);
    mem.set("live_bytes", 64i64);
    mem.set("allocated_bytes", 4 * peak);
    mem.set("allocs", 5_000i64);
    run.set("memory", mem);
    let mut doc = Json::obj();
    doc.set("name", "gate_selftest");
    doc.set("report_version", 1i64);
    doc.set("unix_time", 0i64);
    doc.set("git", "test");
    doc.set("rows_adults", rows);
    doc.set("runs", Json::Arr(vec![run]));
    doc.to_pretty_string()
}

fn write_doc(dir: &Path, text: &str) {
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join("BENCH_gate_selftest.json"), text).unwrap();
}

fn run_gate(baseline: &Path, candidate: &Path, threshold: &str) -> (Option<i32>, String, String) {
    run_gate_with(baseline, candidate, threshold, &[])
}

fn run_gate_with(
    baseline: &Path,
    candidate: &Path,
    threshold: &str,
    extra: &[&str],
) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_incognito-report"))
        .args([
            "gate",
            "--baseline",
            baseline.to_str().unwrap(),
            "--candidate",
            candidate.to_str().unwrap(),
            "--threshold",
            threshold,
        ])
        .args(extra)
        .output()
        .expect("spawn incognito-report");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn gate_binary_exit_codes_match_the_contract() {
    let tmp: PathBuf =
        std::env::temp_dir().join(format!("incognito_gate_test_{}", std::process::id()));
    let baseline = tmp.join("baseline");
    let candidate = tmp.join("candidate");
    write_doc(&baseline, &bench_doc(1000, 100, 0.010));

    // Identical candidate: clean pass.
    write_doc(&candidate, &bench_doc(1000, 100, 0.010));
    let (code, stdout, _) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(0), "identical reports must pass\n{stdout}");
    assert!(stdout.contains("gate: PASS"), "{stdout}");

    // Injected +20% nodes_checked at threshold 10%: regression, exit 1.
    write_doc(&candidate, &bench_doc(1000, 120, 0.010));
    let (code, stdout, stderr) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(1), "regression must fail\n{stdout}{stderr}");
    assert!(stderr.contains("REGRESSION") && stderr.contains("stats.nodes_checked"), "{stderr}");

    // The same movement under a generous threshold passes.
    let (code, _, _) = run_gate(&baseline, &candidate, "25");
    assert_eq!(code, Some(0), "within-threshold movement must pass");

    // A slower wall clock alone never fails without --gate-timings.
    write_doc(&candidate, &bench_doc(1000, 100, 5.0));
    let (code, _, _) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(0), "timings are not gated by default");

    // Different workload (row count): mismatch, exit 2 — not a regression.
    write_doc(&candidate, &bench_doc(2000, 100, 0.010));
    let (code, _, stderr) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(2), "workload mismatch must be a usage error\n{stderr}");
    assert!(stderr.contains("mismatch"), "{stderr}");

    // Missing candidate report: IO error, exit 2.
    fs::remove_file(candidate.join("BENCH_gate_selftest.json")).unwrap();
    let (code, _, _) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(2), "missing candidate must be a usage error");

    fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn memory_gate_catches_injected_peak_regressions() {
    let tmp: PathBuf =
        std::env::temp_dir().join(format!("incognito_memgate_test_{}", std::process::id()));
    let baseline = tmp.join("baseline");
    let candidate = tmp.join("candidate");
    write_doc(&baseline, &bench_doc_with_peak(1000, 100, 0.010, 1_000_000));

    // Identical memory accounting: clean pass with the gate armed.
    write_doc(&candidate, &bench_doc_with_peak(1000, 100, 0.010, 1_000_000));
    let (code, stdout, _) = run_gate_with(&baseline, &candidate, "10", &["--memory"]);
    assert_eq!(code, Some(0), "identical memory must pass\n{stdout}");

    // Injected +50% peak: invisible without --memory...
    write_doc(&candidate, &bench_doc_with_peak(1000, 100, 0.010, 1_500_000));
    let (code, _, _) = run_gate(&baseline, &candidate, "10");
    assert_eq!(code, Some(0), "memory is not gated by default");

    // ...caught with it (default 25% memory band), exit 1.
    let (code, stdout, stderr) = run_gate_with(&baseline, &candidate, "10", &["--memory"]);
    assert_eq!(code, Some(1), "peak regression must fail\n{stdout}{stderr}");
    assert!(
        stderr.contains("REGRESSION") && stderr.contains("memory.peak_live_bytes"),
        "{stderr}"
    );

    // A widened band tolerates it.
    let (code, _, _) =
        run_gate_with(&baseline, &candidate, "10", &["--memory", "--mem-threshold", "60"]);
    assert_eq!(code, Some(0), "within-band memory growth must pass");

    fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn diff_subcommand_prints_the_delta_table() {
    let tmp: PathBuf =
        std::env::temp_dir().join(format!("incognito_diff_test_{}", std::process::id()));
    fs::create_dir_all(&tmp).unwrap();
    let old = tmp.join("old.json");
    let new = tmp.join("new.json");
    fs::write(&old, bench_doc(1000, 100, 0.010)).unwrap();
    fs::write(&new, bench_doc(1000, 120, 0.012)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_incognito-report"))
        .args(["diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .output()
        .expect("spawn incognito-report");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("stats.nodes_checked") && stdout.contains("+20.0%"), "{stdout}");
    fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn bad_usage_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_incognito-report"))
        .output()
        .expect("spawn incognito-report");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
