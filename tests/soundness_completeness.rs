//! Property-based verification of the paper's §3.2 theorem — *Basic
//! Incognito is sound and complete for producing k-anonymous full-domain
//! generalizations* — plus the three structural properties it rests on
//! (Generalization, Rollup, Subset), over randomly generated tables and
//! hierarchies.
//!
//! Tables and hierarchies are drawn from the workspace's seeded PRNG
//! ([`incognito::obs::Rng`]) so every run checks the same case set and
//! failures reproduce by case number.

use incognito::algo::{
    binary_search::samarati_binary_search, bottom_up::bottom_up_search, cube::cube_incognito,
    incognito as run_incognito, Config,
};
use incognito::hierarchy::Hierarchy;
use incognito::lattice::CandidateGraph;
use incognito::lattice::PruneStrategy;
use incognito::obs::Rng;
use incognito::table::{Attribute, GroupSpec, Schema, Table};

/// A random generalization hierarchy: 2–7 leaf values, random nested
/// merges up to a random height, topped with full suppression.
fn random_hierarchy(rng: &mut Rng, name: &'static str) -> Hierarchy {
    let ground = rng.range_usize(2, 8);
    let mid_levels = rng.range_usize(1, 3);
    // Random parent maps: at each level, values merge into ~half as many
    // parents, with the first `next` children pinned so γ is onto.
    let mut maps: Vec<Vec<u32>> = Vec::new();
    let mut sizes = vec![ground];
    let mut size = ground;
    for _ in 0..mid_levels {
        let next = size.div_ceil(2).max(1);
        let mut map: Vec<u32> = (0..size).map(|_| rng.below(next as u64) as u32).collect();
        for (i, slot) in map.iter_mut().enumerate().take(next) {
            *slot = i as u32;
        }
        maps.push(map);
        sizes.push(next);
        size = next;
    }
    let mut levels: Vec<Vec<String>> = Vec::new();
    for (l, &sz) in sizes.iter().enumerate() {
        levels.push((0..sz).map(|i| format!("{name}-L{l}-{i}")).collect());
    }
    // Top it with a suppression level unless already singleton.
    if *sizes.last().expect("nonempty") > 1 {
        maps.push(vec![0; *sizes.last().expect("nonempty")]);
        levels.push(vec![format!("{name}-*")]);
    }
    Hierarchy::from_levels(name, levels, maps).expect("constructed valid")
}

/// A random 3-attribute table of 0–39 rows (7 × arbitrary hierarchies
/// would explode the lattice; 3 keeps brute force honest while covering
/// the multi-attribute machinery).
fn random_table(rng: &mut Rng) -> Table {
    let ha = random_hierarchy(rng, "A");
    let hb = random_hierarchy(rng, "B");
    let hc = random_hierarchy(rng, "C");
    let (ga, gb, gc) = (ha.ground_size(), hb.ground_size(), hc.ground_size());
    let schema = Schema::new(vec![
        Attribute::new("A", ha),
        Attribute::new("B", hb),
        Attribute::new("C", hc),
    ])
    .expect("distinct names");
    let rows = rng.range_usize(0, 40);
    let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..rows {
        cols[0].push(rng.below(ga as u64) as u32);
        cols[1].push(rng.below(gb as u64) as u32);
        cols[2].push(rng.below(gc as u64) as u32);
    }
    Table::from_columns(schema, cols).expect("ids in range")
}

/// A random k in 1..6, matching the proptest range the suite started with.
fn random_k(rng: &mut Rng) -> u64 {
    1 + rng.below(5)
}

/// Brute force: test every node of the full lattice directly.
fn brute_force(table: &Table, qi: &[usize], k: u64) -> Vec<Vec<u8>> {
    let lattice = CandidateGraph::full_lattice(table.schema(), qi);
    let mut out: Vec<Vec<u8>> = lattice
        .nodes()
        .iter()
        .filter(|n| {
            table
                .frequency_set(&n.to_group_spec().expect("valid spec"))
                .expect("valid spec")
                .is_k_anonymous(k)
        })
        .map(|n| n.levels())
        .collect();
    out.sort();
    out
}

/// §3.2: Incognito (all variants) returns exactly the brute-force set.
#[test]
fn incognito_sound_and_complete() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x50D0_0000 + case);
        let table = random_table(&mut rng);
        let k = random_k(&mut rng);
        let qi = [0usize, 1, 2];
        let truth = brute_force(&table, &qi, k);
        for cfg in [
            Config::new(k),
            Config::new(k).with_superroots(true),
            Config::new(k).with_rollup(false),
            Config::new(k).with_prune(PruneStrategy::HashSet),
        ] {
            let r = run_incognito(&table, &qi, &cfg).expect("valid workload");
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(&got, &truth, "case {case}: cfg {cfg:?}");
        }
        let cube = cube_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
        let got: Vec<Vec<u8>> =
            cube.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(&got, &truth, "case {case}: cube variant");
        let bu = bottom_up_search(&table, &qi, &Config::new(k)).expect("valid workload");
        let got: Vec<Vec<u8>> = bu.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(&got, &truth, "case {case}: bottom-up");
    }
}

/// Binary search finds exactly the minimal-height members of the truth.
#[test]
fn binary_search_finds_minimal_height() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xB14A_0000 + case);
        let table = random_table(&mut rng);
        let k = random_k(&mut rng);
        let qi = [0usize, 1, 2];
        let truth = brute_force(&table, &qi, k);
        let result = samarati_binary_search(&table, &qi, &Config::new(k));
        if truth.is_empty() {
            assert!(result.is_err(), "case {case}");
        } else {
            let min_h = truth
                .iter()
                .map(|ls| ls.iter().map(|&l| l as u32).sum::<u32>())
                .min()
                .expect("nonempty");
            let r = result.expect("satisfiable");
            assert_eq!(r.minimal_height(), Some(min_h), "case {case}");
            for g in r.generalizations() {
                assert!(truth.contains(&g.levels), "case {case}");
                assert_eq!(g.height(), min_h, "case {case}");
            }
        }
    }
}

/// Generalization Property: k-anonymous at P ⇒ k-anonymous at any
/// generalization Q of P.
#[test]
fn generalization_property() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x6E4E_0000 + case);
        let table = random_table(&mut rng);
        let k = random_k(&mut rng);
        let schema = table.schema().clone();
        let lattice = CandidateGraph::full_lattice(&schema, &[0, 1, 2]);
        for &(s, e) in lattice.edges() {
            let fs = table
                .frequency_set(&lattice.node(s).to_group_spec().expect("valid"))
                .expect("valid");
            if fs.is_k_anonymous(k) {
                let fe = table
                    .frequency_set(&lattice.node(e).to_group_spec().expect("valid"))
                    .expect("valid");
                assert!(fe.is_k_anonymous(k), "case {case}");
            }
        }
    }
}

/// Rollup Property: rolling a frequency set up equals rescanning at the
/// higher levels.
#[test]
fn rollup_property() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x2011_0000 + case);
        let table = random_table(&mut rng);
        let lift: Vec<u8> = (0..3).map(|_| rng.below(3) as u8).collect();
        let schema = table.schema().clone();
        let ground = table
            .frequency_set(&GroupSpec::ground(&[0, 1, 2]).expect("valid"))
            .expect("valid");
        let target: Vec<u8> =
            (0..3).map(|i| lift[i].min(schema.hierarchy(i).height())).collect();
        let rolled = ground.rollup(&schema, &target).expect("upward");
        let spec =
            GroupSpec::new((0..3).map(|i| (i, target[i])).collect()).expect("valid");
        let scanned = table.frequency_set(&spec).expect("valid");
        assert_eq!(
            rolled.to_labeled_rows(&schema),
            scanned.to_labeled_rows(&schema),
            "case {case}"
        );
    }
}

/// Subset Property: k-anonymous w.r.t. Q ⇒ k-anonymous w.r.t. P ⊆ Q;
/// equivalently projections of frequency sets match narrow scans.
#[test]
fn subset_property() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x5B5E_0000 + case);
        let table = random_table(&mut rng);
        let k = random_k(&mut rng);
        let schema = table.schema().clone();
        let wide = table
            .frequency_set(&GroupSpec::ground(&[0, 1, 2]).expect("valid"))
            .expect("valid");
        for keep in [vec![0usize], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2]] {
            let proj = wide.project(&keep).expect("valid positions");
            let attrs: Vec<usize> = keep.clone();
            let scan = table
                .frequency_set(&GroupSpec::ground(&attrs).expect("valid"))
                .expect("valid");
            assert_eq!(
                proj.to_labeled_rows(&schema),
                scan.to_labeled_rows(&schema),
                "case {case}"
            );
            if wide.is_k_anonymous(k) {
                assert!(proj.is_k_anonymous(k), "case {case}");
            }
        }
    }
}

/// Every generalization Incognito reports materializes to a view that
/// really is k-anonymous; the bottom lattice node is reported iff the
/// raw table is k-anonymous.
#[test]
fn reported_generalizations_materialize_k_anonymous() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x3A7E_0000 + case);
        let table = random_table(&mut rng);
        let k = random_k(&mut rng);
        let qi = [0usize, 1, 2];
        let r = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
        for g in r.generalizations().iter().take(8) {
            let (view, suppressed) = r.materialize(&table, g).expect("reported gens valid");
            assert_eq!(suppressed, 0, "case {case}");
            let spec = GroupSpec::ground(&qi).expect("valid");
            assert!(view.is_k_anonymous(&spec, k).expect("valid"), "case {case}");
        }
        let raw_anonymous = table
            .frequency_set(&GroupSpec::ground(&qi).expect("valid"))
            .expect("valid")
            .is_k_anonymous(k);
        assert_eq!(r.contains(&[0, 0, 0]), raw_anonymous, "case {case}");
    }
}

/// Suppression-threshold semantics hold under the same property regime.
#[test]
fn suppression_matches_brute_force_on_fixed_tables() {
    let t = incognito::data::patients();
    for k in [2u64, 3] {
        for max_sup in [0u64, 1, 2, 3] {
            let cfg = Config::new(k).with_suppression(max_sup);
            let r = run_incognito(&t, &[0, 1, 2], &cfg).expect("valid workload");
            let lattice = CandidateGraph::full_lattice(t.schema(), &[0, 1, 2]);
            let mut truth: Vec<Vec<u8>> = lattice
                .nodes()
                .iter()
                .filter(|n| {
                    let f = t
                        .frequency_set(&n.to_group_spec().expect("valid"))
                        .expect("valid");
                    if max_sup == 0 {
                        f.is_k_anonymous(k)
                    } else {
                        f.is_k_anonymous_with_suppression(k, max_sup)
                    }
                })
                .map(|n| n.levels())
                .collect();
            truth.sort();
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(got, truth, "k={k} max_sup={max_sup}");
        }
    }
}
