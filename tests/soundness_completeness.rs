//! Property-based verification of the paper's §3.2 theorem — *Basic
//! Incognito is sound and complete for producing k-anonymous full-domain
//! generalizations* — plus the three structural properties it rests on
//! (Generalization, Rollup, Subset), over randomly generated tables and
//! hierarchies.

use proptest::prelude::*;

use incognito::algo::{
    binary_search::samarati_binary_search, bottom_up::bottom_up_search, cube::cube_incognito,
    incognito as run_incognito, Config,
};
use incognito::lattice::PruneStrategy;
use incognito::hierarchy::Hierarchy;
use incognito::lattice::CandidateGraph;
use incognito::table::{Attribute, GroupSpec, Schema, Table};

/// A random generalization hierarchy: `ground` leaf values, random nested
/// merges up to a random height, topped with full suppression.
fn arb_hierarchy(name: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2usize..8, 1u8..3).prop_flat_map(move |(ground, mid_levels)| {
        // Random parent maps: at each level, values merge into ~half as
        // many parents.
        let mut strat: Vec<BoxedStrategy<Vec<u32>>> = Vec::new();
        let mut size = ground;
        for _ in 0..mid_levels {
            let next = size.div_ceil(2).max(1);
            strat.push(
                proptest::collection::vec(0..next as u32, size)
                    .prop_map(move |mut v| {
                        // Force γ to be onto: pin the first `next` children.
                        for (i, slot) in v.iter_mut().enumerate().take(next) {
                            *slot = i as u32;
                        }
                        v
                    })
                    .boxed(),
            );
            size = next;
        }
        let sizes: Vec<usize> = {
            let mut v = vec![ground];
            let mut s = ground;
            for _ in 0..mid_levels {
                s = s.div_ceil(2).max(1);
                v.push(s);
            }
            v
        };
        strat.prop_map(move |maps| {
            let mut levels: Vec<Vec<String>> = Vec::new();
            for (l, &sz) in sizes.iter().enumerate() {
                levels.push((0..sz).map(|i| format!("{name}-L{l}-{i}")).collect());
            }
            // Top it with a suppression level unless already singleton.
            let mut maps = maps;
            if *sizes.last().expect("nonempty") > 1 {
                maps.push(vec![0; *sizes.last().expect("nonempty")]);
                levels.push(vec![format!("{name}-*")]);
            }
            Hierarchy::from_levels(name, levels, maps).expect("constructed valid")
        })
    })
}

/// A random 3-attribute table (7 × arbitrary hierarchies would explode the
/// lattice; 3 keeps brute force honest while covering the multi-attribute
/// machinery).
fn arb_table() -> impl Strategy<Value = Table> {
    (arb_hierarchy("A"), arb_hierarchy("B"), arb_hierarchy("C")).prop_flat_map(|(ha, hb, hc)| {
        let (ga, gb, gc) = (ha.ground_size(), hb.ground_size(), hc.ground_size());
        let schema = Schema::new(vec![
            Attribute::new("A", ha),
            Attribute::new("B", hb),
            Attribute::new("C", hc),
        ])
        .expect("distinct names");
        proptest::collection::vec(
            (0..ga as u32, 0..gb as u32, 0..gc as u32),
            0..40,
        )
        .prop_map(move |rows| {
            let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
            for (a, b, c) in rows {
                cols[0].push(a);
                cols[1].push(b);
                cols[2].push(c);
            }
            Table::from_columns(schema.clone(), cols).expect("ids in range")
        })
    })
}

/// Brute force: test every node of the full lattice directly.
fn brute_force(table: &Table, qi: &[usize], k: u64) -> Vec<Vec<u8>> {
    let lattice = CandidateGraph::full_lattice(table.schema(), qi);
    let mut out: Vec<Vec<u8>> = lattice
        .nodes()
        .iter()
        .filter(|n| {
            table
                .frequency_set(&n.to_group_spec().expect("valid spec"))
                .expect("valid spec")
                .is_k_anonymous(k)
        })
        .map(|n| n.levels())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §3.2: Incognito (all variants) returns exactly the brute-force set.
    #[test]
    fn incognito_sound_and_complete(table in arb_table(), k in 1u64..6) {
        let qi = [0usize, 1, 2];
        let truth = brute_force(&table, &qi, k);
        for cfg in [
            Config::new(k),
            Config::new(k).with_superroots(true),
            Config::new(k).with_rollup(false),
            Config::new(k).with_prune(PruneStrategy::HashSet),
        ] {
            let r = run_incognito(&table, &qi, &cfg).expect("valid workload");
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            prop_assert_eq!(&got, &truth, "cfg {:?}", cfg);
        }
        let cube = cube_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
        let got: Vec<Vec<u8>> =
            cube.generalizations().iter().map(|g| g.levels.clone()).collect();
        prop_assert_eq!(&got, &truth, "cube variant");
        let bu = bottom_up_search(&table, &qi, &Config::new(k)).expect("valid workload");
        let got: Vec<Vec<u8>> = bu.generalizations().iter().map(|g| g.levels.clone()).collect();
        prop_assert_eq!(&got, &truth, "bottom-up");
    }

    /// Binary search finds exactly the minimal-height members of the truth.
    #[test]
    fn binary_search_finds_minimal_height(table in arb_table(), k in 1u64..6) {
        let qi = [0usize, 1, 2];
        let truth = brute_force(&table, &qi, k);
        let result = samarati_binary_search(&table, &qi, &Config::new(k));
        if truth.is_empty() {
            prop_assert!(result.is_err());
        } else {
            let min_h = truth
                .iter()
                .map(|ls| ls.iter().map(|&l| l as u32).sum::<u32>())
                .min()
                .expect("nonempty");
            let r = result.expect("satisfiable");
            prop_assert_eq!(r.minimal_height(), Some(min_h));
            for g in r.generalizations() {
                prop_assert!(truth.contains(&g.levels));
                prop_assert_eq!(g.height(), min_h);
            }
        }
    }

    /// Generalization Property: k-anonymous at P ⇒ k-anonymous at any
    /// generalization Q of P.
    #[test]
    fn generalization_property(table in arb_table(), k in 1u64..6) {
        let schema = table.schema().clone();
        let lattice = CandidateGraph::full_lattice(&schema, &[0, 1, 2]);
        for &(s, e) in lattice.edges() {
            let fs = table
                .frequency_set(&lattice.node(s).to_group_spec().expect("valid"))
                .expect("valid");
            if fs.is_k_anonymous(k) {
                let fe = table
                    .frequency_set(&lattice.node(e).to_group_spec().expect("valid"))
                    .expect("valid");
                prop_assert!(fe.is_k_anonymous(k));
            }
        }
    }

    /// Rollup Property: rolling a frequency set up equals rescanning at the
    /// higher levels.
    #[test]
    fn rollup_property(table in arb_table(), lift in proptest::collection::vec(0u8..3, 3)) {
        let schema = table.schema().clone();
        let ground = table
            .frequency_set(&GroupSpec::ground(&[0, 1, 2]).expect("valid"))
            .expect("valid");
        let target: Vec<u8> = (0..3)
            .map(|i| lift[i].min(schema.hierarchy(i).height()))
            .collect();
        let rolled = ground.rollup(&schema, &target).expect("upward");
        let spec = GroupSpec::new(
            (0..3).map(|i| (i, target[i])).collect(),
        ).expect("valid");
        let scanned = table.frequency_set(&spec).expect("valid");
        prop_assert_eq!(
            rolled.to_labeled_rows(&schema),
            scanned.to_labeled_rows(&schema)
        );
    }

    /// Subset Property: k-anonymous w.r.t. Q ⇒ k-anonymous w.r.t. P ⊆ Q;
    /// equivalently projections of frequency sets match narrow scans.
    #[test]
    fn subset_property(table in arb_table(), k in 1u64..6) {
        let schema = table.schema().clone();
        let wide = table
            .frequency_set(&GroupSpec::ground(&[0, 1, 2]).expect("valid"))
            .expect("valid");
        for keep in [vec![0usize], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2]] {
            let proj = wide.project(&keep).expect("valid positions");
            let attrs: Vec<usize> = keep.clone();
            let scan = table
                .frequency_set(&GroupSpec::ground(&attrs).expect("valid"))
                .expect("valid");
            prop_assert_eq!(
                proj.to_labeled_rows(&schema),
                scan.to_labeled_rows(&schema)
            );
            if wide.is_k_anonymous(k) {
                prop_assert!(proj.is_k_anonymous(k));
            }
        }
    }

    /// Every generalization Incognito reports materializes to a view that
    /// really is k-anonymous; the bottom lattice node is reported iff the
    /// raw table is k-anonymous.
    #[test]
    fn reported_generalizations_materialize_k_anonymous(
        table in arb_table(),
        k in 1u64..6,
    ) {
        let qi = [0usize, 1, 2];
        let r = run_incognito(&table, &qi, &Config::new(k)).expect("valid workload");
        for g in r.generalizations().iter().take(8) {
            let (view, suppressed) = r.materialize(&table, g).expect("reported gens valid");
            prop_assert_eq!(suppressed, 0);
            let spec = GroupSpec::ground(&qi).expect("valid");
            prop_assert!(view.is_k_anonymous(&spec, k).expect("valid"));
        }
        let raw_anonymous = table
            .frequency_set(&GroupSpec::ground(&qi).expect("valid"))
            .expect("valid")
            .is_k_anonymous(k);
        prop_assert_eq!(r.contains(&[0, 0, 0]), raw_anonymous);
    }
}

/// Suppression-threshold semantics hold under the same property regime.
#[test]
fn suppression_matches_brute_force_on_fixed_tables() {
    let t = incognito::data::patients();
    for k in [2u64, 3] {
        for max_sup in [0u64, 1, 2, 3] {
            let cfg = Config::new(k).with_suppression(max_sup);
            let r = run_incognito(&t, &[0, 1, 2], &cfg).expect("valid workload");
            let lattice = CandidateGraph::full_lattice(t.schema(), &[0, 1, 2]);
            let mut truth: Vec<Vec<u8>> = lattice
                .nodes()
                .iter()
                .filter(|n| {
                    let f = t
                        .frequency_set(&n.to_group_spec().expect("valid"))
                        .expect("valid");
                    if max_sup == 0 {
                        f.is_k_anonymous(k)
                    } else {
                        f.is_k_anonymous_with_suppression(k, max_sup)
                    }
                })
                .map(|n| n.levels())
                .collect();
            truth.sort();
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(got, truth, "k={k} max_sup={max_sup}");
        }
    }
}
