//! The [`TraceEvent`] stream and the [`SearchStats`] counters are two
//! independent recordings of the same search; this test asserts they agree
//! — per iteration and in aggregate — for Basic, Super-roots, and Cube
//! Incognito over the Patients table. A drift between them means one of
//! the two observability paths lies about what the algorithm did.

use incognito::algo::cube::cube_incognito_traced;
use incognito::algo::trace::TraceEvent;
use incognito::algo::{incognito::incognito_traced, AnonymizationResult, Config};
use incognito::data::patients;

/// Per-iteration counts reconstructed from a trace stream.
#[derive(Debug, Default, PartialEq, Eq)]
struct IterCounts {
    arity: usize,
    candidates: usize,
    edges: usize,
    checked: usize,
    marked: usize,
    survivors: usize,
}

fn counts_from_trace(trace: &[TraceEvent]) -> Vec<IterCounts> {
    let mut iters: Vec<IterCounts> = Vec::new();
    for event in trace {
        match event {
            TraceEvent::IterationStart { arity, candidates, edges } => {
                iters.push(IterCounts {
                    arity: *arity,
                    candidates: *candidates,
                    edges: *edges,
                    ..IterCounts::default()
                });
            }
            TraceEvent::Checked { .. } => iters.last_mut().expect("start precedes").checked += 1,
            TraceEvent::Marked { .. } => iters.last_mut().expect("start precedes").marked += 1,
            TraceEvent::IterationEnd { survivors } => {
                iters.last_mut().expect("start precedes").survivors = *survivors;
            }
        }
    }
    iters
}

fn assert_consistent(label: &str, result: &AnonymizationResult, trace: &[TraceEvent]) {
    let from_trace = counts_from_trace(trace);
    let stats = result.stats();
    assert_eq!(
        from_trace.len(),
        stats.iterations.len(),
        "{label}: iteration count differs between trace and stats"
    );
    for (t, s) in from_trace.iter().zip(stats.iterations.iter()) {
        assert_eq!(t.arity, s.arity, "{label}: arity");
        assert_eq!(t.candidates, s.candidates, "{label}: candidates at arity {}", s.arity);
        assert_eq!(t.edges, s.edges, "{label}: edges at arity {}", s.arity);
        assert_eq!(t.checked, s.nodes_checked, "{label}: checked at arity {}", s.arity);
        assert_eq!(t.marked, s.nodes_marked, "{label}: marked at arity {}", s.arity);
        assert_eq!(t.survivors, s.survivors, "{label}: survivors at arity {}", s.arity);
    }
    // Aggregates agree with the per-iteration sums by construction, but
    // assert anyway: the accessors are what the bench reports serialize.
    let checked: usize = from_trace.iter().map(|i| i.checked).sum();
    let marked: usize = from_trace.iter().map(|i| i.marked).sum();
    assert_eq!(checked, stats.nodes_checked(), "{label}: aggregate checked");
    assert_eq!(marked, stats.nodes_marked(), "{label}: aggregate marked");
}

#[test]
fn basic_incognito_trace_matches_stats() {
    let t = patients();
    let (result, trace) = incognito_traced(&t, &[0, 1, 2], &Config::new(2)).unwrap();
    assert!(trace.iter().any(|e| matches!(e, TraceEvent::Checked { .. })));
    assert_consistent("basic", &result, &trace);
}

#[test]
fn superroots_incognito_trace_matches_stats() {
    let t = patients();
    let cfg = Config::new(2).with_superroots(true);
    let (result, trace) = incognito_traced(&t, &[0, 1, 2], &cfg).unwrap();
    assert_consistent("superroots", &result, &trace);
}

#[test]
fn cube_incognito_trace_matches_stats() {
    let t = patients();
    let mut trace = Vec::new();
    let result = cube_incognito_traced(&t, &[0, 1, 2], &Config::new(2), &mut |e| trace.push(e)).unwrap();
    assert_consistent("cube", &result, &trace);
}

#[test]
fn all_three_variants_agree_on_the_answer() {
    let t = patients();
    let cfg = Config::new(2);
    let (basic, _) = incognito_traced(&t, &[0, 1, 2], &cfg).unwrap();
    let (sup, _) = incognito_traced(&t, &[0, 1, 2], &cfg.clone().with_superroots(true)).unwrap();
    let cube = cube_incognito_traced(&t, &[0, 1, 2], &cfg, &mut |_| {}).unwrap();
    assert_eq!(basic.generalizations(), sup.generalizations());
    assert_eq!(basic.generalizations(), cube.generalizations());
}
