//! The ISSUE 2 acceptance criterion for the trace tree: running Basic
//! Incognito with tracing enabled must produce a Chrome-trace span
//! forest nesting search → iteration → node-check → table scan/rollup.
//!
//! Trace collection is process-global, so this file holds exactly one
//! test function.

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::patients;
use incognito::obs::trace;
use incognito::obs::Json;

#[test]
fn incognito_run_emits_nested_iteration_check_scan_spans() {
    trace::clear();
    trace::set_enabled(true);
    let table = patients();
    let result = run_incognito(&table, &[0, 1, 2], &Config::new(2)).expect("valid workload");
    trace::set_enabled(false);
    let records = trace::drain();
    assert!(!result.generalizations().is_empty());
    assert!(!records.is_empty(), "tracing was enabled, spans must exist");

    let find = |seq: u64| records.iter().find(|r| r.seq == seq).unwrap();

    // The search root carries the workload identity.
    let search = records.iter().find(|r| r.name == "search").expect("search span");
    assert_eq!(search.parent, None);
    assert!(search.args.iter().any(|(k, v)| k == "algo" && v.as_str() == Some("basic")));
    assert!(search.args.iter().any(|(k, v)| k == "k" && v.as_int() == Some(2)));

    // Every iteration hangs off the search; the patients workload has
    // three subset-size iterations.
    let iterations: Vec<_> = records.iter().filter(|r| r.name == "iteration").collect();
    assert_eq!(iterations.len(), 3, "qi arity 3 means iterations 1..=3");
    for it in &iterations {
        assert_eq!(it.parent, Some(search.seq), "iteration nests under search");
    }

    // Every check nests under an iteration, and at least one table scan
    // and one rollup nest under checks — the full chain the acceptance
    // criterion names.
    let checks: Vec<_> = records.iter().filter(|r| r.name == "check").collect();
    assert!(!checks.is_empty());
    for c in &checks {
        let parent = find(c.parent.expect("check has a parent"));
        assert_eq!(parent.name, "iteration", "check nests under iteration");
    }
    let mut scans_under_checks = 0;
    let mut rollups_under_checks = 0;
    for r in &records {
        if r.name != "table.scan" && r.name != "table.rollup" {
            continue;
        }
        if let Some(p) = r.parent {
            if find(p).name == "check" {
                if r.name == "table.scan" {
                    scans_under_checks += 1;
                } else {
                    rollups_under_checks += 1;
                }
            }
        }
    }
    assert!(scans_under_checks > 0, "table.scan spans nest under checks");
    assert!(rollups_under_checks > 0, "table.rollup spans nest under checks");

    // Candidate generation runs at the end of each iteration, under it.
    let gen = records.iter().find(|r| r.name == "candidate.generate").expect("lattice spans");
    assert_eq!(find(gen.parent.unwrap()).name, "iteration");

    // The emitted Chrome JSON is well-formed and keeps the chain intact.
    let doc = trace::to_chrome_json(&records);
    assert!(Json::parse(&doc.to_pretty_string()).is_ok());
    let back = trace::from_chrome_json(&doc).unwrap();
    assert_eq!(back.len(), records.len());

    // The explain renderer folds the same records into one row per
    // iteration with the totals the engine reported.
    let plan = incognito::report::explain_trace(&records);
    assert!(plan.contains("basic"), "{plan}");
    assert!(plan.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count() >= 3);
    assert!(plan.contains("span profile"), "{plan}");
}
