//! End-to-end pipelines over the synthetic experiment datasets: the flows
//! a user of the library actually runs, spanning every crate.

use incognito::algo::cube::{anonymize_with_cube, Cube};
use incognito::algo::datafly::datafly;
use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::csvio::{read_csv, write_csv};
use incognito::data::{adults, lands_end, patients, AdultsConfig, LandsEndConfig};
use incognito::table::GroupSpec;

#[test]
fn adults_pipeline_multiple_k() {
    let table = adults(&AdultsConfig { rows: 8_000, seed: 5 });
    let qi = [0usize, 1, 3, 4]; // Age, Gender, Marital, Education
    let spec = GroupSpec::ground(&qi).unwrap();

    let mut prev_count = usize::MAX;
    for k in [2u64, 10, 50] {
        let r = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        assert!(!r.is_empty(), "full suppression always qualifies");
        // Monotonicity: larger k admits fewer (or equal) generalizations.
        assert!(r.len() <= prev_count, "k={k}");
        prev_count = r.len();

        // Every reported generalization materializes k-anonymous; spot
        // check a few, including the extremes.
        let gens = r.generalizations();
        for g in [gens.first(), gens.last()].into_iter().flatten() {
            let (view, suppressed) = r.materialize(&table, g).unwrap();
            assert_eq!(suppressed, 0);
            assert!(view.is_k_anonymous(&spec, k).unwrap());
            assert_eq!(view.num_rows(), table.num_rows());
        }
        // The minimal frontier is an antichain.
        let frontier = r.minimal_frontier();
        for a in &frontier {
            for b in &frontier {
                assert!(!a.is_generalized_by(b), "frontier must be incomparable");
            }
        }
    }
}

#[test]
fn landsend_pipeline_with_cube_reuse() {
    let table = lands_end(&LandsEndConfig { rows: 30_000, seed: 2 });
    let qi = [0usize, 1, 2, 3];
    let cube = Cube::build(&table, &qi, 2).unwrap();
    for k in [2u64, 25] {
        let via_cube = anonymize_with_cube(&table, &cube, &Config::new(k), &mut |_| {}).unwrap();
        let basic = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        assert_eq!(via_cube.generalizations(), basic.generalizations(), "k={k}");
        // Cube path scans the base table exactly once (the cube seed).
        assert_eq!(via_cube.stats().table_scans, 1);
    }
}

#[test]
fn suppression_threshold_end_to_end() {
    let table = adults(&AdultsConfig { rows: 5_000, seed: 6 });
    let qi = [0usize, 4]; // Age, Education
    let k = 25u64;
    let strict = run_incognito(&table, &qi, &Config::new(k)).unwrap();
    let relaxed = run_incognito(&table, &qi, &Config::new(k).with_suppression(100)).unwrap();
    // Relaxation is monotone: every strict answer stays, typically more join.
    for g in strict.generalizations() {
        assert!(relaxed.contains(&g.levels));
    }
    assert!(relaxed.len() >= strict.len());
    // A relaxed-only generalization materializes to a k-anonymous view
    // after suppressing at most the budget.
    if let Some(extra) = relaxed
        .generalizations()
        .iter()
        .find(|g| !strict.contains(&g.levels))
    {
        let (view, suppressed) = relaxed.materialize(&table, extra).unwrap();
        assert!(suppressed > 0 && suppressed <= 100);
        let spec = GroupSpec::ground(&qi).unwrap();
        assert!(view.is_k_anonymous(&spec, k).unwrap());
    }
}

#[test]
fn datafly_vs_incognito_minimality_gap() {
    // Datafly is valid but not minimal; Incognito's complete set lets us
    // quantify the gap the paper's related-work section mentions.
    let table = adults(&AdultsConfig { rows: 5_000, seed: 8 });
    let qi = [0usize, 1, 3];
    let k = 5u64;
    let d = datafly(&table, &qi, &Config::new(k)).unwrap();
    let complete = run_incognito(&table, &qi, &Config::new(k).with_suppression(k)).unwrap();
    let d_levels = &d.generalizations()[0].levels;
    assert!(complete.contains(d_levels), "datafly answer must be in the complete set");
    let d_height: u32 = d.generalizations()[0].height();
    let min_height = complete.minimal_height().unwrap();
    assert!(d_height >= min_height);
}

#[test]
fn csv_roundtrip_of_release() {
    let table = patients();
    let r = run_incognito(&table, &[0, 1, 2], &Config::new(2)).unwrap();
    let g = r.minimal_by_height()[0];
    let (view, _) = r.materialize(&table, g).unwrap();
    let mut buf = Vec::new();
    write_csv(&view, &mut buf).unwrap();
    let back = read_csv(view.schema().clone(), &buf[..]).unwrap();
    assert_eq!(back.num_rows(), view.num_rows());
    for row in 0..view.num_rows() {
        for attr in 0..view.schema().arity() {
            assert_eq!(back.label(row, attr), view.label(row, attr));
        }
    }
}

#[test]
fn stats_account_for_every_node() {
    // checked + marked = candidates, per iteration: every candidate's
    // status is determined exactly once.
    let table = adults(&AdultsConfig { rows: 5_000, seed: 9 });
    let r = run_incognito(&table, &[0, 1, 2, 3, 4], &Config::new(2)).unwrap();
    for it in &r.stats().iterations {
        assert_eq!(
            it.nodes_checked + it.nodes_marked,
            it.candidates,
            "iteration {}",
            it.arity
        );
        assert!(it.survivors <= it.candidates);
    }
    // Rollup accounting is consistent.
    let s = r.stats();
    assert_eq!(s.freq_from_scan, s.table_scans);
    assert_eq!(s.freq_from_scan + s.freq_from_rollup, s.nodes_checked() + extra_superroot_scans(s));
}

/// Basic Incognito performs no super-root scans, so the balance is exact;
/// kept as a named helper to document the identity.
fn extra_superroot_scans(_s: &incognito::algo::SearchStats) -> usize {
    0
}

#[test]
fn parallel_scans_do_not_change_any_algorithm_result() {
    let table = lands_end(&LandsEndConfig { rows: 20_000, seed: 3 });
    let qi = [0usize, 1, 2];
    for k in [2u64, 10] {
        let serial = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        let parallel = run_incognito(&table, &qi, &Config::new(k).with_threads(4)).unwrap();
        assert_eq!(serial.generalizations(), parallel.generalizations(), "k={k}");
    }
    use incognito::algo::binary_search::samarati_binary_search;
    let a = samarati_binary_search(&table, &qi, &Config::new(5)).unwrap();
    let b = samarati_binary_search(&table, &qi, &Config::new(5).with_threads(4)).unwrap();
    assert_eq!(a.generalizations(), b.generalizations());
}

#[test]
fn freq_store_serves_repeated_anonymizations() {
    use incognito::algo::materialize::{incognito_with_store, FreqStore, MaterializationPolicy};
    let table = adults(&AdultsConfig { rows: 8_000, seed: 11 });
    let qi = [0usize, 1, 3];
    let mut store = FreqStore::build(&table, &qi, MaterializationPolicy::ZeroCube).unwrap();
    for k in [2u64, 10, 50] {
        let via_store = incognito_with_store(&table, &qi, &Config::new(k), &mut store).unwrap();
        let basic = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        assert_eq!(via_store.generalizations(), basic.generalizations(), "k={k}");
    }
    // Sub-QI runs are also served from the same store, still scan-free.
    let sub = incognito_with_store(&table, &[0, 1], &Config::new(10), &mut store).unwrap();
    assert_eq!(
        sub.generalizations(),
        run_incognito(&table, &[0, 1], &Config::new(10)).unwrap().generalizations()
    );
    assert_eq!(store.stats().misses, 0, "zero-cube store never rescans the table");
}

#[test]
fn superroots_reduce_table_scans_without_changing_answers() {
    let table = adults(&AdultsConfig { rows: 10_000, seed: 10 });
    let qi = [0usize, 1, 2, 3, 4, 5];
    let basic = run_incognito(&table, &qi, &Config::new(2)).unwrap();
    let sup = run_incognito(&table, &qi, &Config::new(2).with_superroots(true)).unwrap();
    assert_eq!(basic.generalizations(), sup.generalizations());
    assert!(
        sup.stats().table_scans < basic.stats().table_scans,
        "super-roots {} vs basic {}",
        sup.stats().table_scans,
        basic.stats().table_scans
    );
}
