//! In-memory vs. out-of-core equivalence: every engine must return
//! byte-identical results at every memory budget. The budget changes the
//! *representation* of the frequency sets (in memory vs. spilled to hash
//! partitions on disk), never the search: generalization sets,
//! per-iteration survivor counts, and per-generalization suppression
//! tallies all must match the unbudgeted reference exactly.
//!
//! Budgets exercised: unlimited (nothing spills), tight (1 KiB — below
//! any table's live footprint, so everything spills), and zero (the
//! degenerate always-over-budget case). Plus: the disk-backed rollup
//! must agree group-for-group with `FrequencySet::rollup` on the
//! Figure 9 datasets.

use incognito::algo::bottom_up::bottom_up_search;
use incognito::algo::cube::cube_incognito;
use incognito::algo::{incognito as run_incognito, AnonymizationResult, Config};
use incognito::data::{adults, lands_end, AdultsConfig, LandsEndConfig};
use incognito::table::{ExternalFrequencySet, GroupSpec, Table};

const KS: [u64; 2] = [2, 10];

fn table() -> Table {
    adults(&AdultsConfig { rows: 3_000, seed: 42 })
}

fn qi() -> Vec<usize> {
    (0..4).collect()
}

/// The three budget regimes, applied to an engine config. `None` lifts
/// any budget (including an `INCOGNITO_MEM_BUDGET` from the environment —
/// the CI out-of-core job sets one, and the unlimited case must still be
/// genuinely unlimited there).
fn budgets() -> [(&'static str, Option<u64>); 3] {
    [("unlimited", None), ("tight", Some(1024)), ("zero", Some(0))]
}

fn with_budget(cfg: Config, budget: Option<u64>) -> Config {
    match budget {
        Some(b) => cfg.with_memory_budget(b),
        None => cfg.with_unlimited_memory(),
    }
}

/// Exact-match assertion: generalization sets, per-iteration survivor
/// counts, and the suppression tally of every returned generalization.
fn assert_matches(
    table: &Table,
    reference: &AnonymizationResult,
    got: &AnonymizationResult,
    label: &str,
) {
    assert_eq!(
        got.generalizations(),
        reference.generalizations(),
        "{label}: generalization sets diverge"
    );
    let ref_survivors: Vec<usize> =
        reference.stats().iterations.iter().map(|i| i.survivors).collect();
    let got_survivors: Vec<usize> =
        got.stats().iterations.iter().map(|i| i.survivors).collect();
    assert_eq!(got_survivors, ref_survivors, "{label}: per-iteration survivors diverge");

    // tuples_below at each returned generalization: recompute from the
    // base table under both results' (qi, k) and compare. With identical
    // generalization sets this can only diverge if the result carries
    // different qi/k metadata — assert those too via the tally.
    assert_eq!(got.qi(), reference.qi(), "{label}: qi diverges");
    for (rg, gg) in reference.generalizations().iter().zip(got.generalizations()) {
        let spec = |g: &incognito::algo::Generalization, qi: &[usize]| {
            GroupSpec::new(qi.iter().copied().zip(g.levels.iter().copied()).collect()).unwrap()
        };
        let rt = table.frequency_set(&spec(rg, reference.qi())).unwrap().tuples_below(reference.k());
        let gt = table.frequency_set(&spec(gg, got.qi())).unwrap().tuples_below(got.k());
        assert_eq!(gt, rt, "{label}: tuples_below tally diverges at {:?}", gg.levels);
    }
}

#[test]
fn basic_incognito_is_budget_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let reference =
            run_incognito(&t, &qi, &Config::new(k).with_suppression(k).with_unlimited_memory())
                .unwrap();
        for (name, budget) in budgets() {
            let cfg = with_budget(Config::new(k).with_suppression(k), budget);
            let r = run_incognito(&t, &qi, &cfg).unwrap();
            assert_matches(&t, &reference, &r, &format!("basic k={k} budget={name}"));
        }
    }
}

#[test]
fn superroots_incognito_is_budget_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let base = || Config::new(k).with_superroots(true);
        let reference = run_incognito(&t, &qi, &base().with_unlimited_memory()).unwrap();
        for (name, budget) in budgets() {
            let r = run_incognito(&t, &qi, &with_budget(base(), budget)).unwrap();
            assert_matches(&t, &reference, &r, &format!("superroots k={k} budget={name}"));
        }
    }
}

#[test]
fn cube_incognito_is_budget_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let reference = cube_incognito(&t, &qi, &Config::new(k).with_unlimited_memory()).unwrap();
        for (name, budget) in budgets() {
            let r = cube_incognito(&t, &qi, &with_budget(Config::new(k), budget)).unwrap();
            assert_matches(&t, &reference, &r, &format!("cube k={k} budget={name}"));
        }
    }
}

#[test]
fn bottom_up_is_budget_invariant_with_and_without_rollup() {
    let t = table();
    let qi = qi();
    for k in KS {
        for rollup in [true, false] {
            let base = || Config::new(k).with_rollup(rollup);
            let reference = bottom_up_search(&t, &qi, &base().with_unlimited_memory()).unwrap();
            for (name, budget) in budgets() {
                let r = bottom_up_search(&t, &qi, &with_budget(base(), budget)).unwrap();
                assert_matches(
                    &t,
                    &reference,
                    &r,
                    &format!("bottom-up rollup={rollup} k={k} budget={name}"),
                );
            }
        }
    }
}

#[test]
fn engines_agree_with_each_other_under_a_tight_budget() {
    let t = table();
    let qi = qi();
    let cfg = Config::new(2).with_memory_budget(1024);
    let basic = run_incognito(&t, &qi, &cfg).unwrap();
    let superroots =
        run_incognito(&t, &qi, &Config::new(2).with_superroots(true).with_memory_budget(1024))
            .unwrap();
    let cube = cube_incognito(&t, &qi, &cfg).unwrap();
    let bu = bottom_up_search(&t, &qi, &cfg).unwrap();
    for (label, r) in [("superroots", &superroots), ("cube", &cube), ("bottom-up", &bu)] {
        assert_eq!(
            r.generalizations(),
            basic.generalizations(),
            "{label} vs basic under tight budget"
        );
    }
}

/// The disk-backed rollup agrees group-for-group with the in-memory
/// rollup on the Figure 9 (quick-size) datasets: same groups, same
/// counts, at every reachable target.
#[test]
fn external_rollup_agrees_with_in_memory_on_fig09_datasets() {
    let spill = std::env::temp_dir();
    let datasets: [(&str, Table); 2] = [
        ("adults", adults(&AdultsConfig { rows: 4_000, seed: 7 })),
        ("landsend", lands_end(&LandsEndConfig { rows: 5_000, ..LandsEndConfig::default() })),
    ];
    for (name, t) in &datasets {
        let schema = t.schema();
        let qi: Vec<usize> = (0..3).collect();
        let spec = GroupSpec::ground(&qi).unwrap();
        let mem = t.frequency_set(&spec).unwrap();
        let ext = ExternalFrequencySet::build(t, &spec, 16, &spill).unwrap();
        assert_eq!(ext.total(), mem.total(), "{name}: totals diverge");

        // Every single-step target above ground, plus the all-top target.
        let heights: Vec<u8> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
        let mut targets: Vec<Vec<u8>> = Vec::new();
        for i in 0..qi.len() {
            if heights[i] >= 1 {
                let mut levels = vec![0u8; qi.len()];
                levels[i] = 1;
                targets.push(levels);
            }
        }
        targets.push(heights.clone());
        for target in &targets {
            let mem_child = mem.rollup(schema, target).unwrap();
            let ext_child = ext.rollup(schema, target, &spill).unwrap();
            assert_eq!(
                ext_child.into_frequency_set().unwrap().to_labeled_rows(schema),
                mem_child.to_labeled_rows(schema),
                "{name}: rollup to {target:?} diverges"
            );
        }
    }
}
