//! Property tests for the Section 5 model implementations: on random
//! tables with random hierarchies, every anonymizer's output is
//! k-anonymous (after its suppression, where the model allows it) and
//! accounts for every source row.
//!
//! Tables are drawn from the workspace's seeded PRNG so every run checks
//! the same case set.

use incognito::hierarchy::Hierarchy;
use incognito::models::local::cell_generalization_anonymize;
use incognito::models::mondrian::mondrian_anonymize;
use incognito::models::partition1d::ordered_partition_anonymize;
use incognito::models::subtree::{full_subtree_anonymize, SubtreeMode};
use incognito::models::tds::tds_anonymize;
use incognito::obs::Rng;
use incognito::table::{Attribute, Schema, Table};

/// Random balanced hierarchy: ground size 2–6, height 1–2 plus suppression.
fn random_hierarchy(rng: &mut Rng, name: &'static str) -> Hierarchy {
    let ground = rng.range_usize(2, 7);
    let mid = (ground / 2).max(1);
    let mut map: Vec<u32> = (0..ground).map(|_| rng.below(mid as u64) as u32).collect();
    for (i, slot) in map.iter_mut().enumerate().take(mid) {
        *slot = i as u32; // force onto
    }
    let levels = vec![
        (0..ground).map(|i| format!("{name}{i}")).collect::<Vec<_>>(),
        (0..mid).map(|i| format!("{name}m{i}")).collect(),
        vec![format!("{name}*")],
    ];
    Hierarchy::from_levels(name, levels, vec![map, vec![0; mid]]).expect("constructed valid")
}

fn random_table(rng: &mut Rng) -> Table {
    let hx = random_hierarchy(rng, "x");
    let hy = random_hierarchy(rng, "y");
    let (gx, gy) = (hx.ground_size(), hy.ground_size());
    let schema = Schema::new(vec![Attribute::new("x", hx), Attribute::new("y", hy)])
        .expect("distinct names");
    let rows = rng.range_usize(1, 60);
    let mut cols = vec![Vec::new(), Vec::new()];
    for _ in 0..rows {
        cols[0].push(rng.below(gx as u64) as u32);
        cols[1].push(rng.below(gy as u64) as u32);
    }
    Table::from_columns(schema, cols).expect("ids in range")
}

#[test]
fn all_models_produce_valid_releases() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x40DE_0000 + case);
        let table = random_table(&mut rng);
        let k = 1 + rng.below(7);
        let qi = [0usize, 1];
        let n = table.num_rows() as u64;
        type Anonymizer = fn(&Table, &[usize], u64)
            -> Result<incognito::models::AnonymizedRelease, incognito::table::TableError>;
        let subtree: Anonymizer =
            |t, q, k| full_subtree_anonymize(t, q, k, SubtreeMode::FullSubtree);
        let unrestricted: Anonymizer =
            |t, q, k| full_subtree_anonymize(t, q, k, SubtreeMode::Unrestricted);
        let runs: Vec<(&str, Anonymizer)> = vec![
            ("mondrian", mondrian_anonymize as Anonymizer),
            ("partition1d", ordered_partition_anonymize as Anonymizer),
            ("subtree", subtree),
            ("unrestricted", unrestricted),
            ("cell-gen", cell_generalization_anonymize as Anonymizer),
            ("tds", tds_anonymize as Anonymizer),
        ];
        for (name, run) in runs {
            let r = run(&table, &qi, k).expect("anonymizer runs");
            assert_eq!(
                r.view.num_rows() as u64 + r.suppressed,
                n,
                "case {case}: {name} must account for all rows"
            );
            // Global hierarchy/partition models cannot suppress-as-fallback
            // when |T| ≥ k (full generalization is always available);
            // Mondrian/partition never suppress at all.
            if n >= k {
                assert!(
                    r.is_k_anonymous(k),
                    "case {case}: {name} must be k-anonymous for |T| ≥ k (classes {:?})",
                    r.class_sizes
                );
            }
            let m = r.metrics(k);
            assert!(
                m.loss >= -1e-9 && m.loss <= 1.0 + 1e-9,
                "case {case}: {name} LM {}",
                m.loss
            );
            assert!(
                m.precision >= -1e-9 && m.precision <= 1.0 + 1e-9,
                "case {case}: {name} Prec {}",
                m.precision
            );
        }
    }
}
