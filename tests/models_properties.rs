//! Property tests for the Section 5 model implementations: on random
//! tables with random hierarchies, every anonymizer's output is
//! k-anonymous (after its suppression, where the model allows it) and
//! accounts for every source row.

use proptest::prelude::*;

use incognito::hierarchy::Hierarchy;
use incognito::models::local::cell_generalization_anonymize;
use incognito::models::mondrian::mondrian_anonymize;
use incognito::models::partition1d::ordered_partition_anonymize;
use incognito::models::subtree::{full_subtree_anonymize, SubtreeMode};
use incognito::models::tds::tds_anonymize;
use incognito::table::{Attribute, Schema, Table};

/// Random balanced hierarchy: ground size 2–6, height 1–2 plus suppression.
fn arb_hierarchy(name: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2usize..7).prop_flat_map(move |ground| {
        proptest::collection::vec(0u32..((ground / 2).max(1)) as u32, ground).prop_map(
            move |mut map| {
                let mid = (ground / 2).max(1);
                for (i, slot) in map.iter_mut().enumerate().take(mid) {
                    *slot = i as u32; // force onto
                }
                let levels = vec![
                    (0..ground).map(|i| format!("{name}{i}")).collect::<Vec<_>>(),
                    (0..mid).map(|i| format!("{name}m{i}")).collect(),
                    vec![format!("{name}*")],
                ];
                Hierarchy::from_levels(name, levels, vec![map, vec![0; mid]])
                    .expect("constructed valid")
            },
        )
    })
}

fn arb_table() -> impl Strategy<Value = Table> {
    (arb_hierarchy("x"), arb_hierarchy("y")).prop_flat_map(|(hx, hy)| {
        let (gx, gy) = (hx.ground_size(), hy.ground_size());
        let schema = Schema::new(vec![Attribute::new("x", hx), Attribute::new("y", hy)])
            .expect("distinct names");
        proptest::collection::vec((0..gx as u32, 0..gy as u32), 1..60).prop_map(move |rows| {
            let mut cols = vec![Vec::new(), Vec::new()];
            for (a, b) in rows {
                cols[0].push(a);
                cols[1].push(b);
            }
            Table::from_columns(schema.clone(), cols).expect("ids in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_models_produce_valid_releases(table in arb_table(), k in 1u64..8) {
        let qi = [0usize, 1];
        let n = table.num_rows() as u64;
        type Anonymizer = fn(&Table, &[usize], u64)
            -> Result<incognito::models::AnonymizedRelease, incognito::table::TableError>;
        let subtree: Anonymizer =
            |t, q, k| full_subtree_anonymize(t, q, k, SubtreeMode::FullSubtree);
        let unrestricted: Anonymizer =
            |t, q, k| full_subtree_anonymize(t, q, k, SubtreeMode::Unrestricted);
        let runs: Vec<(&str, Anonymizer)> = vec![
            ("mondrian", mondrian_anonymize as Anonymizer),
            ("partition1d", ordered_partition_anonymize as Anonymizer),
            ("subtree", subtree),
            ("unrestricted", unrestricted),
            ("cell-gen", cell_generalization_anonymize as Anonymizer),
            ("tds", tds_anonymize as Anonymizer),
        ];
        for (name, run) in runs {
            let r = run(&table, &qi, k).expect("anonymizer runs");
            prop_assert_eq!(
                r.view.num_rows() as u64 + r.suppressed,
                n,
                "{} must account for all rows", name
            );
            // Global hierarchy/partition models cannot suppress-as-fallback
            // when |T| ≥ k (full generalization is always available);
            // Mondrian/partition never suppress at all.
            if n >= k {
                prop_assert!(
                    r.is_k_anonymous(k),
                    "{} must be k-anonymous for |T| ≥ k (classes {:?})",
                    name,
                    r.class_sizes
                );
            }
            let m = r.metrics(k);
            prop_assert!(m.loss >= -1e-9 && m.loss <= 1.0 + 1e-9, "{name} LM {}", m.loss);
            prop_assert!(
                m.precision >= -1e-9 && m.precision <= 1.0 + 1e-9,
                "{name} Prec {}",
                m.precision
            );
        }
    }
}
