//! Parallel/serial equivalence: every engine must return the identical
//! generalization set — and identical per-iteration survivor counts — no
//! matter how many worker threads drive it. The wave-parallel search is
//! designed to replay the serial engine's state transitions exactly
//! (DESIGN.md §8); this suite is the enforcement.

use incognito::algo::cube::cube_incognito;
use incognito::algo::materialize::{incognito_with_store, FreqStore, MaterializationPolicy};
use incognito::algo::{incognito as run_incognito, AnonymizationResult, Config};
use incognito::data::{adults, AdultsConfig};
use incognito::table::Table;

const THREADS: [usize; 3] = [1, 2, 8];
const KS: [u64; 2] = [2, 10];

fn table() -> Table {
    adults(&AdultsConfig { rows: 5_000, seed: 42 })
}

fn qi() -> Vec<usize> {
    (0..5).collect()
}

/// Generalization sets and per-iteration survivor counts must match the
/// serial reference exactly, not merely be equivalent up to reordering.
fn assert_matches(reference: &AnonymizationResult, got: &AnonymizationResult, label: &str) {
    assert_eq!(
        got.generalizations(),
        reference.generalizations(),
        "{label}: generalization sets diverge"
    );
    let ref_survivors: Vec<usize> =
        reference.stats().iterations.iter().map(|i| i.survivors).collect();
    let got_survivors: Vec<usize> =
        got.stats().iterations.iter().map(|i| i.survivors).collect();
    assert_eq!(got_survivors, ref_survivors, "{label}: per-iteration survivors diverge");
}

#[test]
fn basic_incognito_is_thread_count_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let reference = run_incognito(&t, &qi, &Config::new(k).with_threads(1)).unwrap();
        for threads in THREADS {
            let cfg = Config::new(k).with_threads(threads);
            let r = run_incognito(&t, &qi, &cfg).unwrap();
            assert_matches(&reference, &r, &format!("basic k={k} threads={threads}"));
        }
    }
}

#[test]
fn superroots_incognito_is_thread_count_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let serial = Config::new(k).with_superroots(true).with_threads(1);
        let reference = run_incognito(&t, &qi, &serial).unwrap();
        for threads in THREADS {
            let cfg = Config::new(k).with_superroots(true).with_threads(threads);
            let r = run_incognito(&t, &qi, &cfg).unwrap();
            assert_matches(&reference, &r, &format!("superroots k={k} threads={threads}"));
        }
    }
}

#[test]
fn cube_incognito_is_thread_count_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let reference = cube_incognito(&t, &qi, &Config::new(k).with_threads(1)).unwrap();
        for threads in THREADS {
            let cfg = Config::new(k).with_threads(threads);
            let r = cube_incognito(&t, &qi, &cfg).unwrap();
            assert_matches(&reference, &r, &format!("cube k={k} threads={threads}"));
        }
    }
}

#[test]
fn store_backed_incognito_is_thread_count_invariant() {
    let t = table();
    let qi = qi();
    for k in KS {
        let mut ref_store =
            FreqStore::build(&t, &qi, MaterializationPolicy::ZeroCube).unwrap();
        let serial = Config::new(k).with_threads(1);
        let reference = incognito_with_store(&t, &qi, &serial, &mut ref_store).unwrap();
        for threads in THREADS {
            // A fresh store per run: the store mutates as it answers.
            let mut store =
                FreqStore::build(&t, &qi, MaterializationPolicy::ZeroCube).unwrap();
            let cfg = Config::new(k).with_threads(threads);
            let r = incognito_with_store(&t, &qi, &cfg, &mut store).unwrap();
            assert_matches(&reference, &r, &format!("store k={k} threads={threads}"));
        }
    }
}

#[test]
fn engines_agree_with_each_other_at_every_thread_count() {
    let t = table();
    let qi = qi();
    for threads in THREADS {
        let cfg = Config::new(2).with_threads(threads);
        let basic = run_incognito(&t, &qi, &cfg).unwrap();
        let superroots =
            run_incognito(&t, &qi, &Config::new(2).with_superroots(true).with_threads(threads))
                .unwrap();
        let cube = cube_incognito(&t, &qi, &cfg).unwrap();
        let mut store = FreqStore::build(&t, &qi, MaterializationPolicy::ZeroCube).unwrap();
        let stored = incognito_with_store(&t, &qi, &cfg, &mut store).unwrap();
        for (label, r) in
            [("superroots", &superroots), ("cube", &cube), ("store", &stored)]
        {
            assert_eq!(
                r.generalizations(),
                basic.generalizations(),
                "{label} vs basic at threads={threads}"
            );
        }
    }
}
