//! Cross-validation of the Section 5 model implementations against the
//! core full-domain machinery and against each other, on the synthetic
//! experiment data.

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::{adults, patients, AdultsConfig};
use incognito::models::genetic::{genetic_anonymize, GeneticConfig};
use incognito::models::local::{cell_generalization_anonymize, cell_suppression_anonymize};
use incognito::models::mondrian::mondrian_anonymize;
use incognito::models::partition1d::ordered_partition_anonymize;
use incognito::models::release::{attribute_suppression_release, full_domain_release};
use incognito::models::subgraph::full_subgraph_anonymize;
use incognito::models::subtree::{full_subtree_anonymize, SubtreeMode};
use incognito::models::tds::tds_anonymize;
use incognito::table::Table;

fn workloads() -> Vec<(Table, Vec<usize>, u64)> {
    vec![
        (patients(), vec![0, 1, 2], 2),
        (adults(&AdultsConfig { rows: 2_000, seed: 50 }), vec![0, 1], 10),
        (adults(&AdultsConfig { rows: 2_000, seed: 51 }), vec![0, 3, 4], 15),
    ]
}

#[test]
fn every_model_produces_a_k_anonymous_release() {
    for (table, qi, k) in workloads() {
        let checks: Vec<(&str, incognito::models::AnonymizedRelease)> = vec![
            ("attr-suppression", attribute_suppression_release(&table, &qi, k).unwrap()),
            (
                "full-subtree",
                full_subtree_anonymize(&table, &qi, k, SubtreeMode::FullSubtree).unwrap(),
            ),
            (
                "unrestricted",
                full_subtree_anonymize(&table, &qi, k, SubtreeMode::Unrestricted).unwrap(),
            ),
            ("partition-1d", ordered_partition_anonymize(&table, &qi, k).unwrap()),
            ("subgraph", full_subgraph_anonymize(&table, &qi, k).unwrap()),
            ("mondrian", mondrian_anonymize(&table, &qi, k).unwrap()),
            ("cell-suppression", cell_suppression_anonymize(&table, &qi, k).unwrap()),
            ("cell-generalization", cell_generalization_anonymize(&table, &qi, k).unwrap()),
            ("tds", tds_anonymize(&table, &qi, k).unwrap()),
            (
                "genetic",
                genetic_anonymize(
                    &table,
                    &qi,
                    k,
                    &GeneticConfig { generations: 8, ..GeneticConfig::default() },
                )
                .unwrap(),
            ),
        ];
        for (name, release) in checks {
            assert!(release.is_k_anonymous(k), "{name} on {} rows, k={k}", table.num_rows());
            assert_eq!(
                release.view.num_rows() as u64 + release.suppressed,
                table.num_rows() as u64,
                "{name} must account for every source row"
            );
            let m = release.metrics(k);
            assert!(m.precision >= -1e-9 && m.precision <= 1.0 + 1e-9, "{name} Prec {}", m.precision);
            assert!(m.loss >= -1e-9 && m.loss <= 1.0 + 1e-9, "{name} LM {}", m.loss);
            // Discernibility is bounded below by the k-anonymous ideal
            // (all classes exactly k) and above by a single class.
            let n = table.num_rows() as u128;
            assert!(m.discernibility <= n * n);
        }
    }
}

#[test]
fn full_domain_release_consistent_with_incognito_verdicts() {
    for (table, qi, k) in workloads() {
        let complete = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        // Reported generalizations build k-anonymous releases; the bottom
        // node (if absent from the result) builds a violating one.
        for g in complete.generalizations().iter().take(6) {
            let rel = full_domain_release(&table, &qi, &g.levels, None).unwrap();
            assert!(rel.is_k_anonymous(k));
        }
        let bottom = vec![0u8; qi.len()];
        let bottom_rel = full_domain_release(&table, &qi, &bottom, None).unwrap();
        assert_eq!(bottom_rel.is_k_anonymous(k), complete.contains(&bottom));
    }
}

#[test]
fn flexible_models_never_lose_to_best_full_domain_on_discernibility() {
    // The §5 flexibility ordering on the metric the models optimize
    // implicitly (equivalence-class structure): Mondrian and the local
    // recodings partition at least as finely as the best full-domain
    // generalization.
    for (table, qi, k) in workloads() {
        let complete = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        let best_full = complete
            .generalizations()
            .iter()
            .map(|g| {
                full_domain_release(&table, &qi, &g.levels, None)
                    .unwrap()
                    .metrics(k)
                    .discernibility
            })
            .min()
            .unwrap();
        let mondrian = mondrian_anonymize(&table, &qi, k).unwrap().metrics(k).discernibility;
        assert!(
            mondrian <= best_full,
            "mondrian {mondrian} vs full-domain {best_full} ({} rows)",
            table.num_rows()
        );
    }
}

#[test]
fn local_models_keep_non_qi_columns_intact() {
    let table = patients();
    let r = cell_generalization_anonymize(&table, &[0, 1, 2], 2).unwrap();
    for (view_row, &src_row) in r.kept_rows.iter().enumerate() {
        assert_eq!(r.view.label(view_row, 3), table.label(src_row, 3));
    }
}

#[test]
fn releases_are_deterministic() {
    let table = adults(&AdultsConfig { rows: 1_000, seed: 52 });
    let a = mondrian_anonymize(&table, &[0, 1, 3], 10).unwrap();
    let b = mondrian_anonymize(&table, &[0, 1, 3], 10).unwrap();
    assert_eq!(a.class_sizes, b.class_sizes);
    let a = cell_suppression_anonymize(&table, &[0, 1], 10).unwrap();
    let b = cell_suppression_anonymize(&table, &[0, 1], 10).unwrap();
    assert_eq!(a.class_sizes, b.class_sizes);
}
