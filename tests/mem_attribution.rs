//! Stress test for the tracking allocator's span attribution under the
//! work-stealing executor: 8 workers open nested spans and allocate;
//! every span must carry its own thread's allocation delta, no
//! allocation may be lost from the global flows, and a guard that
//! crosses threads must get *no* memory args rather than a
//! misattributed delta.
//!
//! Trace collection and the allocator's attribution switch are
//! process-global, so this file holds exactly one test function.

use incognito::exec::Executor;
use incognito::obs::trace;
use incognito::obs::Json;

const WORKERS: usize = 8;
const TASKS: usize = 64;
const LEAF_BYTES: usize = 1 << 16; // 64 KiB per leaf allocation

fn arg_int(r: &trace::TraceRecord, key: &str) -> Option<i64> {
    r.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_int())
}

#[test]
fn eight_workers_attribute_allocations_without_loss_or_crosstalk() {
    trace::clear();
    trace::set_enabled(true);
    incognito::obs::mem::set_enabled(true);

    let before = incognito::obs::mem::stats();
    let pool = Executor::new(WORKERS);
    pool.scope(|s| {
        for i in 0..TASKS {
            s.spawn(move || {
                let outer = trace::span("stress.outer").arg("task", i as u64);
                let mut keep: Vec<Vec<u8>> = Vec::new();
                {
                    let inner = trace::span("stress.inner");
                    keep.push(vec![0u8; LEAF_BYTES]);
                    inner.finish();
                }
                keep.push(vec![0u8; LEAF_BYTES]);
                std::hint::black_box(&keep);
                outer.finish();
            });
        }
    });

    // A guard opened here and closed on another thread: the delta would
    // mix two threads' counters, so it must carry no memory args.
    let crossing = trace::span("stress.cross_thread");
    std::thread::spawn(move || crossing.finish()).join().unwrap();

    let after = incognito::obs::mem::stats();
    trace::set_enabled(false);
    incognito::obs::mem::set_enabled(false);
    let records = trace::drain();
    let _ = trace::drain_counter_samples();

    // Per-span attribution: every inner span saw at least its own leaf
    // allocation; every outer span additionally covers the nested one.
    let inners: Vec<_> = records.iter().filter(|r| r.name == "stress.inner").collect();
    let outers: Vec<_> = records.iter().filter(|r| r.name == "stress.outer").collect();
    assert_eq!(inners.len(), TASKS);
    assert_eq!(outers.len(), TASKS);
    for r in &inners {
        let bytes = arg_int(r, "alloc_bytes").expect("inner span has alloc_bytes");
        assert!(bytes >= LEAF_BYTES as i64, "inner delta {bytes} < leaf size");
        assert!(arg_int(r, "allocs").expect("inner span has allocs") >= 1);
    }
    let mut attributed: i64 = 0;
    for r in &outers {
        let bytes = arg_int(r, "alloc_bytes").expect("outer span has alloc_bytes");
        assert!(bytes >= 2 * LEAF_BYTES as i64, "outer delta {bytes} misses nested alloc");
        attributed += bytes;
    }

    // No lost allocations: the spans' thread-local deltas are bounded by
    // the global flow delta, and the workload floor is visible in both.
    let global_delta = after.allocated_bytes.saturating_sub(before.allocated_bytes) as i64;
    assert!(global_delta >= (TASKS * 2 * LEAF_BYTES) as i64, "global flow lost allocations");
    assert!(
        attributed <= global_delta,
        "spans attribute {attributed} bytes but the process only allocated {global_delta}"
    );

    // Every span above closed on the thread that opened it — that is
    // what earned it memory args. How many distinct threads the tasks
    // landed on is the scheduler's business (the caller drains jobs
    // too, and on a single-core box it can drain all of them), so the
    // spread is not asserted — the attribution rules above hold at any
    // spread, and the cross-thread guard below covers the other side.

    // No cross-thread misattribution: the guard that crossed threads
    // recorded, but without memory args.
    let crossing = records
        .iter()
        .find(|r| r.name == "stress.cross_thread")
        .expect("crossing span recorded");
    assert!(
        !crossing.args.iter().any(|(k, _)| k == "alloc_bytes" || k == "allocs"),
        "cross-thread drop must not claim a delta: {:?}",
        crossing.args
    );

    // The executor attributed per-worker flows too.
    let exec_tasks: Vec<_> = records.iter().filter(|r| r.name == "exec.task").collect();
    assert!(!exec_tasks.is_empty(), "executor wraps jobs in exec.task spans");
    for r in exec_tasks {
        if let Some((_, v)) = r.args.iter().find(|(k, _)| k == "worker") {
            assert!(!matches!(v, Json::Null));
        }
    }
}
