//! The SQL-path implementation (star schema + relational engine, the way
//! the paper actually ran Incognito) must agree with the native columnar
//! engine on realistic data, not just the running example.

use incognito::algo::{incognito as run_incognito, Config};
use incognito::data::{adults, AdultsConfig};
use incognito::hierarchy::LevelNo;
use incognito::star::incognito_sql;

#[test]
fn sql_and_native_agree_on_synthetic_adults() {
    let table = adults(&AdultsConfig { rows: 3_000, seed: 77 });
    for (qi, k) in [
        (vec![0usize, 1], 5u64),
        (vec![1, 2, 3], 10),
        (vec![0, 3, 4], 25),
    ] {
        let sql = incognito_sql(&table, &qi, &Config::new(k)).unwrap();
        let native = run_incognito(&table, &qi, &Config::new(k)).unwrap();
        let native_levels: Vec<Vec<LevelNo>> =
            native.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(sql.generalizations, native_levels, "qi={qi:?} k={k}");
        assert_eq!(sql.nodes_checked, native.stats().nodes_checked(), "qi={qi:?} k={k}");
        assert_eq!(sql.nodes_marked, native.stats().nodes_marked(), "qi={qi:?} k={k}");
    }
}

#[test]
fn sql_path_with_suppression_agrees() {
    let table = adults(&AdultsConfig { rows: 2_000, seed: 78 });
    let qi = [0usize, 1];
    let cfg = Config::new(20).with_suppression(50);
    let sql = incognito_sql(&table, &qi, &cfg).unwrap();
    let native = run_incognito(&table, &qi, &cfg).unwrap();
    let native_levels: Vec<Vec<LevelNo>> =
        native.generalizations().iter().map(|g| g.levels.clone()).collect();
    assert_eq!(sql.generalizations, native_levels);
}
