//! Frequency sets as SQL over the star schema: `SELECT COUNT(*) … GROUP
//! BY` for the base computation (§1.1's definition), and `SUM(count) …
//! GROUP BY` through a dimension table for the Rollup Property (§3).

use incognito_hierarchy::LevelNo;
use incognito_rel::{Aggregate, Relation, Value};

use crate::schema::{col_name, StarSchema};
use crate::StarError;

/// `SELECT <level columns>, COUNT(*) AS count FROM fact JOIN dims … GROUP
/// BY <level columns>` — the paper's frequency-set query. `parts` is the
/// generalization node: `(attribute, level)` pairs, attribute-sorted.
pub fn frequency_set_sql(
    star: &StarSchema,
    parts: &[(usize, LevelNo)],
) -> Result<Relation, StarError> {
    let _tspan = incognito_obs::trace::span("sql.scan")
        .arg("rows", star.fact().len() as u64);
    // Start from the fact columns we need (level-0 names).
    let base_cols: Vec<(String, String)> = parts
        .iter()
        .map(|&(a, _)| (col_name(a, 0), col_name(a, 0)))
        .collect();
    let proj: Vec<(&str, &str)> =
        base_cols.iter().map(|(s, d)| (s.as_str(), d.as_str())).collect();
    let mut rel = star.fact().project(&proj)?;

    // Join each attribute needing generalization with its dimension and
    // carry the level column along.
    for &(a, l) in parts {
        if l == 0 {
            continue;
        }
        let dim = star.dim(a).expect("attribute is in the star schema");
        let key0 = col_name(a, 0);
        let keyl = col_name(a, l);
        let dim_proj = dim.project(&[(&key0, &key0), (&keyl, &keyl)])?;
        let prefix = format!("d{a}_");
        rel = rel.join(&dim_proj, &[(&key0, &key0)], &prefix)?;
        // Normalize: drop the ground column, keep the level column under
        // its plain name.
        let mut keep: Vec<(String, String)> = Vec::new();
        for name in rel.names() {
            if name == &key0 || name == &format!("{prefix}{key0}") {
                continue;
            }
            if name == &format!("{prefix}{keyl}") {
                keep.push((name.clone(), keyl.clone()));
            } else {
                keep.push((name.clone(), name.clone()));
            }
        }
        let keep_refs: Vec<(&str, &str)> =
            keep.iter().map(|(s, d)| (s.as_str(), d.as_str())).collect();
        rel = rel.project(&keep_refs)?;
    }

    let group_cols: Vec<String> = parts.iter().map(|&(a, l)| col_name(a, l)).collect();
    let group_refs: Vec<&str> = group_cols.iter().map(String::as_str).collect();
    Ok(rel.group_by(&group_refs, &[Aggregate::count("count")])?)
}

/// The Rollup Property as SQL: produce the frequency set at `to` from one
/// at `from` by joining with each changed attribute's (distinct) level map
/// and summing counts — "joining F1 with the Zipcode dimension table, and
/// issuing a SUM(count) query" in the paper's words.
pub fn rollup_sql(
    star: &StarSchema,
    freq: &Relation,
    from: &[(usize, LevelNo)],
    to: &[LevelNo],
) -> Result<Relation, StarError> {
    let _tspan = incognito_obs::trace::span("sql.rollup")
        .arg("groups_in", freq.len() as u64);
    assert_eq!(from.len(), to.len());
    let mut rel = freq.clone();
    for (&(a, fl), &tl) in from.iter().zip(to) {
        if tl == fl {
            continue;
        }
        assert!(tl > fl, "rollup goes upward");
        let dim = star.dim(a).expect("attribute in star schema");
        let keyf = col_name(a, fl);
        let keyt = col_name(a, tl);
        // Level map: distinct (from-level, to-level) label pairs.
        let map = dim.project(&[(&keyf, &keyf), (&keyt, &keyt)])?.distinct();
        let prefix = format!("m{a}_");
        rel = rel.join(&map, &[(&keyf, &keyf)], &prefix)?;
        let mut keep: Vec<(String, String)> = Vec::new();
        for name in rel.names() {
            if name == &keyf || name == &format!("{prefix}{keyf}") {
                continue;
            }
            if name == &format!("{prefix}{keyt}") {
                keep.push((name.clone(), keyt.clone()));
            } else {
                keep.push((name.clone(), name.clone()));
            }
        }
        let keep_refs: Vec<(&str, &str)> =
            keep.iter().map(|(s, d)| (s.as_str(), d.as_str())).collect();
        rel = rel.project(&keep_refs)?;
    }
    let group_cols: Vec<String> = from
        .iter()
        .zip(to)
        .map(|(&(a, _), &tl)| col_name(a, tl))
        .collect();
    let group_refs: Vec<&str> = group_cols.iter().map(String::as_str).collect();
    Ok(rel.group_by(&group_refs, &[Aggregate::sum("count", "count")])?)
}

/// The k-anonymity predicate over a frequency relation, with the §2.1
/// suppression allowance (`max_suppress` tuples in groups below k may be
/// dropped).
pub fn is_k_anonymous_sql(freq: &Relation, k: u64, max_suppress: u64) -> Result<bool, StarError> {
    let idx = freq.column_index("count")?;
    let mut below = 0u64;
    for row in 0..freq.len() {
        if let Value::Int(c) = freq.column_at(idx).value(row) {
            let c = c.max(0) as u64;
            if c < k {
                below += c;
            }
        }
    }
    Ok(below <= max_suppress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::patients;
    use incognito_table::GroupSpec;

    fn star() -> (incognito_table::Table, StarSchema) {
        let t = patients();
        let s = StarSchema::build(&t, &[0, 1, 2]).unwrap();
        (t, s)
    }

    /// Render a native frequency set and a SQL frequency relation in a
    /// comparable, sorted label form.
    fn native_rows(t: &incognito_table::Table, parts: &[(usize, u8)]) -> Vec<(Vec<String>, u64)> {
        let f = t.frequency_set(&GroupSpec::new(parts.to_vec()).unwrap()).unwrap();
        f.to_labeled_rows(t.schema())
    }

    fn sql_rows(rel: &Relation, parts: &[(usize, u8)]) -> Vec<(Vec<String>, u64)> {
        let mut out = Vec::new();
        for row in 0..rel.len() {
            let labels: Vec<String> = parts
                .iter()
                .map(|&(a, l)| rel.value(row, &col_name(a, l)).unwrap().to_string())
                .collect();
            let count = match rel.value(row, "count").unwrap() {
                Value::Int(c) => c as u64,
                Value::Text(_) => unreachable!(),
            };
            out.push((labels, count));
        }
        out.sort();
        out
    }

    #[test]
    fn sql_frequency_sets_match_native_engine() {
        let (t, star) = star();
        for parts in [
            vec![(1usize, 0u8), (2, 0)],
            vec![(1, 1), (2, 0)],
            vec![(0, 0), (1, 1), (2, 2)],
            vec![(2, 1)],
        ] {
            let sql = frequency_set_sql(&star, &parts).unwrap();
            assert_eq!(sql_rows(&sql, &parts), native_rows(&t, &parts), "{parts:?}");
        }
    }

    #[test]
    fn sql_rollup_matches_direct_sql() {
        let (_t, star) = star();
        let ground = frequency_set_sql(&star, &[(1, 0), (2, 0)]).unwrap();
        let rolled = rollup_sql(&star, &ground, &[(1, 0), (2, 0)], &[1, 1]).unwrap();
        let direct = frequency_set_sql(&star, &[(1, 1), (2, 1)]).unwrap();
        assert_eq!(
            sql_rows(&rolled, &[(1, 1), (2, 1)]),
            sql_rows(&direct, &[(1, 1), (2, 1)])
        );
    }

    #[test]
    fn k_anonymity_predicate_over_relations() {
        let (_t, star) = star();
        // §1.1: not 2-anonymous w.r.t. ⟨Sex, Zipcode⟩, but ⟨S1, Z0⟩ passes.
        let f = frequency_set_sql(&star, &[(1, 0), (2, 0)]).unwrap();
        assert!(!is_k_anonymous_sql(&f, 2, 0).unwrap());
        assert!(is_k_anonymous_sql(&f, 2, 2).unwrap()); // 2 outliers allowed
        let g = frequency_set_sql(&star, &[(1, 1), (2, 0)]).unwrap();
        assert!(is_k_anonymous_sql(&g, 2, 0).unwrap());
    }
}
