//! The paper's actual implementation strategy, reproduced end to end: a
//! relational **star schema** (Figure 4) over the microdata, frequency
//! sets as `SELECT COUNT(*) … GROUP BY` queries, rollups as `SUM(count)`
//! queries through dimension tables, candidate graphs as Nodes/Edges
//! relations (Figure 6), and candidate generation as the two SQL
//! statements printed in §3.1.2 — all running on the
//! [`incognito_rel`](incognito_rel) mini relational engine.
//!
//! The native columnar path in `incognito-core` is the fast
//! implementation; this crate exists because the paper's contribution was
//! expressed *relationally*, and reproducing that faithfully lets the test
//! suite assert that both paths compute identical result sets
//! ([`incognito_sql`] vs `incognito_core::incognito`), while the benches
//! quantify the overhead a generic relational substrate adds (the moral
//! equivalent of the paper's DB2 round trips).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod freq;
mod incognito_sql;
mod schema;

pub use incognito_sql::{incognito_sql, SqlSearchOutcome};
pub use schema::StarSchema;

/// Errors from the SQL-path implementation.
#[derive(Debug)]
pub enum StarError {
    /// Relational engine failure (malformed query — a bug, surfaced).
    Rel(incognito_rel::RelError),
    /// Table-layer failure.
    Table(incognito_table::TableError),
    /// Invalid workload (empty QI, bad k, ...).
    Algo(incognito_core::AlgoError),
}

impl std::fmt::Display for StarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StarError::Rel(e) => write!(f, "relational engine: {e}"),
            StarError::Table(e) => write!(f, "table: {e}"),
            StarError::Algo(e) => write!(f, "workload: {e}"),
        }
    }
}

impl std::error::Error for StarError {}

impl From<incognito_rel::RelError> for StarError {
    fn from(e: incognito_rel::RelError) -> Self {
        StarError::Rel(e)
    }
}

impl From<incognito_table::TableError> for StarError {
    fn from(e: incognito_table::TableError) -> Self {
        StarError::Table(e)
    }
}

impl From<incognito_core::AlgoError> for StarError {
    fn from(e: incognito_core::AlgoError) -> Self {
        StarError::Algo(e)
    }
}
