//! Basic Incognito executed entirely through the relational engine — the
//! control flow of Figure 8 in Rust (as the paper's was in Java), with
//! every data operation a query over the star schema and the Figure 6
//! candidate relations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use incognito_core::{AlgoError, Config};
use incognito_hierarchy::LevelNo;
use incognito_rel::Relation;
use incognito_table::fxhash::FxHashMap;
use incognito_table::Table;

use crate::candidate::{edge_generation, id_of, initial_relations, join_phase, parts_of, prune_phase};
use crate::freq::{frequency_set_sql, is_k_anonymous_sql, rollup_sql};
use crate::schema::StarSchema;
use crate::StarError;

/// Result of the SQL-path search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlSearchOutcome {
    /// The quasi-identifier, sorted ascending.
    pub qi: Vec<usize>,
    /// All k-anonymous full-domain generalizations (levels aligned with
    /// `qi`), sorted lexicographically.
    pub generalizations: Vec<Vec<LevelNo>>,
    /// Nodes whose k-anonymity was decided by running a query.
    pub nodes_checked: usize,
    /// Nodes decided by the generalization property.
    pub nodes_marked: usize,
    /// Frequency-set queries answered by `SUM(count)` rollups.
    pub rollup_queries: usize,
    /// Frequency-set queries answered by scanning the fact relation.
    pub scan_queries: usize,
}

/// Run Basic Incognito over the star schema. Produces exactly the same
/// generalization set as `incognito_core::incognito` (asserted by the test
/// suite), while exercising the paper's relational formulation.
pub fn incognito_sql(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<SqlSearchOutcome, StarError> {
    // Workload validation mirroring the native engine.
    if qi.is_empty() {
        return Err(StarError::Algo(AlgoError::EmptyQuasiIdentifier));
    }
    if cfg.k == 0 {
        return Err(StarError::Algo(AlgoError::InvalidK(0)));
    }
    let mut sorted = qi.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(StarError::Algo(AlgoError::DuplicateQiAttribute(w[0])));
        }
    }
    if let Some(&bad) = sorted.iter().find(|&&a| a >= table.schema().arity()) {
        return Err(StarError::Table(incognito_table::TableError::AttributeOutOfRange {
            index: bad,
            arity: table.schema().arity(),
        }));
    }

    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", "sql")
        .arg("k", cfg.k)
        .arg("qi_arity", sorted.len() as u64);
    let star = StarSchema::build(table, &sorted)?;
    let heights: Vec<(usize, LevelNo)> = sorted
        .iter()
        .map(|&a| (a, star.height(a).expect("attr in star")))
        .collect();
    let n = sorted.len();

    let (mut nodes, mut edges) = initial_relations(&heights)?;
    let mut outcome = SqlSearchOutcome {
        qi: sorted.clone(),
        generalizations: Vec::new(),
        nodes_checked: 0,
        nodes_marked: 0,
        rollup_queries: 0,
        scan_queries: 0,
    };

    for i in 1..=n {
        let mut iter_span = incognito_obs::trace::span("sql.iteration")
            .arg("arity", i as u64)
            .arg("candidates", nodes.len() as u64)
            .arg("edges", edges.len() as u64);
        let num = nodes.len();
        // Adjacency over dense IDs (initial_relations and prune_phase both
        // assign IDs 0..num in row order).
        let mut out_adj: Vec<Vec<usize>> = vec![Vec::new(); num];
        let mut in_adj: Vec<Vec<usize>> = vec![Vec::new(); num];
        for row in 0..edges.len() {
            let s = match edges.value(row, "start")? {
                incognito_rel::Value::Int(v) => v as usize,
                incognito_rel::Value::Text(_) => unreachable!("edge ids are Int"),
            };
            let e = match edges.value(row, "end")? {
                incognito_rel::Value::Int(v) => v as usize,
                incognito_rel::Value::Text(_) => unreachable!("edge ids are Int"),
            };
            out_adj[s].push(e);
            in_adj[e].push(s);
        }
        let parts: Vec<Vec<(usize, LevelNo)>> =
            (0..num).map(|row| parts_of(&nodes, row, i)).collect();
        let height =
            |row: usize| -> u32 { parts[row].iter().map(|&(_, l)| l as u32).sum() };

        let mut alive = vec![true; num];
        let mut marked = vec![false; num];
        let mut processed = vec![false; num];
        // Cached frequency relations for rollup (freed with the iteration).
        let mut cache: FxHashMap<usize, Relation> = FxHashMap::default();

        let mut queue: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
        for (row, preds) in in_adj.iter().enumerate() {
            if preds.is_empty() {
                queue.push(Reverse((height(row), row)));
            }
        }
        while let Some(Reverse((_h, node))) = queue.pop() {
            if processed[node] || marked[node] {
                continue;
            }
            processed[node] = true;

            let mut check_span = incognito_obs::trace::span("sql.check");
            let freq = match in_adj[node].iter().find(|&&p| cache.contains_key(&p)) {
                Some(&p) => {
                    outcome.rollup_queries += 1;
                    check_span.set_arg("via", "rollup");
                    let target: Vec<LevelNo> = parts[node].iter().map(|&(_, l)| l).collect();
                    rollup_sql(&star, &cache[&p], &parts[p], &target)?
                }
                None => {
                    outcome.scan_queries += 1;
                    check_span.set_arg("via", "scan");
                    frequency_set_sql(&star, &parts[node])?
                }
            };
            outcome.nodes_checked += 1;
            let anonymous = is_k_anonymous_sql(&freq, cfg.k, cfg.max_suppress)?;
            check_span.set_arg("anonymous", anonymous);

            if anonymous {
                // Generalization property: mark transitively.
                let mut stack = out_adj[node].clone();
                while let Some(y) = stack.pop() {
                    if marked[y] {
                        continue;
                    }
                    marked[y] = true;
                    if !processed[y] {
                        outcome.nodes_marked += 1;
                    }
                    stack.extend_from_slice(&out_adj[y]);
                }
            } else {
                alive[node] = false;
                for &g in &out_adj[node] {
                    if !processed[g] && !marked[g] {
                        queue.push(Reverse((height(g), g)));
                    }
                }
                cache.insert(node, freq);
            }
        }

        iter_span.set_arg("survivors", alive.iter().filter(|&&a| a).count() as u64);
        if i == n {
            for (row, &a) in alive.iter().enumerate() {
                if a {
                    outcome
                        .generalizations
                        .push(parts[row].iter().map(|&(_, l)| l).collect());
                }
            }
            outcome.generalizations.sort();
        } else {
            // Sᵢ = alive rows; regenerate with the SQL statements.
            let survivors = nodes.filter(|r, row| {
                let id = id_of(r, row) as usize;
                alive[id]
            });
            let cand = join_phase(&survivors, i)?;
            let pruned = prune_phase(&cand, &survivors, i)?;
            edges = edge_generation(&pruned, &edges)?;
            nodes = pruned;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_core::incognito;
    use incognito_data::patients;

    #[test]
    fn sql_path_matches_native_on_patients() {
        let t = patients();
        for k in [1u64, 2, 3, 6] {
            let cfg = Config::new(k);
            let sql = incognito_sql(&t, &[0, 1, 2], &cfg).unwrap();
            let native = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            let native_levels: Vec<Vec<LevelNo>> =
                native.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(sql.generalizations, native_levels, "k={k}");
            assert_eq!(
                sql.nodes_checked,
                native.stats().nodes_checked(),
                "same nodes checked at k={k}"
            );
            assert_eq!(sql.nodes_marked, native.stats().nodes_marked());
        }
    }

    #[test]
    fn sql_path_with_suppression() {
        let t = patients();
        let cfg = Config::new(2).with_suppression(2);
        let sql = incognito_sql(&t, &[1, 2], &cfg).unwrap();
        let native = incognito(&t, &[1, 2], &cfg).unwrap();
        let native_levels: Vec<Vec<LevelNo>> =
            native.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(sql.generalizations, native_levels);
    }

    #[test]
    fn sql_path_validates_workload() {
        let t = patients();
        assert!(matches!(
            incognito_sql(&t, &[], &Config::new(2)),
            Err(StarError::Algo(AlgoError::EmptyQuasiIdentifier))
        ));
        assert!(matches!(
            incognito_sql(&t, &[0, 0], &Config::new(2)),
            Err(StarError::Algo(AlgoError::DuplicateQiAttribute(0)))
        ));
        assert!(matches!(
            incognito_sql(&t, &[0], &Config::new(0)),
            Err(StarError::Algo(AlgoError::InvalidK(0)))
        ));
        assert!(matches!(
            incognito_sql(&t, &[99], &Config::new(2)),
            Err(StarError::Table(_))
        ));
    }

    #[test]
    fn rollups_dominate_scans() {
        // The SQL path inherits the paper's efficiency structure: only
        // roots scan the fact table.
        let t = patients();
        let sql = incognito_sql(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert!(sql.rollup_queries > 0);
        assert!(sql.scan_queries < sql.nodes_checked);
    }
}
