use incognito_hierarchy::LevelNo;
use incognito_rel::{ColumnData, Relation};
use incognito_table::Table;

use crate::StarError;

/// The Figure 4 star schema: a fact relation holding the microdata's
/// quasi-identifier columns at ground level, plus one dimension relation
/// per attribute materializing its value generalization function at every
/// level.
///
/// Column naming: the fact relation's column for attribute `a` is
/// `a__0` (its ground labels); attribute `a`'s dimension relation has
/// columns `a__0, a__1, …, a__h` — one row per ground value, giving that
/// value's label at each level. Joining fact with a dimension on `a__0`
/// and projecting `a__l` is exactly the paper's "join T with the dimension
/// table of A and project A_l".
pub struct StarSchema {
    /// Quasi-identifier attribute indices (sorted), in fact-column order.
    qi: Vec<usize>,
    fact: Relation,
    /// One dimension per QI attribute, aligned with `qi`.
    dims: Vec<Relation>,
    /// Hierarchy heights, aligned with `qi`.
    heights: Vec<LevelNo>,
}

impl StarSchema {
    /// Materialize the star schema for `table` restricted to `qi`.
    pub fn build(table: &Table, qi: &[usize]) -> Result<StarSchema, StarError> {
        let mut sorted = qi.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let schema = table.schema();

        // Fact relation: ground labels of each QI column.
        let mut fact_cols: Vec<(String, ColumnData)> = Vec::new();
        for &a in &sorted {
            let h = schema.hierarchy(a);
            let labels: Vec<String> = table
                .column(a)
                .iter()
                .map(|&v| h.label(0, v).to_string())
                .collect();
            fact_cols.push((col_name(a, 0), ColumnData::Text(labels)));
        }
        let fact = relation_from_owned(fact_cols)?;

        // Dimension relations: one row per ground value, a column per level.
        let mut dims = Vec::with_capacity(sorted.len());
        let mut heights = Vec::with_capacity(sorted.len());
        for &a in &sorted {
            let h = schema.hierarchy(a);
            let mut cols: Vec<(String, ColumnData)> = Vec::new();
            for l in 0..=h.height() {
                let labels: Vec<String> = (0..h.ground_size() as u32)
                    .map(|g| h.label(l, h.generalize(g, l)).to_string())
                    .collect();
                cols.push((col_name(a, l), ColumnData::Text(labels)));
            }
            dims.push(relation_from_owned(cols)?);
            heights.push(h.height());
        }
        Ok(StarSchema { qi: sorted, fact, dims, heights })
    }

    /// The (sorted) quasi-identifier.
    pub fn qi(&self) -> &[usize] {
        &self.qi
    }

    /// The fact relation.
    pub fn fact(&self) -> &Relation {
        &self.fact
    }

    /// The dimension relation of attribute `attr` (a QI member).
    pub fn dim(&self, attr: usize) -> Option<&Relation> {
        self.qi.iter().position(|&a| a == attr).map(|p| &self.dims[p])
    }

    /// Hierarchy height of `attr`.
    pub fn height(&self, attr: usize) -> Option<LevelNo> {
        self.qi.iter().position(|&a| a == attr).map(|p| self.heights[p])
    }
}

///`attr__level` — the star schema's column naming convention.
pub(crate) fn col_name(attr: usize, level: LevelNo) -> String {
    format!("a{attr}__{level}")
}

pub(crate) fn relation_from_owned(
    cols: Vec<(String, ColumnData)>,
) -> Result<Relation, StarError> {
    let refs: Vec<(&str, ColumnData)> = cols
        .into_iter()
        .map(|(n, c)| (Box::leak(n.into_boxed_str()) as &str, c))
        .collect();
    Ok(Relation::new(refs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::patients;
    use incognito_rel::Value;

    #[test]
    fn star_schema_matches_figure4() {
        let t = patients();
        let star = StarSchema::build(&t, &[0, 1, 2]).unwrap();
        assert_eq!(star.qi(), &[0, 1, 2]);
        assert_eq!(star.fact().len(), 6);
        assert_eq!(star.fact().names().len(), 3);
        // Zipcode dimension: 4 ground values × 3 levels.
        let zd = star.dim(2).unwrap();
        assert_eq!(zd.len(), 4);
        assert_eq!(zd.names(), [col_name(2, 0), col_name(2, 1), col_name(2, 2)]);
        // 53715's row maps to 5371* then 537**.
        let row = (0..4)
            .find(|&r| zd.value(r, &col_name(2, 0)).unwrap() == Value::Text("53715".into()))
            .unwrap();
        assert_eq!(zd.value(row, &col_name(2, 1)).unwrap(), Value::Text("5371*".into()));
        assert_eq!(zd.value(row, &col_name(2, 2)).unwrap(), Value::Text("537**".into()));
        assert_eq!(star.height(2), Some(2));
        assert_eq!(star.height(1), Some(1));
        assert_eq!(star.dim(3), None); // Disease not in the QI
    }
}
