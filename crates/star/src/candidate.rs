//! Candidate graphs as relations (Figure 6) and the §3.1.2 SQL statements.
//!
//! A nodes relation for iteration `i` has columns
//! `ID, dim1, index1, …, dimi, indexi, parent1, parent2` (dims are
//! attribute indices; the paper displays them as names). An edges relation
//! has `start, end`. The **join phase** is the paper's self-join over
//! `Sᵢ₋₁`; the **prune phase** removes candidates with subsets missing
//! from `Sᵢ₋₁` (done with a hash structure outside SQL, as in the paper);
//! **edge generation** is the `CandidateEdges … EXCEPT` statement,
//! expressed as three joins, a union, and a set difference.

use incognito_hierarchy::LevelNo;
use incognito_rel::{ColumnData, Relation, Value};
use incognito_table::fxhash::FxHashSet;

use crate::schema::relation_from_owned;
use crate::StarError;

/// Column name helpers for the Figure 6 layout.
fn dim_col(pos: usize) -> String {
    format!("dim{}", pos + 1)
}

fn index_col(pos: usize) -> String {
    format!("index{}", pos + 1)
}

/// Read an Int column cell as i64.
fn int_at(rel: &Relation, row: usize, col: &str) -> i64 {
    match rel.value(row, col).expect("known column") {
        Value::Int(v) => v,
        Value::Text(_) => unreachable!("column is Int by construction"),
    }
}

/// Extract node `row`'s `(attr, level)` parts from a nodes relation of
/// arity `i`.
pub fn parts_of(nodes: &Relation, row: usize, arity: usize) -> Vec<(usize, LevelNo)> {
    (0..arity)
        .map(|p| {
            (
                int_at(nodes, row, &dim_col(p)) as usize,
                int_at(nodes, row, &index_col(p)) as LevelNo,
            )
        })
        .collect()
}

/// The id of node `row`.
pub fn id_of(nodes: &Relation, row: usize) -> i64 {
    int_at(nodes, row, "ID")
}

/// Build `C₁`/`E₁` relations from the hierarchies of the sorted `qi`.
pub fn initial_relations(
    heights: &[(usize, LevelNo)],
) -> Result<(Relation, Relation), StarError> {
    let (mut ids, mut dims, mut indexes) = (Vec::new(), Vec::new(), Vec::new());
    let (mut starts, mut ends) = (Vec::new(), Vec::new());
    let mut next_id = 0i64;
    for &(attr, h) in heights {
        for l in 0..=h {
            ids.push(next_id);
            dims.push(attr as i64);
            indexes.push(l as i64);
            if l > 0 {
                starts.push(next_id - 1);
                ends.push(next_id);
            }
            next_id += 1;
        }
    }
    let nodes = relation_from_owned(vec![
        ("ID".to_string(), ColumnData::Int(ids)),
        (dim_col(0), ColumnData::Int(dims)),
        (index_col(0), ColumnData::Int(indexes)),
        ("parent1".to_string(), ColumnData::Int(vec![-1; next_id as usize])),
        ("parent2".to_string(), ColumnData::Int(vec![-1; next_id as usize])),
    ])?;
    let edges = relation_from_owned(vec![
        ("start".to_string(), ColumnData::Int(starts)),
        ("end".to_string(), ColumnData::Int(ends)),
    ])?;
    Ok((nodes, edges))
}

/// The **join phase** (§3.1.2's first SQL statement): self-join the
/// survivor relation `s_prev` (arity `i-1`) on its first `i-2` dim/index
/// pairs with `p.dim_{i-1} < q.dim_{i-1}`, producing the candidate nodes
/// of arity `i` with fresh IDs and parent references.
pub fn join_phase(s_prev: &Relation, prev_arity: usize) -> Result<Relation, StarError> {
    // Equality keys: dim1..dim_{i-2}, index1..index_{i-2}.
    let mut key_names: Vec<String> = Vec::new();
    for p in 0..prev_arity.saturating_sub(1) {
        key_names.push(dim_col(p));
        key_names.push(index_col(p));
    }
    let on: Vec<(&str, &str)> =
        key_names.iter().map(|k| (k.as_str(), k.as_str())).collect();
    let joined = s_prev.join(s_prev, &on, "q_")?;

    // WHERE p.dim_{i-1} < q.dim_{i-1}.
    let last_dim = dim_col(prev_arity - 1);
    let p_idx = joined.column_index(&last_dim)?;
    let q_idx = joined.column_index(&format!("q_{last_dim}"))?;
    let filtered = joined.filter(|r, row| {
        let p = match r.column_at(p_idx).value(row) {
            Value::Int(v) => v,
            Value::Text(_) => unreachable!(),
        };
        let q = match r.column_at(q_idx).value(row) {
            Value::Int(v) => v,
            Value::Text(_) => unreachable!(),
        };
        p < q
    });

    // SELECT p.dims…, q.dim_{i-1}, q.index_{i-1}, p.ID, q.ID with fresh IDs.
    let arity = prev_arity + 1;
    let mut cols: Vec<(String, ColumnData)> = Vec::new();
    cols.push(("ID".to_string(), ColumnData::Int((0..filtered.len() as i64).collect())));
    for p in 0..arity {
        let (src_dim, src_idx) = if p < prev_arity {
            (dim_col(p), index_col(p))
        } else {
            (format!("q_{}", dim_col(prev_arity - 1)), format!("q_{}", index_col(prev_arity - 1)))
        };
        let dim_data = filtered.column(&src_dim)?.clone();
        let idx_data = filtered.column(&src_idx)?.clone();
        cols.push((dim_col(p), dim_data));
        cols.push((index_col(p), idx_data));
    }
    cols.push(("parent1".to_string(), filtered.column("ID")?.clone()));
    cols.push(("parent2".to_string(), filtered.column("q_ID")?.clone()));
    relation_from_owned(cols)
}

/// The **prune phase**: drop candidates having any `(i-1)`-subset absent
/// from the survivor set (hash-set membership, as the paper's hash tree).
/// IDs are re-assigned densely afterwards.
pub fn prune_phase(
    candidates: &Relation,
    s_prev: &Relation,
    prev_arity: usize,
) -> Result<Relation, StarError> {
    let arity = prev_arity + 1;
    let survivors: FxHashSet<Vec<(usize, LevelNo)>> = (0..s_prev.len())
        .map(|row| parts_of(s_prev, row, prev_arity))
        .collect();
    let mut keep_rows: Vec<usize> = Vec::new();
    'rows: for row in 0..candidates.len() {
        let parts = parts_of(candidates, row, arity);
        for drop in 0..arity {
            let subset: Vec<(usize, LevelNo)> = parts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &x)| x)
                .collect();
            if !survivors.contains(&subset) {
                continue 'rows;
            }
        }
        keep_rows.push(row);
    }

    // Rebuild with dense IDs, preserving parents.
    let mut cols: Vec<(String, ColumnData)> = Vec::new();
    cols.push(("ID".to_string(), ColumnData::Int((0..keep_rows.len() as i64).collect())));
    for p in 0..arity {
        for name in [dim_col(p), index_col(p)] {
            let src = candidates.column(&name)?;
            let data: Vec<i64> = keep_rows
                .iter()
                .map(|&r| match src.value(r) {
                    Value::Int(v) => v,
                    Value::Text(_) => unreachable!(),
                })
                .collect();
            cols.push((name, ColumnData::Int(data)));
        }
    }
    for name in ["parent1", "parent2"] {
        let src = candidates.column(name)?;
        let data: Vec<i64> = keep_rows
            .iter()
            .map(|&r| match src.value(r) {
                Value::Int(v) => v,
                Value::Text(_) => unreachable!(),
            })
            .collect();
        cols.push((name.to_string(), ColumnData::Int(data)));
    }
    relation_from_owned(cols)
}

/// **Edge generation** — the paper's second SQL statement, verbatim in
/// relational algebra:
///
/// ```sql
/// WITH CandidateEdges (start, end) AS (
///   SELECT p.ID, q.ID FROM Ci p, Ci q, Ei-1 e, Ei-1 f
///   WHERE (e.start = p.parent1 ∧ e.end = q.parent1
///          ∧ f.start = p.parent2 ∧ f.end = q.parent2)
///      ∨ (e.start = p.parent1 ∧ e.end = q.parent1 ∧ p.parent2 = q.parent2)
///      ∨ (e.start = p.parent2 ∧ e.end = q.parent2 ∧ p.parent1 = q.parent1)
/// )
/// SELECT D.start, D.end FROM CandidateEdges D
/// EXCEPT
/// SELECT D1.start, D2.end FROM CandidateEdges D1, CandidateEdges D2
/// WHERE D1.end = D2.start
/// ```
pub fn edge_generation(ci: &Relation, e_prev: &Relation) -> Result<Relation, StarError> {
    let pq = |left_parent: &str, right_parent: &str| -> Result<Relation, StarError> {
        // p JOIN e ON e.start = p.<left_parent> JOIN q ON q.<right_parent> = e.end
        let pe = ci.join(e_prev, &[(left_parent, "start")], "e_")?;
        let pq = pe.join(ci, &[("e_end", right_parent)], "q_")?;
        Ok(pq)
    };

    // Disjunct 1: parent1 edges AND parent2 edges.
    let d1 = {
        let base = pq("parent1", "parent1")?;
        // JOIN f ON f.start = p.parent2 AND f.end = q.parent2.
        let with_f = base.join(e_prev, &[("parent2", "start"), ("q_parent2", "end")], "f_")?;
        with_f.project(&[("ID", "start"), ("q_ID", "end")])?
    };
    // Disjunct 2: parent1 edge, equal parent2.
    let d2 = {
        let base = pq("parent1", "parent1")?;
        let idx_p = base.column_index("parent2")?;
        let idx_q = base.column_index("q_parent2")?;
        base.filter(|r, row| r.column_at(idx_p).value(row) == r.column_at(idx_q).value(row))
            .project(&[("ID", "start"), ("q_ID", "end")])?
    };
    // Disjunct 3: parent2 edge, equal parent1.
    let d3 = {
        let base = pq("parent2", "parent2")?;
        let idx_p = base.column_index("parent1")?;
        let idx_q = base.column_index("q_parent1")?;
        base.filter(|r, row| r.column_at(idx_p).value(row) == r.column_at(idx_q).value(row))
            .project(&[("ID", "start"), ("q_ID", "end")])?
    };
    let candidate_edges = d1.union_all(&d2)?.union_all(&d3)?.distinct();

    // EXCEPT: remove two-step-implied edges.
    let implied = candidate_edges
        .join(&candidate_edges, &[("end", "start")], "j_")?
        .project(&[("start", "start"), ("j_end", "end")])?;
    Ok(candidate_edges.except(&implied)?.sorted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_lattice::{generate_next, CandidateGraph, PruneStrategy};
    use incognito_table::{Attribute, Schema};
    use std::sync::Arc;

    fn bsz_schema() -> Arc<Schema> {
        use incognito_hierarchy::builders;
        Schema::new(vec![
            Attribute::new(
                "Birthdate",
                builders::suppression("Birthdate", &["1/21/76", "2/28/76", "4/13/86"]).unwrap(),
            ),
            Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
            Attribute::new(
                "Zipcode",
                builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                    .unwrap(),
            ),
        ])
        .unwrap()
    }

    fn node_specs(nodes: &Relation, arity: usize) -> Vec<Vec<(usize, LevelNo)>> {
        let mut v: Vec<_> = (0..nodes.len()).map(|r| parts_of(nodes, r, arity)).collect();
        v.sort();
        v
    }

    type Spec = Vec<(usize, LevelNo)>;

    fn edge_pairs(nodes: &Relation, edges: &Relation, arity: usize) -> Vec<(Spec, Spec)> {
        let by_id: std::collections::HashMap<i64, Vec<(usize, LevelNo)>> = (0..nodes.len())
            .map(|r| (id_of(nodes, r), parts_of(nodes, r, arity)))
            .collect();
        let mut v: Vec<_> = (0..edges.len())
            .map(|r| {
                (
                    by_id[&int_at(edges, r, "start")].clone(),
                    by_id[&int_at(edges, r, "end")].clone(),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// The SQL candidate generation must produce exactly the same graphs as
    /// the native implementation, iteration by iteration, including the
    /// Figure 7(a) case (everything alive).
    #[test]
    fn sql_candidate_generation_matches_native() {
        let schema = bsz_schema();
        let heights: Vec<(usize, LevelNo)> =
            (0..3).map(|a| (a, schema.hierarchy(a).height())).collect();

        // Native path.
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let c2 = generate_next(&c1, &vec![true; c1.num_nodes()], PruneStrategy::HashTree);
        let c3 = generate_next(&c2, &vec![true; c2.num_nodes()], PruneStrategy::HashTree);

        // SQL path.
        let (n1, e1) = initial_relations(&heights).unwrap();
        let cand2 = join_phase(&n1, 1).unwrap();
        let n2 = prune_phase(&cand2, &n1, 1).unwrap();
        let e2 = edge_generation(&n2, &e1).unwrap();
        let cand3 = join_phase(&n2, 2).unwrap();
        let n3 = prune_phase(&cand3, &n2, 2).unwrap();
        let e3 = edge_generation(&n3, &e2).unwrap();

        // Node sets agree at every arity.
        let native2: Vec<_> = {
            let mut v: Vec<_> = c2.nodes().iter().map(|n| n.parts.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(node_specs(&n2, 2), native2);
        let native3: Vec<_> = {
            let mut v: Vec<_> = c3.nodes().iter().map(|n| n.parts.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(node_specs(&n3, 3), native3);

        // Edge sets agree (compared as spec pairs; IDs differ).
        let native_e = |g: &CandidateGraph| {
            let mut v: Vec<_> = g
                .edges()
                .iter()
                .map(|&(s, e)| (g.node(s).parts.clone(), g.node(e).parts.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(edge_pairs(&n2, &e2, 2), native_e(&c2));
        assert_eq!(edge_pairs(&n3, &e3, 3), native_e(&c3));
    }

    /// Pruning through the SQL path agrees with the native path on a
    /// partial survivor set.
    #[test]
    fn sql_prune_respects_survivors() {
        let schema = bsz_schema();
        let heights: Vec<(usize, LevelNo)> =
            (0..3).map(|a| (a, schema.hierarchy(a).height())).collect();
        let (n1, _e1) = initial_relations(&heights).unwrap();
        let cand2 = join_phase(&n1, 1).unwrap();
        let n2 = prune_phase(&cand2, &n1, 1).unwrap();

        // Kill every ⟨Sex, Zipcode⟩ candidate (dim pair (1, 2)).
        let keep = n2.filter(|r, row| {
            !(int_at(r, row, "dim1") == 1 && int_at(r, row, "dim2") == 2)
        });
        let cand3 = join_phase(&keep, 2).unwrap();
        let n3 = prune_phase(&cand3, &keep, 2).unwrap();
        assert_eq!(n3.len(), 0, "3-candidates need all 2-subsets alive");
    }
}
