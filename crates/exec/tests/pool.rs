//! Lifecycle and safety tests for the work-stealing executor: clean
//! shutdown, panic propagation out of scopes and maps, and nested-scope
//! scheduling (a task opening a fresh scope on the same pool must make
//! progress even when every worker is busy).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use incognito_exec::{shared, Executor};

#[test]
fn drop_joins_all_workers() {
    // Dropping a pool with queued-and-finished work must not hang or leak
    // threads that outlive the handle; repeat to shake out races between
    // the shutdown flag and parked workers.
    for round in 0..20 {
        let pool = Executor::new(4);
        let n = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                let n = &n;
                s.spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 32, "round {round}");
        drop(pool); // must return promptly (join), not deadlock
    }
}

#[test]
fn pool_survives_idle_periods() {
    let pool = Executor::new(3);
    for _ in 0..3 {
        let out = pool.parallel_map(&[1u64, 2, 3, 4, 5], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6, 8, 10]);
        // Let workers park between bursts; the next burst must wake them.
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn scope_propagates_task_panic_after_joining_siblings() {
    let pool = Executor::new(4);
    let siblings = Arc::new(AtomicU64::new(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..16 {
                let siblings = Arc::clone(&siblings);
                s.spawn(move || {
                    if i == 7 {
                        panic!("boom from task 7");
                    }
                    siblings.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    let payload = result.expect_err("task panic must cross the scope");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "boom from task 7");
    // The panic must not have cancelled the sibling tasks.
    assert_eq!(siblings.load(Ordering::Relaxed), 15);
}

#[test]
fn parallel_map_propagates_panic() {
    let pool = Executor::new(2);
    let items: Vec<u64> = (0..8).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_map(&items, |_, &x| {
            if x == 3 {
                panic!("map panic");
            }
            x
        })
    }));
    assert!(result.is_err());
}

#[test]
fn scope_closure_panic_still_joins_spawned_tasks() {
    let pool = Executor::new(4);
    let ran = Arc::new(AtomicU64::new(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for _ in 0..8 {
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("scope closure panics after spawning");
        });
    }));
    assert!(result.is_err());
    // scope() must have joined the tasks before re-raising — otherwise the
    // lifetime-erased closures would be running with a dead stack frame.
    assert_eq!(ran.load(Ordering::Relaxed), 8);
}

#[test]
fn nested_scopes_on_the_same_pool_make_progress() {
    // Every task opens an inner scope; with 2 threads total, workers must
    // help-run inner tasks while waiting, or this deadlocks.
    let pool = Executor::new(2);
    let total = AtomicU64::new(0);
    pool.scope(|outer| {
        for _ in 0..4 {
            let total = &total;
            let pool = &pool;
            outer.spawn(move || {
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(move || {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 16);
}

#[test]
fn nested_parallel_map_inside_map_task() {
    let pool = shared(4);
    let outer: Vec<u64> = (0..6).collect();
    let out = pool.parallel_map(&outer, |_, &x| {
        let inner: Vec<u64> = (0..x + 1).collect();
        pool.parallel_map(&inner, |_, &y| y).iter().sum::<u64>()
    });
    let expect: Vec<u64> = outer.iter().map(|&x| x * (x + 1) / 2).collect();
    assert_eq!(out, expect);
}

#[test]
fn concurrent_scopes_from_independent_threads() {
    let pool = shared(3);
    std::thread::scope(|s| {
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let items: Vec<u64> = (0..50).map(|i| i + t).collect();
                let out = pool.parallel_map(&items, |_, &x| x * 3);
                let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
                assert_eq!(out, expect);
            });
        }
    });
}
