//! A hand-rolled, zero-dependency, persistent work-stealing thread pool.
//!
//! The container this project builds in is offline, so rayon is not an
//! option (see KNOWN_FAILURES.md); this crate provides the small subset of
//! its surface the Incognito stack needs, on `std` alone:
//!
//! * [`Executor::scope`] — structured fork/join: spawn borrowing tasks,
//!   return once every one of them has completed (panics propagate);
//! * [`Executor::parallel_map`] — evaluate a function over a slice and
//!   collect results in input order;
//! * [`Executor::parallel_for_chunks`] — split an index range into
//!   contiguous chunks, one task per chunk.
//!
//! # Design
//!
//! An [`Executor`] built with `threads = N` owns `N - 1` persistent worker
//! threads; the thread that calls [`Executor::scope`] participates as the
//! N-th worker while it waits, so a pool never idles the caller. Each
//! worker owns a deque it pops LIFO (fresh tasks are cache-hot); idle
//! workers steal FIFO from the shared injector first and then from their
//! siblings' deques, which drains the oldest — widest — work first. With
//! `threads == 1` no workers are spawned and every spawn executes inline
//! at the call site, so a serial executor is byte-for-byte the serial
//! program (the determinism contract the regression gate relies on; see
//! DESIGN.md §8).
//!
//! Worker activity is observable: the pool emits `exec.*` counters through
//! `incognito-obs` (`exec.tasks`, `exec.inline`, `exec.steals`,
//! `exec.parks`) and every stolen-or-popped task runs inside an
//! `exec.task` trace span tagged with the worker index, so Perfetto
//! exports show which worker ran which `check` span.
//!
//! # Safety
//!
//! This is the only crate in the workspace that contains `unsafe`: one
//! lifetime-erasing transmute in [`Scope::spawn`], the same trick rayon
//! and crossbeam use for scoped tasks. Soundness rests on [`Executor::scope`]
//! not returning until every spawned task has run to completion (it waits
//! even when the closure that spawned the tasks panics), so no task can
//! outlive the `'scope` borrows it captures.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased, heap-allocated task. Tasks are `'static` from the
/// queue's point of view; [`Scope::spawn`] erases the true `'scope`
/// lifetime and [`Executor::scope`] restores the guarantee by joining.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long a parked worker sleeps before re-checking the queues. Parks
/// are also interrupted eagerly by every push, so this only bounds the
/// latency of lost-wakeup corner cases.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// How long a scope waiter with no runnable task sleeps before re-polling
/// the queues (its own notification arrives eagerly from the last task).
const HELP_TIMEOUT: Duration = Duration::from_millis(1);

static POOL_IDS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Shared state between an [`Executor`] handle and its workers.
struct Inner {
    /// Distinguishes pools so a worker of pool A pushing into pool B does
    /// not treat B's injector as its own deque.
    id: usize,
    /// Total parallelism, including the scope caller.
    threads: usize,
    /// One deque per worker thread (`threads - 1` of them).
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue for tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Count of queued-but-not-yet-claimed jobs; lets a parking worker
    /// detect a push that raced past its idle check.
    ready: AtomicUsize,
    /// Lock/condvar pair for worker parking. Pushers notify while holding
    /// the lock, so a worker holding it either sees `ready > 0` or is
    /// guaranteed to receive the notification.
    park: Mutex<()>,
    unpark: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    /// Pop the freshest job from `queues[me]` (LIFO).
    fn pop_own(&self, me: usize) -> Option<Job> {
        let job = self.queues[me].lock().unwrap().pop_back();
        if job.is_some() {
            self.ready.fetch_sub(1, Ordering::AcqRel);
        }
        job
    }

    /// Claim the oldest job from the injector or any sibling deque (FIFO).
    /// `me` is the worker to skip (`usize::MAX` for non-workers).
    fn steal(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.ready.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for (i, q) in self.queues.iter().enumerate() {
            if i == me {
                continue;
            }
            if let Some(job) = q.lock().unwrap().pop_front() {
                self.ready.fetch_sub(1, Ordering::AcqRel);
                incognito_obs::incr("exec.steals");
                return Some(job);
            }
        }
        None
    }

    /// Queue a job: onto the current thread's own deque when called from
    /// one of this pool's workers, onto the injector otherwise.
    fn push(&self, job: Job) {
        let own = WORKER.with(|w| w.get()).filter(|&(pool, _)| pool == self.id);
        match own {
            Some((_, idx)) => self.queues[idx].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.ready.fetch_add(1, Ordering::AcqRel);
        let _guard = self.park.lock().unwrap();
        self.unpark.notify_all();
    }

    /// Worker main loop: drain own deque, steal, park.
    fn worker(&self, me: usize) {
        while !self.shutdown.load(Ordering::Acquire) {
            if let Some(job) = self.pop_own(me).or_else(|| self.steal(me)) {
                run_job(job, me);
                continue;
            }
            let guard = self.park.lock().unwrap();
            if self.shutdown.load(Ordering::Acquire) || self.ready.load(Ordering::Acquire) > 0 {
                continue;
            }
            incognito_obs::incr("exec.parks");
            let _ = self.unpark.wait_timeout(guard, PARK_TIMEOUT).unwrap();
        }
    }
}

/// Execute one claimed job, wrapped in a trace span so worker activity is
/// visible in Perfetto exports (`worker` is the deque index, or the word
/// "caller" for scope participants).
///
/// With memory attribution on, the span also carries the job's
/// `alloc_bytes` delta and the `exec.alloc_bytes` counter accumulates it
/// across workers. Both read the *executing* thread's counters between
/// claim and completion, so attribution lands on whichever worker stole
/// the job — stealing moves work, never its accounting.
fn run_job(job: Job, me: usize) {
    incognito_obs::incr("exec.tasks");
    let mem_at_start = if incognito_obs::mem::enabled() {
        Some(incognito_obs::mem::thread_allocated_bytes())
    } else {
        None
    };
    let span = incognito_obs::trace::span("exec.task");
    let span = if me == usize::MAX { span.arg("worker", "caller") } else { span.arg("worker", me as u64) };
    job();
    span.finish();
    if let Some(bytes_at_start) = mem_at_start {
        let delta = incognito_obs::mem::thread_allocated_bytes().saturating_sub(bytes_at_start);
        incognito_obs::add("exec.alloc_bytes", delta);
    }
}

/// Book-keeping for one [`Executor::scope`] call: outstanding task count
/// and the first panic payload raised by any task.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) }
    }

    fn task_started(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn task_finished(&self, panic: Option<Box<dyn Any + Send + 'static>>) {
        if let Some(p) = panic {
            self.panic.lock().unwrap().get_or_insert(p);
        }
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// A fork/join scope handed to the closure of [`Executor::scope`]; spawn
/// tasks that borrow from the enclosing stack frame.
pub struct Scope<'pool, 'scope> {
    exec: &'pool Executor,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` so the borrow checker cannot shrink the
    /// lifetime the spawned closures must outlive.
    _marker: PhantomData<Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Spawn a task onto the pool. The task may borrow anything that
    /// outlives `'scope`; the enclosing [`Executor::scope`] call joins it
    /// before returning. A panicking task does not abort its siblings —
    /// the payload is re-raised from `scope` once all tasks finish.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.task_finished(result.err());
        });
        // SAFETY: the only lifetime in the boxed closure's type is
        // `'scope`; extending it to `'static` is sound because
        // `Executor::scope` does not return before `ScopeState::pending`
        // reaches zero (it waits even when the scope closure panics), so
        // the task — and every `'scope` borrow it captures — is dropped
        // while the borrowed stack frame is still alive.
        let task: Job = unsafe { std::mem::transmute(task) };
        self.exec.inner.push(task);
    }
}

/// A persistent work-stealing thread pool. See the crate docs for the
/// scheduling model; get one from [`Executor::new`] (owned) or [`shared`]
/// (process-wide, cached per thread count).
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Build a pool with `threads` total parallelism (clamped to ≥ 1):
    /// `threads - 1` worker threads plus the calling thread inside
    /// [`Executor::scope`]. `Executor::new(1)` spawns nothing and runs
    /// every task inline, exactly like serial code.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            threads,
            queues: (1..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            ready: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("incognito-exec-{me}"))
                    .spawn(move || {
                        WORKER.with(|w| w.set(Some((inner.id, me))));
                        inner.worker(me);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Executor { inner, workers }
    }

    /// Total parallelism (worker threads plus the participating caller).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Run a fork/join scope: `f` receives a [`Scope`] whose spawned tasks
    /// may borrow locals of the caller; when `scope` returns, every task
    /// has completed. The calling thread executes queued tasks while it
    /// waits. The first panic raised by any task is re-raised here after
    /// all tasks finish.
    pub fn scope<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        'pool: 'scope,
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope =
            Scope { exec: self, state: Arc::new(ScopeState::new()), _marker: PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join unconditionally — the lifetime-erasure in `spawn` is sound
        // only because this wait happens on every exit path.
        self.help_until_done(&scope.state);
        if let Some(p) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// Caller participation: claim and run queued tasks until this scope's
    /// outstanding count reaches zero.
    fn help_until_done(&self, state: &ScopeState) {
        let me = WORKER
            .with(|w| w.get())
            .filter(|&(pool, _)| pool == self.inner.id)
            .map(|(_, idx)| idx)
            .unwrap_or(usize::MAX);
        loop {
            if *state.pending.lock().unwrap() == 0 {
                return;
            }
            let job = if me == usize::MAX {
                self.inner.steal(me)
            } else {
                self.inner.pop_own(me).or_else(|| self.inner.steal(me))
            };
            match job {
                Some(job) => run_job(job, me),
                None => {
                    // Nothing runnable: our remaining tasks are executing
                    // on workers. Sleep until the last one notifies (with
                    // a timeout so a task spawned by a sibling scope on
                    // this pool cannot strand us).
                    let pending = state.pending.lock().unwrap();
                    if *pending == 0 {
                        return;
                    }
                    let _ = state.done.wait_timeout(pending, HELP_TIMEOUT).unwrap();
                }
            }
        }
    }

    /// Apply `f` to every element of `items` concurrently and collect the
    /// results in input order. `f` gets `(index, &item)`. With a serial
    /// pool or fewer than two items this is a plain inline `map`
    /// (`exec.inline` counts those short-circuits).
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads() <= 1 || items.len() <= 1 {
            incognito_obs::incr("exec.inline");
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (i, (item, slot)) in items.iter().zip(&slots).enumerate() {
                let f = &f;
                s.spawn(move || {
                    *slot.lock().unwrap() = Some(f(i, item));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("scope joined every task"))
            .collect()
    }

    /// Split `0..len` into at most `threads()` contiguous chunks of at
    /// least `min_chunk` indices, run `f` on each chunk concurrently, and
    /// collect the per-chunk results in range order.
    pub fn parallel_for_chunks<R, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let min_chunk = min_chunk.max(1);
        let chunks = len.div_ceil(min_chunk).min(self.threads()).max(1);
        let per = len / chunks;
        let extra = len % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for i in 0..chunks {
            let end = start + per + usize::from(i < extra);
            ranges.push(start..end);
            start = end;
        }
        self.parallel_map(&ranges, |_, r| f(r.clone()))
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.park.lock().unwrap();
            self.inner.unpark.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Process-wide pool cache: one persistent [`Executor`] per thread count,
/// built on first request and reused for the life of the process. This is
/// what the algorithm layer uses so that every iteration of every search
/// schedules onto the same warm workers instead of respawning threads.
pub fn shared(threads: usize) -> Arc<Executor> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Executor>>>> = OnceLock::new();
    let threads = threads.max(1);
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(
        pools.lock().unwrap().entry(threads).or_insert_with(|| Arc::new(Executor::new(threads))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_matches_serial_map() {
        let pool = Executor::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.parallel_map(&items, |i, &x| x * x + i as u64);
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * x + i as u64).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Executor::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let out = pool.parallel_map(&[1u64, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = Executor::new(3);
        let inputs: Vec<u64> = (1..=100).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in inputs.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn chunked_ranges_cover_exactly_once() {
        let pool = Executor::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let ranges = pool.parallel_for_chunks(1000, 64, |r| {
            for i in r.clone() {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
            r.len()
        });
        assert_eq!(ranges.iter().sum::<usize>(), 1000);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_len_chunks() {
        let pool = Executor::new(2);
        let out = pool.parallel_for_chunks(0, 8, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn shared_pools_are_cached_per_thread_count() {
        let a = shared(3);
        let b = shared(3);
        let c = shared(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.threads(), 2);
    }
}
