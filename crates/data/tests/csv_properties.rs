//! Property tests for CSV round-tripping: arbitrary labels (including
//! commas, quotes, and embedded whitespace) survive write → read intact.

use proptest::prelude::*;

use incognito_data::csvio::{read_csv, write_csv};
use incognito_hierarchy::builders;
use incognito_table::{Attribute, Schema, Table};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_labels(
        labels in proptest::collection::btree_set("[ -~]{1,12}", 1..12),
        rows in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        // Ground domain: printable-ASCII labels (may contain commas and
        // quotes, but not newlines — labels are cell values).
        let labels: Vec<String> = labels.into_iter().collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let schema = Schema::new(vec![
            Attribute::new("X", builders::identity("X", &refs).unwrap()),
            Attribute::new("Y", builders::identity("Y", &refs).unwrap()),
        ]).unwrap();
        let mut table = Table::empty(schema);
        for r in &rows {
            let x = &labels[*r as usize % labels.len()];
            let y = &labels[(*r as usize / 7) % labels.len()];
            table.push_row(&[x, y]).unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(table.schema().clone(), &buf[..]).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for row in 0..table.num_rows() {
            prop_assert_eq!(back.label(row, 0), table.label(row, 0));
            prop_assert_eq!(back.label(row, 1), table.label(row, 1));
        }
    }
}
