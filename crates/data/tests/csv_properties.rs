//! Property tests for CSV round-tripping: arbitrary labels (including
//! commas, quotes, and embedded whitespace) survive write → read intact.
//!
//! Cases are generated from the workspace's seeded PRNG so every run
//! checks the same set.

use std::collections::BTreeSet;

use incognito_data::csvio::{read_csv, write_csv};
use incognito_hierarchy::builders;
use incognito_obs::Rng;
use incognito_table::{Attribute, Schema, Table};

/// A random printable-ASCII label of 1–12 characters (commas and quotes
/// included — labels are cell values, so only newlines are off-limits).
fn printable_label(rng: &mut Rng) -> String {
    let len = rng.range_usize(1, 13);
    (0..len).map(|_| char::from(b' ' + rng.below(95) as u8)).collect()
}

#[test]
fn roundtrip_arbitrary_labels() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xC5F_0000 + case);
        let labels: BTreeSet<String> = {
            let target = rng.range_usize(1, 12);
            let mut set = BTreeSet::new();
            while set.len() < target {
                set.insert(printable_label(&mut rng));
            }
            set
        };
        let rows: Vec<u8> = {
            let len = rng.range_usize(0, 50);
            (0..len).map(|_| rng.below(256) as u8).collect()
        };

        let labels: Vec<String> = labels.into_iter().collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let schema = Schema::new(vec![
            Attribute::new("X", builders::identity("X", &refs).unwrap()),
            Attribute::new("Y", builders::identity("Y", &refs).unwrap()),
        ])
        .unwrap();
        let mut table = Table::empty(schema);
        for r in &rows {
            let x = &labels[*r as usize % labels.len()];
            let y = &labels[(*r as usize / 7) % labels.len()];
            table.push_row(&[x, y]).unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(table.schema().clone(), &buf[..]).unwrap();
        assert_eq!(back.num_rows(), table.num_rows(), "case {case}");
        for row in 0..table.num_rows() {
            assert_eq!(back.label(row, 0), table.label(row, 0), "case {case}");
            assert_eq!(back.label(row, 1), table.label(row, 1), "case {case}");
        }
    }
}
