//! Minimal CSV import/export for [`Table`]s: header row of attribute
//! names, RFC-4180-style quoting for fields containing commas, quotes, or
//! newlines. Enough for moving anonymized releases in and out of the
//! library without pulling a dependency.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use incognito_table::{Schema, Table, TableError};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The header did not match the schema's attribute names.
    HeaderMismatch {
        /// Expected names (schema order).
        expected: Vec<String>,
        /// Names found in the file.
        found: Vec<String>,
    },
    /// A row failed to parse or load.
    Row {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A value was rejected by the table.
    Table(TableError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::HeaderMismatch { expected, found } => {
                write!(f, "header mismatch: expected {expected:?}, found {found:?}")
            }
            CsvError::Row { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> Self {
        CsvError::Table(e)
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split one CSV record, honoring quotes. Returns an error message on
/// malformed quoting.
fn split_record(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                '"' => in_quotes = false,
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(cur);
    Ok(fields)
}

/// Write `table` as CSV (ground labels) with a header row.
pub fn write_csv<W: Write>(table: &Table, out: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(out);
    let schema = table.schema();
    let header: Vec<String> =
        schema.attributes().iter().map(|a| quote(a.name())).collect();
    writeln!(w, "{}", header.join(","))?;
    for row in 0..table.num_rows() {
        let mut line = String::new();
        for attr in 0..schema.arity() {
            if attr > 0 {
                line.push(',');
            }
            line.push_str(&quote(table.label(row, attr)));
        }
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Read a CSV written by [`write_csv`] (or hand-made with the same layout)
/// into a table over `schema`. The header must list the schema's attribute
/// names in order; every field must be present in the corresponding ground
/// domain.
pub fn read_csv<R: BufRead>(schema: Arc<Schema>, input: R) -> Result<Table, CsvError> {
    let mut lines = input.lines();
    let header_line = lines
        .next()
        .ok_or(CsvError::Row { line: 1, message: "missing header".to_string() })??;
    let found = split_record(&header_line)
        .map_err(|m| CsvError::Row { line: 1, message: m })?;
    let expected: Vec<String> =
        schema.attributes().iter().map(|a| a.name().to_string()).collect();
    if found != expected {
        return Err(CsvError::HeaderMismatch { expected, found });
    }

    let mut table = Table::empty(schema);
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields =
            split_record(&line).map_err(|m| CsvError::Row { line: lineno, message: m })?;
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        table.push_row(&refs).map_err(|e| CsvError::Row {
            line: lineno,
            message: e.to_string(),
        })?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patients;

    #[test]
    fn roundtrip_patients() {
        let t = patients();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Birthdate,Sex,Zipcode,Disease\n"));
        let back = read_csv(t.schema().clone(), &buf[..]).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            for a in 0..t.schema().arity() {
                assert_eq!(back.label(r, a), t.label(r, a));
            }
        }
    }

    #[test]
    fn quoting_roundtrip() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(
            split_record("\"a,b\",c,\"say \"\"hi\"\"\"").unwrap(),
            vec!["a,b", "c", "say \"hi\""]
        );
        assert!(split_record("\"oops").is_err());
    }

    #[test]
    fn header_mismatch_detected() {
        let t = patients();
        let bad = b"Nope,Sex,Zipcode,Disease\n".to_vec();
        assert!(matches!(
            read_csv(t.schema().clone(), &bad[..]),
            Err(CsvError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn unknown_value_reports_line() {
        let t = patients();
        let bad = b"Birthdate,Sex,Zipcode,Disease\n1/21/76,Male,99999,Flu\n".to_vec();
        match read_csv(t.schema().clone(), &bad[..]) {
            Err(CsvError::Row { line: 2, .. }) => {}
            other => panic!("expected row error, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = patients();
        let csv = b"Birthdate,Sex,Zipcode,Disease\n\n1/21/76,Male,53715,Flu\n\n".to_vec();
        let back = read_csv(t.schema().clone(), &csv[..]).unwrap();
        assert_eq!(back.num_rows(), 1);
    }
}
