//! The running example of the paper: the Patients table of Figure 1 with
//! the Zipcode / Birthdate / Sex hierarchies of Figure 2, plus the voter
//! registration table used to demonstrate the joining attack.

use incognito_hierarchy::builders;
use incognito_table::{Attribute, Schema, Table};

/// The hospital Patients table of Figure 1.
///
/// Quasi-identifier: ⟨Birthdate (0), Sex (1), Zipcode (2)⟩; Disease (3) is
/// the sensitive attribute. Hierarchies follow Figure 2: Birthdate and Sex
/// suppress in one step, Zipcode rounds a digit at a time (two levels, as
/// drawn: Z0 → Z1 → Z2).
pub fn patients() -> Table {
    let schema = Schema::new(vec![
        Attribute::new(
            "Birthdate",
            builders::suppression("Birthdate", &["1/21/76", "2/28/76", "4/13/86"])
                .expect("static domain"),
        ),
        Attribute::new(
            "Sex",
            builders::suppression("Sex", &["Male", "Female"]).expect("static domain"),
        ),
        Attribute::new(
            "Zipcode",
            builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                .expect("static domain"),
        ),
        Attribute::new(
            "Disease",
            builders::identity(
                "Disease",
                &["Flu", "Hepatitis", "Brochitis", "Broken Arm", "Sprained Ankle", "Hang Nail"],
            )
            .expect("static domain"),
        ),
    ])
    .expect("static schema");
    let mut t = Table::empty(schema);
    for row in [
        ["1/21/76", "Male", "53715", "Flu"],
        ["4/13/86", "Female", "53715", "Hepatitis"],
        ["2/28/76", "Male", "53703", "Brochitis"],
        ["1/21/76", "Male", "53703", "Broken Arm"],
        ["4/13/86", "Female", "53706", "Sprained Ankle"],
        ["2/28/76", "Female", "53706", "Hang Nail"],
    ] {
        t.push_row(&row).expect("static rows");
    }
    t
}

/// The public voter registration table of Figure 1 — the external data a
/// joining attack links against. All attributes use identity hierarchies
/// (an attacker does not generalize their own data).
pub fn voter_registration() -> Table {
    let schema = Schema::new(vec![
        Attribute::new(
            "Name",
            builders::identity("Name", &["Andre", "Beth", "Carol", "Dan", "Ellen"])
                .expect("static domain"),
        ),
        Attribute::new(
            "Birthdate",
            builders::identity("Birthdate", &["1/21/76", "1/10/81", "10/1/44", "2/21/84", "4/19/72"])
                .expect("static domain"),
        ),
        Attribute::new(
            "Sex",
            builders::identity("Sex", &["Male", "Female"]).expect("static domain"),
        ),
        Attribute::new(
            "Zipcode",
            builders::identity("Zipcode", &["53715", "55410", "90210", "02174", "02237"])
                .expect("static domain"),
        ),
    ])
    .expect("static schema");
    let mut t = Table::empty(schema);
    for row in [
        ["Andre", "1/21/76", "Male", "53715"],
        ["Beth", "1/10/81", "Female", "55410"],
        ["Carol", "10/1/44", "Female", "90210"],
        ["Dan", "2/21/84", "Male", "02174"],
        ["Ellen", "4/19/72", "Female", "02237"],
    ] {
        t.push_row(&row).expect("static rows");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_table::GroupSpec;

    #[test]
    fn patients_matches_figure1() {
        let t = patients();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.schema().arity(), 4);
        assert_eq!(t.schema().hierarchy(2).height(), 2);
        // Not 2-anonymous at ground level over the QI (the motivating attack).
        let spec = GroupSpec::ground(&[0, 1, 2]).unwrap();
        assert!(!t.is_k_anonymous(&spec, 2).unwrap());
    }

    #[test]
    fn joining_attack_identifies_andre() {
        // Figure 1's attack: Andre's (Birthdate, Sex, Zipcode) is unique in
        // Patients, so the voter join re-identifies his Disease.
        let p = patients();
        let v = voter_registration();
        let mut matches = Vec::new();
        for vr in 0..v.num_rows() {
            for pr in 0..p.num_rows() {
                if v.label(vr, 1) == p.label(pr, 0) // birthdate
                    && v.label(vr, 2) == p.label(pr, 1) // sex
                    && v.label(vr, 3) == p.label(pr, 2)
                // zipcode
                {
                    matches.push((v.label(vr, 0).to_string(), p.label(pr, 3).to_string()));
                }
            }
        }
        assert_eq!(matches, vec![("Andre".to_string(), "Flu".to_string())]);
    }
}
