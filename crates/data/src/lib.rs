//! Datasets for the Incognito reproduction.
//!
//! The paper's experiments (§4.1, Figure 9) use two real databases that are
//! not redistributable here:
//!
//! * **Adults** — the UCI census extract (45,222 complete records, nine
//!   quasi-identifier attributes);
//! * **Lands End** — proprietary point-of-sale data (4,591,581 records,
//!   eight quasi-identifier attributes).
//!
//! This crate provides deterministic synthetic generators matching Figure 9
//! exactly in schema shape — attribute names, distinct-value counts, and
//! generalization-hierarchy heights — with census/retail-like skew in the
//! value distributions. The algorithmic quantities the paper measures
//! (lattice sizes, pruning behaviour, frequency-set sizes) are functions of
//! exactly those shapes, which is what makes the substitution faithful; see
//! DESIGN.md for the full argument.
//!
//! Also here: the [`patients`] running example of Figure 1 (with the
//! Figure 2 hierarchies) and simple CSV import/export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adults;
pub mod csvio;
pub mod landsend;
mod patients;
pub mod spec;

pub use adults::{adults, adults_default, AdultsConfig};
pub use landsend::{lands_end, lands_end_default, LandsEndConfig};
pub use patients::{patients, voter_registration};
