//! Synthetic **Lands End** point-of-sale dataset matching Figure 9.
//!
//! The real table (4,591,581 rows, 268 MB) is proprietary and was never
//! released; this generator reproduces its schema shape exactly:
//!
//! | # | Attribute  | Distinct | Generalizations      |
//! |---|------------|----------|----------------------|
//! | 0 | Zipcode    | 31,953   | Round each digit (5) |
//! | 1 | Order date | 320      | Taxonomy tree (3)    |
//! | 2 | Gender     | 2        | Suppression (1)      |
//! | 3 | Style      | 1,509    | Suppression (1)      |
//! | 4 | Price      | 346      | Round each digit (4) |
//! | 5 | Quantity   | 1        | Suppression (1)      |
//! | 6 | Cost       | 1,412    | Round each digit (4) |
//! | 7 | Shipment   | 2        | Suppression (1)      |
//!
//! The default row count is 500,000 so the harness runs at laptop speed;
//! pass `rows: 4_591_581` for paper scale. Zipcodes, styles, prices, and
//! costs follow heavy-tailed (Zipf-like) frequency distributions, as retail
//! sales do.

use std::sync::Arc;

use incognito_hierarchy::builders;
use incognito_obs::Rng;
use incognito_table::{Attribute, Schema, Table};

use crate::adults::Sampler;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LandsEndConfig {
    /// Number of rows to generate (paper scale: 4,591,581).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LandsEndConfig {
    fn default() -> Self {
        LandsEndConfig { rows: 500_000, seed: 0x1a4d_5e4d }
    }
}

/// The default-scale Lands End table (500,000 rows).
pub fn lands_end_default() -> Table {
    lands_end(&LandsEndConfig::default())
}

/// Generate the synthetic Lands End table.
pub fn lands_end(cfg: &LandsEndConfig) -> Table {
    let schema = lands_end_schema();
    let mut rng = Rng::seed_from_u64(cfg.seed);

    let zip = Sampler::zipf(31_953, 0.6);
    let date = Sampler::zipf(320, 0.2);
    let gender = Sampler::new(&[62.0, 38.0]);
    let style = Sampler::zipf(1_509, 0.9);
    let price = Sampler::zipf(346, 0.7);
    let cost = Sampler::zipf(1_412, 0.7);
    let shipment = Sampler::new(&[88.0, 12.0]);

    let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(cfg.rows); schema.arity()];
    for _ in 0..cfg.rows {
        cols[0].push(zip.sample(&mut rng) as u32);
        cols[1].push(date.sample(&mut rng) as u32);
        cols[2].push(gender.sample(&mut rng) as u32);
        cols[3].push(style.sample(&mut rng) as u32);
        cols[4].push(price.sample(&mut rng) as u32);
        cols[5].push(0); // Quantity has a single distinct value in Figure 9
        cols[6].push(cost.sample(&mut rng) as u32);
        cols[7].push(shipment.sample(&mut rng) as u32);
    }
    Table::from_columns(schema, cols).expect("generated ids are in range")
}

/// The Lands End schema with the Figure 9 hierarchies (no rows).
pub fn lands_end_schema() -> Arc<Schema> {
    // 31,953 distinct 5-digit zipcodes: a deterministic stride through
    // 00000..=99999 that yields exactly that many distinct codes.
    let zips: Vec<String> = (0..31_953u32).map(|i| format!("{:05}", (i * 3 + 7) % 100_000)).collect();
    let zip_refs: Vec<&str> = zips.iter().map(String::as_str).collect();

    // 320 order dates spanning 16 months × 20 days each; the taxonomy is
    // day → month → quarter → all (height 3).
    let dates: Vec<String> = (0..320u32)
        .map(|i| {
            let month = i / 20; // 0..16
            let year = 2001 + month / 12;
            let m = month % 12 + 1;
            let d = (i % 20) + 1;
            format!("{year:04}-{m:02}-{d:02}")
        })
        .collect();
    let date_refs: Vec<&str> = dates.iter().map(String::as_str).collect();
    let order_date = builders::taxonomy("Order date", date_taxonomy(&date_refs))
        .expect("static hierarchy");

    let styles: Vec<String> = (0..1_509u32).map(|i| format!("style-{i:04}")).collect();
    let style_refs: Vec<&str> = styles.iter().map(String::as_str).collect();

    // Prices and costs as 4-digit dollar amounts (rounded digit by digit);
    // the strides stay below 9990 so every label is distinct.
    let prices: Vec<String> = (0..346u32).map(|i| format!("{:04}", 10 + i * 7)).collect();
    let price_refs: Vec<&str> = prices.iter().map(String::as_str).collect();
    let costs: Vec<String> = (0..1_412u32).map(|i| format!("{:04}", 5 + i * 7)).collect();
    let cost_refs: Vec<&str> = costs.iter().map(String::as_str).collect();

    Schema::new(vec![
        Attribute::new(
            "Zipcode",
            builders::round_digits("Zipcode", &zip_refs, 5).expect("static hierarchy"),
        ),
        Attribute::new("Order date", order_date),
        Attribute::new(
            "Gender",
            builders::suppression("Gender", &["Female", "Male"]).expect("static hierarchy"),
        ),
        Attribute::new(
            "Style",
            builders::suppression("Style", &style_refs).expect("static hierarchy"),
        ),
        Attribute::new(
            "Price",
            builders::round_digits("Price", &price_refs, 4).expect("static hierarchy"),
        ),
        Attribute::new(
            "Quantity",
            builders::suppression("Quantity", &["1"]).expect("static hierarchy"),
        ),
        Attribute::new(
            "Cost",
            builders::round_digits("Cost", &cost_refs, 4).expect("static hierarchy"),
        ),
        Attribute::new(
            "Shipment",
            builders::suppression("Shipment", &["Standard", "Express"]).expect("static hierarchy"),
        ),
    ])
    .expect("static schema")
}

/// Build the day → month → quarter → * taxonomy over ISO date labels.
fn date_taxonomy(dates: &[&str]) -> builders::TaxonomyNode {
    use builders::TaxonomyNode as N;
    // Group by quarter then month, preserving input order within groups.
    let quarter_of = |d: &str| -> String {
        let month: u32 = d[5..7].parse().expect("ISO date");
        format!("{}-Q{}", &d[..4], (month - 1) / 3 + 1)
    };
    let month_of = |d: &str| -> String { d[..7].to_string() };

    type MonthGroup = (String, Vec<String>);
    let mut quarters: Vec<(String, Vec<MonthGroup>)> = Vec::new();
    for &d in dates {
        let q = quarter_of(d);
        let m = month_of(d);
        let qe = match quarters.iter_mut().find(|(name, _)| *name == q) {
            Some(e) => e,
            None => {
                quarters.push((q.clone(), Vec::new()));
                quarters.last_mut().expect("just pushed")
            }
        };
        let me = match qe.1.iter_mut().find(|(name, _)| *name == m) {
            Some(e) => e,
            None => {
                qe.1.push((m.clone(), Vec::new()));
                qe.1.last_mut().expect("just pushed")
            }
        };
        me.1.push(d.to_string());
    }
    N::node(
        "*",
        quarters
            .into_iter()
            .map(|(q, months)| {
                N::node(
                    q,
                    months
                        .into_iter()
                        .map(|(m, days)| N::node(m, days.into_iter().map(N::leaf).collect()))
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_figure9() {
        let s = lands_end_schema();
        let expect = [
            ("Zipcode", 31_953usize, 5u8),
            ("Order date", 320, 3),
            ("Gender", 2, 1),
            ("Style", 1_509, 1),
            ("Price", 346, 4),
            ("Quantity", 1, 1),
            ("Cost", 1_412, 4),
            ("Shipment", 2, 1),
        ];
        assert_eq!(s.arity(), 8);
        for (i, (name, distinct, height)) in expect.iter().enumerate() {
            let h = s.hierarchy(i);
            assert_eq!(s.attribute(i).name(), *name);
            assert_eq!(h.ground_size(), *distinct, "{name} distinct");
            assert_eq!(h.height(), *height, "{name} height");
        }
    }

    #[test]
    fn date_hierarchy_nests_correctly() {
        let s = lands_end_schema();
        let h = s.hierarchy(1);
        let d = h.ground_id("2001-01-01").unwrap();
        assert_eq!(h.label(1, h.generalize(d, 1)), "2001-01");
        assert_eq!(h.label(2, h.generalize(d, 2)), "2001-Q1");
        assert_eq!(h.label(3, h.generalize(d, 3)), "*");
        let d2 = h.ground_id("2001-04-05").unwrap();
        assert_ne!(h.generalize(d, 2), h.generalize(d2, 2));
    }

    #[test]
    fn zip_rounding_levels() {
        let s = lands_end_schema();
        let h = s.hierarchy(0);
        assert_eq!(h.level_size(5), 1);
        assert!(h.level_size(1) <= 10_000);
        let z = h.ground_id("00007").unwrap();
        assert_eq!(h.label(1, h.generalize(z, 1)), "0000*");
    }

    #[test]
    fn deterministic_and_skewed() {
        let cfg = LandsEndConfig { rows: 10_000, seed: 5 };
        let a = lands_end(&cfg);
        let b = lands_end(&cfg);
        assert_eq!(a.column(0), b.column(0));
        // Zipf skew: the most popular style should appear far more than
        // 1/1509 of the time.
        let top_style = a.column(3).iter().filter(|&&v| v == 0).count();
        assert!(top_style > 50, "got {top_style}");
        // Quantity is constant.
        assert!(a.column(5).iter().all(|&v| v == 0));
    }
}
