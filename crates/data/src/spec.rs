//! A small text format for declaring a schema's generalization hierarchies,
//! so the command-line tool can anonymize arbitrary CSV files.
//!
//! One attribute per line: `NAME: KIND [ARGS]`, where KIND is one of
//!
//! * `identity` — never generalized (sensitive attributes);
//! * `suppression` — one step to `*`;
//! * `round N` — fixed-width codes, generalize N trailing characters one at
//!   a time (zipcodes);
//! * `ranges W1,W2,... [suppress]` — integer attribute bucketed into nested
//!   ranges of the given widths, optionally topped with `*`;
//! * `taxonomy` — followed by an indented tree block (two spaces per
//!   level), leaves at uniform depth:
//!
//! ```text
//! WorkClass: taxonomy
//!   employed
//!     private
//!     gov
//!   not-employed
//!     unemployed
//!     retired
//! ```
//!
//! Blank lines and `#` comments are ignored. Ground domains for
//! `identity`/`suppression`/`round`/`ranges` are inferred from the data by
//! [`load_csv_with_spec`].

use std::collections::BTreeSet;
use std::io::BufRead;
use std::sync::Arc;

use incognito_hierarchy::builders::{self, TaxonomyNode};
use incognito_table::{Attribute, Schema, Table};

use crate::csvio::CsvError;

/// How one attribute generalizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrSpec {
    /// Height-0 hierarchy.
    Identity,
    /// Ground → `*`.
    Suppression,
    /// Round `n` trailing characters, one per level.
    Round(usize),
    /// Nested integer ranges with the given widths; `suppress` adds a top
    /// `*` level.
    Ranges {
        /// Nested bucket widths (each a multiple of the previous).
        widths: Vec<i64>,
        /// Whether to append a final `*` level.
        suppress: bool,
    },
    /// Explicit taxonomy tree (fixed ground domain).
    Taxonomy(TaxonomyNode),
}

/// A parsed schema spec: attribute names with their generalization kinds,
/// in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaSpec {
    /// `(attribute name, spec)` pairs.
    pub attributes: Vec<(String, AttrSpec)>,
}

/// Errors from spec parsing.
#[derive(Debug)]
pub enum SpecError {
    /// Malformed line with its 1-based number.
    Parse {
        /// Line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Building a hierarchy from the spec failed.
    Hierarchy(incognito_hierarchy::HierarchyError),
    /// CSV loading failed.
    Csv(CsvError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::Hierarchy(e) => write!(f, "hierarchy: {e}"),
            SpecError::Csv(e) => write!(f, "csv: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<incognito_hierarchy::HierarchyError> for SpecError {
    fn from(e: incognito_hierarchy::HierarchyError) -> Self {
        SpecError::Hierarchy(e)
    }
}

impl From<CsvError> for SpecError {
    fn from(e: CsvError) -> Self {
        SpecError::Csv(e)
    }
}

impl SchemaSpec {
    /// Parse the text format described in the module docs.
    pub fn parse(text: &str) -> Result<SchemaSpec, SpecError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .collect();
        let mut attributes = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            let (lineno, line) = lines[i];
            if line.starts_with(' ') {
                return Err(SpecError::Parse {
                    line: lineno,
                    message: "unexpected indentation outside a taxonomy block".into(),
                });
            }
            let (name, rest) = line.split_once(':').ok_or(SpecError::Parse {
                line: lineno,
                message: "expected `NAME: KIND [ARGS]`".into(),
            })?;
            let name = name.trim().to_string();
            let mut words = rest.split_whitespace();
            let kind = words.next().unwrap_or("");
            i += 1;
            let spec = match kind {
                "identity" => AttrSpec::Identity,
                "suppression" => AttrSpec::Suppression,
                "round" => {
                    let n: usize = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or(SpecError::Parse {
                            line: lineno,
                            message: "round needs a digit count".into(),
                        })?;
                    AttrSpec::Round(n)
                }
                "ranges" => {
                    let widths: Vec<i64> = words
                        .next()
                        .map(|w| w.split(',').filter_map(|x| x.parse().ok()).collect())
                        .unwrap_or_default();
                    if widths.is_empty() {
                        return Err(SpecError::Parse {
                            line: lineno,
                            message: "ranges needs comma-separated widths".into(),
                        });
                    }
                    let suppress = words.next() == Some("suppress");
                    AttrSpec::Ranges { widths, suppress }
                }
                "taxonomy" => {
                    // Consume the indented block.
                    let mut block: Vec<(usize, &str)> = Vec::new();
                    while i < lines.len() && lines[i].1.starts_with(' ') {
                        block.push(lines[i]);
                        i += 1;
                    }
                    if block.is_empty() {
                        return Err(SpecError::Parse {
                            line: lineno,
                            message: "taxonomy needs an indented tree block".into(),
                        });
                    }
                    AttrSpec::Taxonomy(parse_tree(&name, &block)?)
                }
                other => {
                    return Err(SpecError::Parse {
                        line: lineno,
                        message: format!("unknown kind {other:?}"),
                    })
                }
            };
            attributes.push((name, spec));
        }
        if attributes.is_empty() {
            return Err(SpecError::Parse { line: 0, message: "empty spec".into() });
        }
        Ok(SchemaSpec { attributes })
    }
}

/// Parse an indented block (two spaces per level) into a taxonomy rooted at
/// `*`.
fn parse_tree(attr: &str, block: &[(usize, &str)]) -> Result<TaxonomyNode, SpecError> {
    fn depth_of(line: &str) -> usize {
        (line.len() - line.trim_start().len()) / 2
    }
    // Parse as a forest at depth 1, children of an implicit "*" root.
    fn build(
        block: &[(usize, &str)],
        pos: &mut usize,
        depth: usize,
    ) -> Result<Vec<TaxonomyNode>, SpecError> {
        let mut out = Vec::new();
        while *pos < block.len() {
            let (lineno, line) = block[*pos];
            let d = depth_of(line);
            match d.cmp(&depth) {
                std::cmp::Ordering::Less => break,
                std::cmp::Ordering::Greater => {
                    return Err(SpecError::Parse {
                        line: lineno,
                        message: format!("indentation jumped to depth {d}, expected {depth}"),
                    })
                }
                std::cmp::Ordering::Equal => {
                    let label = line.trim().to_string();
                    *pos += 1;
                    let children = build(block, pos, depth + 1)?;
                    out.push(TaxonomyNode { label, children });
                }
            }
        }
        Ok(out)
    }
    let mut pos = 0;
    let children = build(block, &mut pos, 1)?;
    Ok(TaxonomyNode::node(format!("{attr}:*"), children))
}

/// Load a CSV under a spec: the header must list the spec's attributes in
/// order; ground domains for the inferred kinds are collected from the data
/// (numerics sorted numerically so ordered-set models behave sensibly).
pub fn load_csv_with_spec<R: BufRead>(
    spec: &SchemaSpec,
    input: R,
) -> Result<Table, SpecError> {
    // First pass: buffer the records and collect distinct values per column.
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or(SpecError::Parse { line: 1, message: "missing CSV header".into() })?
        .map_err(|e| SpecError::Csv(CsvError::Io(e)))?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let expected: Vec<&str> = spec.attributes.iter().map(|(n, _)| n.as_str()).collect();
    if names != expected {
        return Err(SpecError::Parse {
            line: 1,
            message: format!("CSV header {names:?} does not match spec {expected:?}"),
        });
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut domains: Vec<BTreeSet<String>> = vec![BTreeSet::new(); spec.attributes.len()];
    for (idx, line) in lines.enumerate() {
        let line = line.map_err(|e| SpecError::Csv(CsvError::Io(e)))?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<String> = line.split(',').map(|f| f.trim().to_string()).collect();
        if fields.len() != spec.attributes.len() {
            return Err(SpecError::Parse {
                line: idx + 2,
                message: format!(
                    "row has {} fields, expected {}",
                    fields.len(),
                    spec.attributes.len()
                ),
            });
        }
        for (d, f) in domains.iter_mut().zip(&fields) {
            d.insert(f.clone());
        }
        rows.push(fields);
    }

    // Build hierarchies per attribute.
    let mut attrs = Vec::with_capacity(spec.attributes.len());
    for ((name, aspec), domain) in spec.attributes.iter().zip(&domains) {
        let mut values: Vec<&str> = domain.iter().map(String::as_str).collect();
        // Sort numerically when every value parses as an integer, so that
        // interval models see a meaningful order.
        if !values.is_empty() && values.iter().all(|v| v.parse::<i64>().is_ok()) {
            values.sort_by_key(|v| v.parse::<i64>().expect("checked"));
        }
        let hierarchy = match aspec {
            AttrSpec::Identity => builders::identity(name, &values)?,
            AttrSpec::Suppression => builders::suppression(name, &values)?,
            AttrSpec::Round(n) => builders::round_digits(name, &values, *n)?,
            AttrSpec::Ranges { widths, suppress } => {
                let nums: Result<Vec<i64>, _> =
                    values.iter().map(|v| v.parse::<i64>()).collect();
                let nums = nums.map_err(|_| SpecError::Parse {
                    line: 0,
                    message: format!("attribute {name:?} declared `ranges` but holds non-integers"),
                })?;
                builders::ranges(name, &nums, widths, *suppress)?
            }
            AttrSpec::Taxonomy(tree) => builders::taxonomy(name, tree.clone())?,
        };
        attrs.push(Attribute::new(name, hierarchy));
    }
    let schema: Arc<Schema> = Schema::new(attrs).map_err(|e| SpecError::Csv(CsvError::Table(e)))?;

    let mut table = Table::empty(schema);
    for (idx, fields) in rows.iter().enumerate() {
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        table.push_row(&refs).map_err(|e| SpecError::Parse {
            line: idx + 2,
            message: e.to_string(),
        })?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# patients demo
Age: ranges 5,10 suppress
Sex: suppression
Zip: round 2
Work: taxonomy
  employed
    private
    gov
  other
    retired
Disease: identity
";

    #[test]
    fn parse_all_kinds() {
        let s = SchemaSpec::parse(SPEC).unwrap();
        assert_eq!(s.attributes.len(), 5);
        assert_eq!(s.attributes[0].1, AttrSpec::Ranges { widths: vec![5, 10], suppress: true });
        assert_eq!(s.attributes[1].1, AttrSpec::Suppression);
        assert_eq!(s.attributes[2].1, AttrSpec::Round(2));
        assert!(matches!(s.attributes[3].1, AttrSpec::Taxonomy(_)));
        assert_eq!(s.attributes[4].1, AttrSpec::Identity);
    }

    #[test]
    fn parse_errors_report_lines() {
        assert!(matches!(
            SchemaSpec::parse("Age ranges 5").unwrap_err(),
            SpecError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            SchemaSpec::parse("Age: bogus").unwrap_err(),
            SpecError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            SchemaSpec::parse("Age: round").unwrap_err(),
            SpecError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            SchemaSpec::parse("W: taxonomy\nNext: identity").unwrap_err(),
            SpecError::Parse { .. }
        ));
        assert!(matches!(SpecError::from(
            incognito_hierarchy::HierarchyError::EmptyDomain
        ), SpecError::Hierarchy(_)));
    }

    #[test]
    fn load_csv_infers_domains_and_builds_hierarchies() {
        let spec = SchemaSpec::parse(SPEC).unwrap();
        let csv = "\
Age,Sex,Zip,Work,Disease
31,M,53715,private,flu
34,F,53710,gov,cold
47,M,53706,retired,flu
8,F,53703,private,cold
";
        let t = load_csv_with_spec(&spec, csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 4);
        let age = t.schema().hierarchy(0);
        assert_eq!(age.height(), 3); // 5yr, 10yr, *
        assert_eq!(age.label(1, age.generalize(age.ground_id("31").unwrap(), 1)), "[30-35)");
        // Numeric sort: ground id order is 8 < 31 < 34 < 47.
        assert_eq!(age.label(0, 0), "8");
        let work = t.schema().hierarchy(3);
        assert_eq!(work.height(), 2);
        let private = work.ground_id("private").unwrap();
        assert_eq!(work.label(1, work.generalize(private, 1)), "employed");
        assert_eq!(work.label(2, work.generalize(private, 2)), "Work:*");
        let zip = t.schema().hierarchy(2);
        assert_eq!(zip.height(), 2);
    }

    #[test]
    fn csv_header_mismatch() {
        let spec = SchemaSpec::parse("A: identity\nB: identity").unwrap();
        let err = load_csv_with_spec(&spec, "A,C\n1,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }));
    }

    #[test]
    fn ragged_rows_rejected() {
        let spec = SchemaSpec::parse("A: identity\nB: identity").unwrap();
        let err = load_csv_with_spec(&spec, "A,B\n1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 2, .. }));
    }

    #[test]
    fn taxonomy_depth_jump_rejected() {
        let bad = "W: taxonomy\n  a\n      deep\n";
        assert!(matches!(SchemaSpec::parse(bad).unwrap_err(), SpecError::Parse { .. }));
    }
}
