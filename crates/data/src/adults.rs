//! Synthetic **Adults** dataset matching Figure 9 of the paper.
//!
//! Schema (attribute index, name, distinct ground values, hierarchy):
//!
//! | # | Attribute      | Distinct | Generalizations            |
//! |---|----------------|----------|-----------------------------|
//! | 0 | Age            | 74       | 5-, 10-, 20-year ranges (4) |
//! | 1 | Gender         | 2        | Suppression (1)             |
//! | 2 | Race           | 5        | Suppression (1)             |
//! | 3 | Marital Status | 7        | Taxonomy tree (2)           |
//! | 4 | Education      | 16       | Taxonomy tree (3)           |
//! | 5 | Native Country | 41       | Taxonomy tree (2)           |
//! | 6 | Work Class     | 7       | Taxonomy tree (2)           |
//! | 7 | Occupation     | 14       | Taxonomy tree (2)           |
//! | 8 | Salary Class   | 2        | Suppression (1)             |
//!
//! The default row count is 45,222 — the paper's table size after removing
//! records with unknown values. Value frequencies are skewed to resemble
//! the census marginals (majority-class dominance, age concentration in the
//! working years) with light age→marital and education→salary correlation,
//! so frequency-set shapes behave like the real data's.

use std::sync::Arc;

use incognito_hierarchy::builders::{self, TaxonomyNode};
use incognito_obs::Rng;
use incognito_table::{Attribute, Schema, Table};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct AdultsConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed; identical seeds produce identical tables.
    pub seed: u64,
}

impl Default for AdultsConfig {
    fn default() -> Self {
        AdultsConfig { rows: 45_222, seed: 0x1ce5_0a11 }
    }
}

/// The paper-scale Adults table (45,222 rows, default seed).
pub fn adults_default() -> Table {
    adults(&AdultsConfig::default())
}

/// Generate the synthetic Adults table.
pub fn adults(cfg: &AdultsConfig) -> Table {
    let schema = adults_schema();
    let mut rng = Rng::seed_from_u64(cfg.seed);

    let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(cfg.rows); schema.arity()];
    let age_sampler = Sampler::new(&age_weights());
    let gender = Sampler::new(&[67.0, 33.0]);
    let race = Sampler::new(&[85.4, 9.4, 3.1, 0.9, 1.2]);
    let marital_young = Sampler::new(&[15.0, 0.2, 1.0, 55.0, 18.0, 9.0, 1.8]);
    let marital_old = Sampler::new(&[52.0, 0.3, 1.5, 12.0, 19.0, 6.0, 9.2]);
    let education = Sampler::new(&[
        0.3, 1.0, 1.5, 2.0, 2.2, 3.0, 3.5, 1.6, // Preschool..12th
        32.0, 22.0, 4.5, 3.4, // HS-grad, Some-college, Assoc-voc, Assoc-acdm
        16.0, 5.5, 1.5, 1.2, // Bachelors, Masters, Prof-school, Doctorate
    ]);
    let country = Sampler::new(&country_weights());
    let workclass = Sampler::new(&[73.0, 8.0, 3.5, 3.0, 4.0, 6.4, 0.1]);
    let occupation = Sampler::new(&[
        12.6, 12.5, 12.4, 11.2, 10.1, 10.0, 4.2, 6.1, 11.5, 3.0, 4.8, 0.5, 2.0, 0.1,
    ]);

    for _ in 0..cfg.rows {
        let age_idx = age_sampler.sample(&mut rng) as u32; // 0..74 ⇔ age 17..90
        let age_years = 17 + age_idx;
        cols[0].push(age_idx);
        cols[1].push(gender.sample(&mut rng) as u32);
        cols[2].push(race.sample(&mut rng) as u32);
        let marital = if age_years < 30 {
            marital_young.sample(&mut rng)
        } else {
            marital_old.sample(&mut rng)
        };
        cols[3].push(marital as u32);
        let edu = education.sample(&mut rng);
        cols[4].push(edu as u32);
        cols[5].push(country.sample(&mut rng) as u32);
        cols[6].push(workclass.sample(&mut rng) as u32);
        cols[7].push(occupation.sample(&mut rng) as u32);
        // Salary: >50K more likely with higher education and age ≥ 30.
        let p_high = 0.08 + 0.02 * (edu as f64) + if age_years >= 30 { 0.08 } else { 0.0 };
        cols[8].push(u32::from(rng.gen_bool(p_high.min(0.9))));
    }

    Table::from_columns(schema, cols).expect("generated ids are in range")
}

/// The Adults schema with the Figure 9 hierarchies (no rows).
pub fn adults_schema() -> Arc<Schema> {
    let ages: Vec<i64> = (17..=90).collect(); // 74 distinct values
    Schema::new(vec![
        Attribute::new(
            "Age",
            builders::ranges("Age", &ages, &[5, 10, 20], true).expect("static hierarchy"),
        ),
        Attribute::new(
            "Gender",
            builders::suppression("Gender", &["Male", "Female"]).expect("static hierarchy"),
        ),
        Attribute::new(
            "Race",
            builders::suppression(
                "Race",
                &["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"],
            )
            .expect("static hierarchy"),
        ),
        Attribute::new("Marital Status", marital_taxonomy()),
        Attribute::new("Education", education_taxonomy()),
        Attribute::new("Native Country", country_taxonomy()),
        Attribute::new("Work Class", workclass_taxonomy()),
        Attribute::new("Occupation", occupation_taxonomy()),
        Attribute::new(
            "Salary Class",
            builders::suppression("Salary Class", &["<=50K", ">50K"]).expect("static hierarchy"),
        ),
    ])
    .expect("static schema")
}

/// Age frequencies for ages 17..=90: a working-age hump with a long tail.
fn age_weights() -> Vec<f64> {
    (17..=90)
        .map(|a| {
            let x = a as f64;
            // Peak near 36, slow decay into retirement ages.
            (-((x - 36.0) * (x - 36.0)) / (2.0 * 14.0 * 14.0)).exp() + 0.02
        })
        .collect()
}

fn marital_taxonomy() -> incognito_hierarchy::Hierarchy {
    // 7 leaves at depth 2 (height 2).
    let leaf = TaxonomyNode::leaf;
    builders::taxonomy(
        "Marital Status",
        TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::node(
                    "Married",
                    vec![
                        leaf("Married-civ-spouse"),
                        leaf("Married-AF-spouse"),
                        leaf("Married-spouse-absent"),
                    ],
                ),
                TaxonomyNode::node(
                    "Not-married",
                    vec![leaf("Never-married"), leaf("Divorced"), leaf("Separated"), leaf("Widowed")],
                ),
            ],
        ),
    )
    .expect("static taxonomy")
}

fn education_taxonomy() -> incognito_hierarchy::Hierarchy {
    // 16 leaves at depth 3 (height 3).
    let leaf = TaxonomyNode::leaf;
    builders::taxonomy(
        "Education",
        TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::node(
                    "Without-post-secondary",
                    vec![
                        TaxonomyNode::node(
                            "Elementary",
                            vec![leaf("Preschool"), leaf("1st-4th"), leaf("5th-6th"), leaf("7th-8th")],
                        ),
                        TaxonomyNode::node(
                            "Secondary",
                            vec![leaf("9th"), leaf("10th"), leaf("11th"), leaf("12th")],
                        ),
                    ],
                ),
                TaxonomyNode::node(
                    "With-post-secondary",
                    vec![
                        TaxonomyNode::node(
                            "Some-post-secondary",
                            vec![
                                leaf("HS-grad"),
                                leaf("Some-college"),
                                leaf("Assoc-voc"),
                                leaf("Assoc-acdm"),
                            ],
                        ),
                        TaxonomyNode::node(
                            "University",
                            vec![
                                leaf("Bachelors"),
                                leaf("Masters"),
                                leaf("Prof-school"),
                                leaf("Doctorate"),
                            ],
                        ),
                    ],
                ),
            ],
        ),
    )
    .expect("static taxonomy")
}

/// 41 countries grouped into 5 regions (height 2).
fn country_names() -> Vec<(&'static str, &'static [&'static str])> {
    vec![
        ("North-America", &["United-States", "Canada", "Outlying-US"][..]),
        (
            "Latin-America",
            &[
                "Mexico", "Puerto-Rico", "Cuba", "Jamaica", "Honduras", "Haiti",
                "Dominican-Republic", "El-Salvador", "Guatemala", "Nicaragua", "Columbia",
                "Ecuador", "Peru", "Trinadad&Tobago",
            ][..],
        ),
        (
            "Europe",
            &[
                "England", "Germany", "Greece", "Italy", "Poland", "Portugal", "Ireland",
                "France", "Hungary", "Scotland", "Yugoslavia", "Holand-Netherlands",
            ][..],
        ),
        (
            "Asia",
            &[
                "India", "Japan", "China", "Iran", "Philippines", "Cambodia", "Thailand",
                "Laos", "Taiwan", "Vietnam", "Hong",
            ][..],
        ),
        ("Other-region", &["South"][..]),
    ]
}

fn country_taxonomy() -> incognito_hierarchy::Hierarchy {
    let regions = country_names()
        .into_iter()
        .map(|(region, countries)| {
            TaxonomyNode::node(
                region,
                countries.iter().map(|&c| TaxonomyNode::leaf(c)).collect(),
            )
        })
        .collect();
    builders::taxonomy("Native Country", TaxonomyNode::node("*", regions))
        .expect("static taxonomy")
}

/// Weights aligned with the leaf order of [`country_taxonomy`]
/// (depth-first): the United States dominates, the rest follow a 1/rank
/// tail.
fn country_weights() -> Vec<f64> {
    let total: usize = country_names().iter().map(|(_, cs)| cs.len()).sum();
    debug_assert_eq!(total, 41);
    let mut w = Vec::with_capacity(total);
    for (i, _) in (0..total).enumerate() {
        w.push(if i == 0 { 600.0 } else { 10.0 / (i as f64) });
    }
    w
}

fn workclass_taxonomy() -> incognito_hierarchy::Hierarchy {
    let leaf = TaxonomyNode::leaf;
    builders::taxonomy(
        "Work Class",
        TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::node("Non-government", vec![leaf("Private"), leaf("Without-pay")]),
                TaxonomyNode::node(
                    "Self-employed",
                    vec![leaf("Self-emp-not-inc"), leaf("Self-emp-inc")],
                ),
                TaxonomyNode::node(
                    "Government",
                    vec![leaf("Federal-gov"), leaf("State-gov"), leaf("Local-gov")],
                ),
            ],
        ),
    )
    .expect("static taxonomy")
}

fn occupation_taxonomy() -> incognito_hierarchy::Hierarchy {
    let leaf = TaxonomyNode::leaf;
    builders::taxonomy(
        "Occupation",
        TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::node(
                    "White-collar",
                    vec![
                        leaf("Exec-managerial"),
                        leaf("Prof-specialty"),
                        leaf("Adm-clerical"),
                        leaf("Sales"),
                        leaf("Tech-support"),
                    ],
                ),
                TaxonomyNode::node(
                    "Blue-collar",
                    vec![
                        leaf("Craft-repair"),
                        leaf("Machine-op-inspct"),
                        leaf("Handlers-cleaners"),
                        leaf("Transport-moving"),
                        leaf("Farming-fishing"),
                    ],
                ),
                TaxonomyNode::node(
                    "Service",
                    vec![
                        leaf("Other-service"),
                        leaf("Priv-house-serv"),
                        leaf("Protective-serv"),
                        leaf("Armed-Forces"),
                    ],
                ),
            ],
        ),
    )
    .expect("static taxonomy")
}

/// Cumulative-distribution sampler over arbitrary positive weights.
pub(crate) struct Sampler {
    cumulative: Vec<f64>,
}

impl Sampler {
    pub(crate) fn new(weights: &[f64]) -> Sampler {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Sampler { cumulative }
    }

    /// Zipf-like weights `1 / (rank + 1)^s` over `n` items.
    pub(crate) fn zipf(n: usize, s: f64) -> Sampler {
        Sampler::new(&(0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect::<Vec<_>>())
    }

    #[inline]
    pub(crate) fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let x: f64 = rng.range_f64(0.0, total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_figure9() {
        let s = adults_schema();
        let expect = [
            ("Age", 74usize, 4u8),
            ("Gender", 2, 1),
            ("Race", 5, 1),
            ("Marital Status", 7, 2),
            ("Education", 16, 3),
            ("Native Country", 41, 2),
            ("Work Class", 7, 2),
            ("Occupation", 14, 2),
            ("Salary Class", 2, 1),
        ];
        assert_eq!(s.arity(), 9);
        for (i, (name, distinct, height)) in expect.iter().enumerate() {
            let h = s.hierarchy(i);
            assert_eq!(s.attribute(i).name(), *name);
            assert_eq!(h.ground_size(), *distinct, "{name} distinct");
            assert_eq!(h.height(), *height, "{name} height");
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = AdultsConfig { rows: 500, seed: 7 };
        let a = adults(&cfg);
        let b = adults(&cfg);
        assert_eq!(a.num_rows(), 500);
        for c in 0..a.schema().arity() {
            assert_eq!(a.column(c), b.column(c));
        }
        let other = adults(&AdultsConfig { rows: 500, seed: 8 });
        assert_ne!(a.column(0), other.column(0));
    }

    #[test]
    fn skew_shapes_look_censusy() {
        let t = adults(&AdultsConfig { rows: 20_000, seed: 1 });
        // Majority race dominates.
        let white = t.column(2).iter().filter(|&&v| v == 0).count();
        assert!(white as f64 / 20_000.0 > 0.7);
        // US dominates country.
        let us = t.column(5).iter().filter(|&&v| v == 0).count();
        assert!(us as f64 / 20_000.0 > 0.8);
        // Age values span a wide range.
        let distinct_ages = {
            let mut v: Vec<u32> = t.column(0).to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct_ages > 60);
    }

    #[test]
    fn sampler_respects_weights() {
        let s = Sampler::new(&[90.0, 10.0]);
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| s.sample(&mut rng) == 0).count();
        assert!((8_500..9_500).contains(&hits), "got {hits}");
        let z = Sampler::zipf(5, 1.0);
        let first = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        assert!(first > 3_000);
    }

    #[test]
    fn generalizing_adults_is_consistent() {
        // Sanity: the paper's property that generalization only merges
        // groups — distinct count never increases up the Age hierarchy.
        let t = adults(&AdultsConfig { rows: 5_000, seed: 2 });
        let h = t.schema().hierarchy(0);
        let mut prev = usize::MAX;
        for level in 0..=h.height() {
            let spec = incognito_table::GroupSpec::new(vec![(0, level)]).unwrap();
            let groups = t.frequency_set(&spec).unwrap().num_groups();
            assert!(groups <= prev);
            prev = groups;
        }
        assert_eq!(prev, 1); // suppressed top
    }
}
