//! Relational operators: projection, selection, hash join, and hash
//! aggregation — the pieces needed to express every query in §3 of the
//! paper.

use incognito_table::fxhash::FxHashMap;

use crate::relation::{ColumnData, Relation, Value};
use crate::RelError;

/// One aggregate in a `GROUP BY` (the paper needs exactly these two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*) AS <alias>`.
    CountStar {
        /// Output column name.
        alias: String,
    },
    /// `SUM(<column>) AS <alias>` over an Int column.
    SumInt {
        /// Input column.
        column: String,
        /// Output column name.
        alias: String,
    },
}

impl Aggregate {
    /// `COUNT(*) AS alias`.
    pub fn count(alias: &str) -> Aggregate {
        Aggregate::CountStar { alias: alias.to_string() }
    }

    /// `SUM(column) AS alias`.
    pub fn sum(column: &str, alias: &str) -> Aggregate {
        Aggregate::SumInt { column: column.to_string(), alias: alias.to_string() }
    }
}

/// An equi-join key pair: `left.0 = right.1`.
pub type JoinKey<'a> = (&'a str, &'a str);

impl Relation {
    /// `SELECT <cols> FROM self` with optional renaming:
    /// each entry is `(source column, output name)`.
    pub fn project(&self, cols: &[(&str, &str)]) -> Result<Relation, RelError> {
        let mut out = Vec::with_capacity(cols.len());
        for &(src, alias) in cols {
            let idx = self.column_index(src)?;
            out.push((alias, self.column_at(idx).clone()));
        }
        Relation::new(out)
    }

    /// `WHERE <predicate>` with an arbitrary row predicate (used for the
    /// inequality conjuncts like `p.dim1 < q.dim1` that hash joins cannot
    /// express).
    pub fn filter(&self, pred: impl Fn(&Relation, usize) -> bool) -> Relation {
        let mut out = self.empty_like();
        for row in 0..self.len() {
            if pred(self, row) {
                out.push_row_from(self, row);
            }
        }
        out
    }

    /// `WHERE <column> = <value>`.
    pub fn filter_eq(&self, column: &str, value: &Value) -> Result<Relation, RelError> {
        let idx = self.column_index(column)?;
        Ok(self.filter(|r, row| r.column_at(idx).value(row) == *value))
    }

    /// Inner hash equi-join. Output columns: all of `self` (names kept),
    /// then all of `other` prefixed with `prefix` (SQL's `q.` alias) to
    /// avoid collisions.
    pub fn join(
        &self,
        other: &Relation,
        on: &[JoinKey<'_>],
        prefix: &str,
    ) -> Result<Relation, RelError> {
        let left_keys: Vec<usize> = on
            .iter()
            .map(|&(l, _)| self.column_index(l))
            .collect::<Result<_, _>>()?;
        let right_keys: Vec<usize> = on
            .iter()
            .map(|&(_, r)| other.column_index(r))
            .collect::<Result<_, _>>()?;

        // Build on the smaller side conceptually; keep it simple: build right.
        let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for row in 0..other.len() {
            let key: Vec<Value> = right_keys.iter().map(|&k| other.column_at(k).value(row)).collect();
            index.entry(key).or_default().push(row);
        }

        // Output schema.
        let mut cols: Vec<(String, ColumnData)> = Vec::new();
        for (name, col) in self.names().iter().zip((0..self.arity()).map(|i| self.column_at(i))) {
            cols.push((name.clone(), empty_like(col)));
        }
        for (name, col) in other.names().iter().zip((0..other.arity()).map(|i| other.column_at(i))) {
            cols.push((format!("{prefix}{name}"), empty_like(col)));
        }

        for lrow in 0..self.len() {
            let key: Vec<Value> = left_keys.iter().map(|&k| self.column_at(k).value(lrow)).collect();
            if let Some(matches) = index.get(&key) {
                for &rrow in matches {
                    for (i, (_, col)) in cols.iter_mut().enumerate().take(self.arity()) {
                        push_from(col, self.column_at(i), lrow);
                    }
                    for (j, (_, col)) in cols.iter_mut().enumerate().skip(self.arity()) {
                        push_from(col, other.column_at(j - self.arity()), rrow);
                    }
                }
            }
        }
        let refs: Vec<(&str, ColumnData)> =
            cols.into_iter().map(|(n, c)| (leak_name(n), c)).collect();
        Relation::new(refs)
    }

    /// `SELECT keys..., aggs... FROM self GROUP BY keys...`.
    pub fn group_by(&self, keys: &[&str], aggs: &[Aggregate]) -> Result<Relation, RelError> {
        let key_idx: Vec<usize> =
            keys.iter().map(|&k| self.column_index(k)).collect::<Result<_, _>>()?;
        let sum_idx: Vec<Option<usize>> = aggs
            .iter()
            .map(|a| match a {
                Aggregate::CountStar { .. } => Ok(None),
                Aggregate::SumInt { column, .. } => {
                    let idx = self.column_index(column)?;
                    match self.column_at(idx) {
                        ColumnData::Int(_) => Ok(Some(idx)),
                        ColumnData::Text(_) => Err(RelError::TypeMismatch {
                            op: "SUM",
                            column: column.clone(),
                        }),
                    }
                }
            })
            .collect::<Result<_, _>>()?;

        // group key -> (representative row, accumulator per aggregate)
        let mut groups: FxHashMap<Vec<Value>, (usize, Vec<i64>)> = FxHashMap::default();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for row in 0..self.len() {
            let key: Vec<Value> = key_idx.iter().map(|&k| self.column_at(k).value(row)).collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (row, vec![0i64; aggs.len()])
            });
            for (acc, src) in entry.1.iter_mut().zip(&sum_idx) {
                match src {
                    None => *acc += 1,
                    Some(idx) => match self.column_at(*idx) {
                        ColumnData::Int(v) => *acc += v[row],
                        ColumnData::Text(_) => unreachable!("validated above"),
                    },
                }
            }
        }

        // Assemble output columns: group keys then aggregates.
        let mut cols: Vec<(String, ColumnData)> = Vec::new();
        for (&ki, &kname) in key_idx.iter().zip(keys) {
            cols.push((kname.to_string(), empty_like(self.column_at(ki))));
        }
        for a in aggs {
            let alias = match a {
                Aggregate::CountStar { alias } | Aggregate::SumInt { alias, .. } => alias.clone(),
            };
            cols.push((alias, ColumnData::Int(Vec::new())));
        }
        for key in &order {
            let (rep, accs) = &groups[key];
            for (i, (_, col)) in cols.iter_mut().enumerate().take(key_idx.len()) {
                push_from(col, self.column_at(key_idx[i]), *rep);
            }
            for (j, (_, col)) in cols.iter_mut().enumerate().skip(key_idx.len()) {
                match col {
                    ColumnData::Int(v) => v.push(accs[j - key_idx.len()]),
                    ColumnData::Text(_) => unreachable!("aggregates are Int"),
                }
            }
        }
        let refs: Vec<(&str, ColumnData)> =
            cols.into_iter().map(|(n, c)| (leak_name(n), c)).collect();
        Relation::new(refs)
    }
}

fn empty_like(c: &ColumnData) -> ColumnData {
    match c {
        ColumnData::Int(_) => ColumnData::Int(Vec::new()),
        ColumnData::Text(_) => ColumnData::Text(Vec::new()),
    }
}

fn push_from(dst: &mut ColumnData, src: &ColumnData, row: usize) {
    match (dst, src) {
        (ColumnData::Int(d), ColumnData::Int(s)) => d.push(s[row]),
        (ColumnData::Text(d), ColumnData::Text(s)) => d.push(s[row].clone()),
        _ => unreachable!("columns are created type-consistent"),
    }
}

// `Relation::new` borrows names; keep construction simple by leaking the
// handful of short-lived output names. Bounded by query text, not data.
fn leak_name(n: String) -> &'static str {
    Box::leak(n.into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> ColumnData {
        ColumnData::Int(v.to_vec())
    }

    fn texts(v: &[&str]) -> ColumnData {
        ColumnData::Text(v.iter().map(|s| s.to_string()).collect())
    }

    fn patients_sz() -> Relation {
        Relation::new(vec![
            ("sex", texts(&["M", "F", "M", "M", "F", "F"])),
            ("zip", texts(&["53715", "53715", "53703", "53703", "53706", "53706"])),
        ])
        .unwrap()
    }

    #[test]
    fn project_and_rename() {
        let r = patients_sz();
        let p = r.project(&[("zip", "zipcode")]).unwrap();
        assert_eq!(p.names(), ["zipcode"]);
        assert_eq!(p.len(), 6);
        assert!(r.project(&[("nope", "x")]).is_err());
    }

    #[test]
    fn filter_variants() {
        let r = patients_sz();
        let m = r.filter_eq("sex", &Value::Text("M".into())).unwrap();
        assert_eq!(m.len(), 3);
        let idx = r.column_index("zip").unwrap();
        let z = r.filter(|rel, row| {
            matches!(rel.column_at(idx).value(row), Value::Text(t) if t.starts_with("5370"))
        });
        assert_eq!(z.len(), 4);
    }

    #[test]
    fn group_by_count_matches_sql_example() {
        // §1.1's example query: SELECT COUNT(*) FROM Patients GROUP BY
        // Sex, Zipcode — a group of size 1 exists, so not 2-anonymous.
        let r = patients_sz();
        let g = r
            .group_by(&["sex", "zip"], &[Aggregate::count("cnt")])
            .unwrap()
            .sorted();
        assert_eq!(g.len(), 4);
        let counts: Vec<Value> = (0..4).map(|i| g.value(i, "cnt").unwrap()).collect();
        assert!(counts.contains(&Value::Int(1)));
        let min = counts
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                Value::Text(_) => unreachable!(),
            })
            .min()
            .unwrap();
        assert_eq!(min, 1);
    }

    #[test]
    fn group_by_sum_rolls_up() {
        // SUM(count) GROUP BY — the Rollup Property query.
        let freq = Relation::new(vec![
            ("zip", texts(&["53715", "53715", "53703", "53706"])),
            ("sex", texts(&["M", "F", "M", "F"])),
            ("count", ints(&[1, 1, 2, 2])),
        ])
        .unwrap();
        let rolled = freq
            .group_by(&["zip"], &[Aggregate::sum("count", "count")])
            .unwrap()
            .sorted();
        assert_eq!(rolled.len(), 3);
        assert_eq!(rolled.value(2, "count").unwrap(), Value::Int(2)); // 53715 = 1+1
        assert!(freq
            .group_by(&["zip"], &[Aggregate::sum("sex", "s")])
            .is_err());
    }

    #[test]
    fn hash_join_inner() {
        let dim = Relation::new(vec![
            ("zip", texts(&["53715", "53703", "53706"])),
            ("zip1", texts(&["5371*", "5370*", "5370*"])),
        ])
        .unwrap();
        let joined = patients_sz().join(&dim, &[("zip", "zip")], "d_").unwrap();
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.names(), ["sex", "zip", "d_zip", "d_zip1"]);
        // Generalized grouping through the dimension table:
        let g = joined
            .group_by(&["sex", "d_zip1"], &[Aggregate::count("cnt")])
            .unwrap()
            .sorted();
        assert_eq!(g.len(), 4); // (F,5370*) (F,5371*) (M,5370*) (M,5371*)
        // Missing key on either side yields an error.
        assert!(patients_sz().join(&dim, &[("zip", "nope")], "d_").is_err());
    }

    #[test]
    fn join_drops_unmatched() {
        let left = Relation::new(vec![("k", ints(&[1, 2, 3]))]).unwrap();
        let right = Relation::new(vec![("k", ints(&[2, 2, 4]))]).unwrap();
        let j = left.join(&right, &[("k", "k")], "r_").unwrap();
        assert_eq!(j.len(), 2); // 2 matches twice, 1/3/4 unmatched
    }

    #[test]
    fn group_by_empty_input() {
        let r = Relation::new(vec![("x", ints(&[]))]).unwrap();
        let g = r.group_by(&["x"], &[Aggregate::count("c")]).unwrap();
        assert_eq!(g.len(), 0);
    }
}
