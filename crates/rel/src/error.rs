use std::fmt;

/// Errors from relational-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A referenced column name does not exist in the relation.
    UnknownColumn(String),
    /// Two columns in one relation share a name.
    DuplicateColumn(String),
    /// Column vectors of unequal length were supplied.
    RaggedColumns {
        /// Expected length.
        expected: usize,
        /// Actual length of the offending column.
        actual: usize,
    },
    /// A join/aggregate mixed Int and Text columns.
    TypeMismatch {
        /// The operation that failed.
        op: &'static str,
        /// Offending column name.
        column: String,
    },
    /// `except`/`union` over relations with different schemas.
    SchemaMismatch {
        /// Left schema.
        left: Vec<String>,
        /// Right schema.
        right: Vec<String>,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            RelError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            RelError::RaggedColumns { expected, actual } => {
                write!(f, "column length {actual} differs from {expected}")
            }
            RelError::TypeMismatch { op, column } => {
                write!(f, "type mismatch in {op} on column {column:?}")
            }
            RelError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left:?} vs {right:?}")
            }
        }
    }
}

impl std::error::Error for RelError {}
