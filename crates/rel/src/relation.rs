use std::fmt;

use incognito_table::fxhash::FxHashMap;

use crate::RelError;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit integer (ids, counts, levels).
    Int(i64),
    /// Text (labels, dimension names).
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => write!(f, "{t}"),
        }
    }
}

/// Columnar storage for one attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// Text column.
    Text(Vec<String>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Text(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Text(v) => Value::Text(v[row].clone()),
        }
    }

    fn empty_like(&self) -> ColumnData {
        match self {
            ColumnData::Int(_) => ColumnData::Int(Vec::new()),
            ColumnData::Text(_) => ColumnData::Text(Vec::new()),
        }
    }

    fn push_from(&mut self, src: &ColumnData, row: usize) {
        match (self, src) {
            (ColumnData::Int(dst), ColumnData::Int(s)) => dst.push(s[row]),
            (ColumnData::Text(dst), ColumnData::Text(s)) => dst.push(s[row].clone()),
            _ => unreachable!("columns are created type-consistent"),
        }
    }
}

/// A named-column relation with multiset semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    names: Vec<String>,
    columns: Vec<ColumnData>,
}

impl Relation {
    /// Build a relation from `(name, column)` pairs. Names must be unique
    /// and columns equally long.
    pub fn new(columns: Vec<(&str, ColumnData)>) -> Result<Relation, RelError> {
        let mut names = Vec::with_capacity(columns.len());
        let mut data = Vec::with_capacity(columns.len());
        let mut len: Option<usize> = None;
        for (name, col) in columns {
            if names.iter().any(|n| n == name) {
                return Err(RelError::DuplicateColumn(name.to_string()));
            }
            match len {
                None => len = Some(col.len()),
                Some(l) if l != col.len() => {
                    return Err(RelError::RaggedColumns { expected: l, actual: col.len() })
                }
                _ => {}
            }
            names.push(name.to_string());
            data.push(col);
        }
        Ok(Relation { names, columns: data })
    }

    /// An empty relation with the same schema as `self`.
    pub fn empty_like(&self) -> Relation {
        Relation {
            names: self.names.clone(),
            columns: self.columns.iter().map(ColumnData::empty_like).collect(),
        }
    }

    /// Column names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize, RelError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Result<&ColumnData, RelError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// The column at position `idx`.
    pub fn column_at(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// The cell at (`row`, `name`).
    pub fn value(&self, row: usize, name: &str) -> Result<Value, RelError> {
        Ok(self.column(name)?.value(row))
    }

    /// One whole row as values (for tests and display).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Append `other`'s rows (SQL `UNION ALL`). Schemas must match by name
    /// and type.
    pub fn union_all(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_schema(other)?;
        let mut out = self.clone();
        for (dst, src) in out.columns.iter_mut().zip(&other.columns) {
            for row in 0..src.len() {
                dst.push_from(src, row);
            }
        }
        Ok(out)
    }

    /// SQL `EXCEPT` (set semantics): rows of `self` not present in
    /// `other`, deduplicated.
    pub fn except(&self, other: &Relation) -> Result<Relation, RelError> {
        self.check_same_schema(other)?;
        let mut exclude: FxHashMap<Vec<Value>, ()> = FxHashMap::default();
        for row in 0..other.len() {
            exclude.insert(other.row(row), ());
        }
        let mut seen: FxHashMap<Vec<Value>, ()> = FxHashMap::default();
        let mut out = self.empty_like();
        for row in 0..self.len() {
            let key = self.row(row);
            if exclude.contains_key(&key) || seen.insert(key, ()).is_some() {
                continue;
            }
            out.push_row_from(self, row);
        }
        Ok(out)
    }

    /// Deduplicate rows (SQL `SELECT DISTINCT *`).
    pub fn distinct(&self) -> Relation {
        let mut seen: FxHashMap<Vec<Value>, ()> = FxHashMap::default();
        let mut out = self.empty_like();
        for row in 0..self.len() {
            if seen.insert(self.row(row), ()).is_none() {
                out.push_row_from(self, row);
            }
        }
        out
    }

    /// Sort rows lexicographically by all columns (for deterministic
    /// output; SQL `ORDER BY *`).
    pub fn sorted(&self) -> Relation {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&a| self.row(a));
        let mut out = self.empty_like();
        for row in order {
            out.push_row_from(self, row);
        }
        out
    }

    pub(crate) fn push_row_from(&mut self, src: &Relation, row: usize) {
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.push_from(s, row);
        }
    }

    pub(crate) fn check_same_schema(&self, other: &Relation) -> Result<(), RelError> {
        let type_of = |c: &ColumnData| matches!(c, ColumnData::Int(_));
        if self.names != other.names
            || self
                .columns
                .iter()
                .zip(&other.columns)
                .any(|(a, b)| type_of(a) != type_of(b))
        {
            return Err(RelError::SchemaMismatch {
                left: self.names.clone(),
                right: other.names.clone(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.names.join(" | "))?;
        for row in 0..self.len() {
            let cells: Vec<String> = self.row(row).iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn ints(v: &[i64]) -> ColumnData {
        ColumnData::Int(v.to_vec())
    }

    pub(crate) fn texts(v: &[&str]) -> ColumnData {
        ColumnData::Text(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn construction_and_accessors() {
        let r = Relation::new(vec![("id", ints(&[1, 2])), ("name", texts(&["a", "b"]))]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.value(1, "name").unwrap(), Value::Text("b".into()));
        assert!(r.column("nope").is_err());
        assert!(Relation::new(vec![("x", ints(&[1])), ("x", ints(&[2]))]).is_err());
        assert!(Relation::new(vec![("x", ints(&[1])), ("y", ints(&[1, 2]))]).is_err());
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let a = Relation::new(vec![("x", ints(&[1, 2]))]).unwrap();
        let b = Relation::new(vec![("x", ints(&[2, 3]))]).unwrap();
        let u = a.union_all(&b).unwrap();
        assert_eq!(u.len(), 4);
        let bad = Relation::new(vec![("y", ints(&[1]))]).unwrap();
        assert!(a.union_all(&bad).is_err());
    }

    #[test]
    fn except_is_set_difference() {
        let a = Relation::new(vec![("x", ints(&[1, 1, 2, 3]))]).unwrap();
        let b = Relation::new(vec![("x", ints(&[2]))]).unwrap();
        let d = a.except(&b).unwrap().sorted();
        assert_eq!(d.len(), 2); // {1, 3} — deduplicated, 2 removed
        assert_eq!(d.value(0, "x").unwrap(), Value::Int(1));
        assert_eq!(d.value(1, "x").unwrap(), Value::Int(3));
    }

    #[test]
    fn distinct_and_sorted() {
        let r = Relation::new(vec![("x", ints(&[3, 1, 3, 2]))]).unwrap();
        let d = r.distinct();
        assert_eq!(d.len(), 3);
        let s = d.sorted();
        assert_eq!(
            (0..3).map(|i| s.value(i, "x").unwrap()).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn schema_mismatch_detects_types() {
        let a = Relation::new(vec![("x", ints(&[1]))]).unwrap();
        let b = Relation::new(vec![("x", texts(&["1"]))]).unwrap();
        assert!(a.union_all(&b).is_err());
        assert!(a.except(&b).is_err());
    }
}
