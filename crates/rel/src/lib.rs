//! A miniature relational engine.
//!
//! The paper implemented Incognito in Java on top of IBM DB2: frequency
//! sets were `SELECT COUNT(*) … GROUP BY` queries over a star schema,
//! rollups were `SUM(count)` queries joining a frequency table with a
//! dimension table, and candidate-graph generation was the two SQL
//! statements printed in §3.1.2 (a self-join over `Sᵢ₋₁` and the
//! `CandidateEdges … EXCEPT` query). This crate provides just enough of a
//! relational algebra to express all of those queries verbatim, so the
//! sibling `incognito-star` crate can run the whole algorithm the way the
//! paper actually ran it — and the test suite can confirm the SQL path and
//! the native columnar path compute identical answers.
//!
//! Deliberately simple: eager evaluation, two column types
//! ([`ColumnData::Int`] and [`ColumnData::Text`]), hash joins and hash
//! aggregation, multiset semantics throughout (`UNION ALL` by default,
//! set-based [`Relation::except`] like SQL's `EXCEPT`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ops;
mod relation;

pub use error::RelError;
pub use ops::{Aggregate, JoinKey};
pub use relation::{ColumnData, Relation, Value};
