//! In-memory columnar table substrate for the Incognito reproduction.
//!
//! The paper ran on IBM DB2: the microdata lived in a relational star schema
//! (Figure 4) whose dimension tables materialized the value generalization
//! functions, frequency sets were `GROUP BY COUNT(*)` queries, and rollups
//! were `SUM(count)` queries over a frequency set joined with a dimension
//! table. This crate is that substrate, built from scratch:
//!
//! * [`Table`] — a dictionary-encoded, column-oriented multiset of tuples;
//! * [`Schema`] / [`Attribute`] — attributes bound to their generalization
//!   hierarchies (the dimension tables);
//! * [`GroupSpec`] / [`FrequencySet`] — frequency-set computation by scan,
//!   by rollup (the Rollup Property), and by projection (the Subset
//!   Property);
//! * [`Table::generalize`] — materializing a full-domain generalization,
//!   optionally with the tuple-suppression threshold of §2.1;
//! * [`fxhash`] — the fast integer hasher used for group keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod external;
pub mod freq;
pub mod fxhash;
mod schema;
mod table;

pub use error::TableError;
pub use external::{ExternalError, ExternalFrequencySet};
pub use freq::{FrequencySet, GroupKey, GroupSpec, MAX_KEY_ATTRS};
pub use schema::{Attribute, Schema};
pub use table::Table;
