use std::fmt;
use std::sync::Arc;

use incognito_hierarchy::Hierarchy;

use crate::TableError;

/// One attribute of a relation: a name plus the domain generalization
/// hierarchy that dictionary-encodes its ground domain.
///
/// Sensitive attributes that are never generalized use a height-0
/// ([`incognito_hierarchy::builders::identity`]) hierarchy; the hierarchy
/// then serves purely as the attribute's value dictionary.
#[derive(Debug, Clone)]
pub struct Attribute {
    name: String,
    hierarchy: Hierarchy,
}

impl Attribute {
    /// Create an attribute backed by `hierarchy`.
    pub fn new(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        Attribute { name: name.into(), hierarchy }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's generalization hierarchy / value dictionary.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

/// An ordered list of attributes — the relation schema.
///
/// Schemas are immutable and shared via [`Arc`]; a [`crate::Table`] and every
/// frequency set derived from it reference the same schema.
#[derive(Debug, Clone)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes. Names must be unique.
    pub fn new(attributes: Vec<Attribute>) -> Result<Arc<Self>, TableError> {
        let mut seen = std::collections::HashSet::new();
        for a in &attributes {
            if !seen.insert(a.name().to_string()) {
                return Err(TableError::DuplicateAttribute(a.name().to_string()));
            }
        }
        Ok(Arc::new(Schema { attributes }))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute at position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Shorthand for `attribute(idx).hierarchy()`.
    pub fn hierarchy(&self, idx: usize) -> &Hierarchy {
        self.attributes[idx].hierarchy()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}[h={}]", a.name(), a.hierarchy().height())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_hierarchy::builders;

    #[test]
    fn schema_lookup_and_display() {
        let s = Schema::new(vec![
            Attribute::new("Sex", builders::suppression("Sex", &["M", "F"]).unwrap()),
            Attribute::new("Zip", builders::round_digits("Zip", &["11", "12"], 2).unwrap()),
        ])
        .unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("Zip"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attribute(0).name(), "Sex");
        assert_eq!(s.to_string(), "(Sex[h=1], Zip[h=2])");
    }

    #[test]
    fn rejects_duplicate_names() {
        let h = builders::suppression("A", &["x"]).unwrap();
        let err = Schema::new(vec![
            Attribute::new("A", h.clone()),
            Attribute::new("A", h),
        ])
        .unwrap_err();
        assert!(matches!(err, TableError::DuplicateAttribute(_)));
    }
}
