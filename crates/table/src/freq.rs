//! Frequency sets and the Rollup / Subset properties.
//!
//! A frequency set (§1.1 of the paper) maps each distinct combination of
//! quasi-identifier values to its tuple count — the result of
//! `SELECT COUNT(*) ... GROUP BY Q1, ..., Qn`. The Incognito algorithms
//! manipulate frequency sets three ways:
//!
//! * [`FrequencySet::scan`] computes one from the base table (a table scan);
//! * [`FrequencySet::rollup`] generalizes one to higher levels by summing
//!   counts along the dimension hierarchies (the **Rollup Property**, §3);
//! * [`FrequencySet::project`] drops attributes and re-sums (used by Cube
//!   Incognito's zero-generalization pre-computation, §3.3.2; its soundness
//!   is the **Subset Property**).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use incognito_hierarchy::{LevelNo, ValueId};

use crate::fxhash::FxHashMap;
use crate::schema::Schema;
use crate::table::Table;
use crate::TableError;

/// Maximum number of attributes in one group key. The paper's largest
/// quasi-identifier has 9 attributes; 16 leaves headroom while keeping keys
/// inline (no heap allocation per group).
pub const MAX_KEY_ATTRS: usize = 16;

/// A grouping specification: which attributes to group by, and at which
/// generalization level each is taken. This identifies one node of a
/// multi-attribute generalization graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    /// `(attribute index, level)` pairs, in key-component order.
    parts: Vec<(usize, LevelNo)>,
}

impl GroupSpec {
    /// Create a spec from `(attribute, level)` pairs. Attributes must be
    /// distinct and there may be at most [`MAX_KEY_ATTRS`] of them.
    pub fn new(parts: Vec<(usize, LevelNo)>) -> Result<Self, TableError> {
        if parts.len() > MAX_KEY_ATTRS {
            return Err(TableError::KeyTooWide(parts.len()));
        }
        for (i, &(a, _)) in parts.iter().enumerate() {
            if parts[..i].iter().any(|&(b, _)| a == b) {
                return Err(TableError::IncompatibleSpec(format!(
                    "attribute {a} appears twice in group spec"
                )));
            }
        }
        Ok(GroupSpec { parts })
    }

    /// Spec over `attrs`, all at ground level.
    pub fn ground(attrs: &[usize]) -> Result<Self, TableError> {
        Self::new(attrs.iter().map(|&a| (a, 0)).collect())
    }

    /// The `(attribute, level)` parts in key order.
    pub fn parts(&self) -> &[(usize, LevelNo)] {
        &self.parts
    }

    /// Number of grouped attributes.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if no attributes are grouped.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Check attribute indices and levels against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), TableError> {
        for &(a, l) in &self.parts {
            if a >= schema.arity() {
                return Err(TableError::AttributeOutOfRange { index: a, arity: schema.arity() });
            }
            let h = schema.hierarchy(a);
            if l > h.height() {
                return Err(TableError::LevelOutOfRange {
                    attribute: schema.attribute(a).name().to_string(),
                    level: l,
                    height: h.height(),
                });
            }
        }
        Ok(())
    }
}

/// An inline tuple of generalized value ids — one group of a frequency set.
#[derive(Debug, Clone, Copy)]
pub struct GroupKey {
    len: u8,
    vals: [ValueId; MAX_KEY_ATTRS],
}

impl Default for GroupKey {
    fn default() -> Self {
        GroupKey { len: 0, vals: [0; MAX_KEY_ATTRS] }
    }
}

impl GroupKey {
    /// Build a key from a slice of at most [`MAX_KEY_ATTRS`] ids.
    pub fn from_slice(ids: &[ValueId]) -> Self {
        assert!(ids.len() <= MAX_KEY_ATTRS, "group key too wide");
        let mut k = GroupKey::default();
        k.vals[..ids.len()].copy_from_slice(ids);
        k.len = ids.len() as u8;
        k
    }

    /// Append one component.
    ///
    /// # Panics
    /// Panics if the key is already [`MAX_KEY_ATTRS`] wide.
    #[inline]
    pub fn push(&mut self, id: ValueId) {
        assert!(
            (self.len as usize) < MAX_KEY_ATTRS,
            "GroupKey::push: key already holds MAX_KEY_ATTRS ({MAX_KEY_ATTRS}) components"
        );
        self.vals[self.len as usize] = id;
        self.len += 1;
    }

    /// Append one component, reporting overflow as [`TableError::KeyTooWide`]
    /// instead of panicking.
    #[inline]
    pub fn try_push(&mut self, id: ValueId) -> Result<(), TableError> {
        if (self.len as usize) >= MAX_KEY_ATTRS {
            return Err(TableError::KeyTooWide(self.len as usize + 1));
        }
        self.vals[self.len as usize] = id;
        self.len += 1;
        Ok(())
    }

    /// The key's components.
    #[inline]
    pub fn as_slice(&self) -> &[ValueId] {
        &self.vals[..self.len as usize]
    }
}

impl PartialEq for GroupKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash length + components as u64 words; cheaper than byte-slicing.
        state.write_u8(self.len);
        for &v in self.as_slice() {
            state.write_u32(v);
        }
    }
}

/// Upper bound on dense-accumulator slots: aggregate into a flat
/// `Vec<u64>` (512 KiB of counts) instead of a hash map whenever the key
/// space is at most this large. Chosen to stay comfortably inside L2 so
/// the dense kernel's random writes stay cheap.
const DENSE_MAX_SLOTS: u64 = 1 << 16;

/// Rows sampled from the head of a scan before sizing its hash map.
const SCAN_SAMPLE_ROWS: usize = 1024;

/// Mixed-radix layout over a key space with known per-position
/// cardinalities: packs a [`GroupKey`] into a single `u64` when the
/// product of cardinalities fits, and tells aggregation kernels when the
/// space is small enough for a flat dense accumulator.
struct KeySpace {
    /// Row-major strides: `strides[i]` = product of cardinalities of the
    /// positions after `i` (`strides.last() == 1`).
    strides: Vec<u64>,
    /// Total number of distinct packed keys, `None` when it overflows
    /// `u64` (packing impossible; callers fall back to hashed group keys).
    slots: Option<u64>,
}

impl KeySpace {
    /// Layout for per-position cardinalities `dims` (each ≥ 1).
    fn new(dims: &[u64]) -> KeySpace {
        let mut strides = vec![1u64; dims.len()];
        let mut slots: Option<u64> = Some(1);
        for i in (0..dims.len()).rev() {
            // A stride of 0 is unused: packing is disabled once overflowed.
            strides[i] = slots.unwrap_or(0);
            slots = slots.and_then(|s| s.checked_mul(dims[i]));
        }
        KeySpace { strides, slots }
    }

    /// Layout of the scan key space of `spec`: one dimension per part,
    /// sized by the attribute's domain at the grouped level.
    fn for_spec(schema: &Schema, spec: &GroupSpec) -> KeySpace {
        let dims: Vec<u64> =
            spec.parts.iter().map(|&(a, l)| schema.hierarchy(a).level_size(l) as u64).collect();
        KeySpace::new(&dims)
    }

    /// Whether the whole space fits a dense `Vec<u64>` accumulator.
    fn is_dense(&self) -> bool {
        self.slots.is_some_and(|s| s <= DENSE_MAX_SLOTS)
    }

    /// Whether keys pack into a single `u64`.
    fn is_packable(&self) -> bool {
        self.slots.is_some()
    }

    /// Number of dense slots.
    ///
    /// # Panics
    /// Panics if the space is not packable.
    fn len(&self) -> usize {
        self.slots.expect("dense key space") as usize
    }

    /// Invert [`GroupKey`] packing: decode a packed index back into a key.
    fn unpack(&self, mut idx: u64) -> GroupKey {
        let mut key = GroupKey::default();
        for &stride in &self.strides {
            let v = idx / stride;
            idx -= v * stride;
            key.push(v as ValueId);
        }
        key
    }

    /// Convert a dense accumulator into the hash-map representation,
    /// sized exactly to the occupied slots.
    fn gather(&self, dense: &[u64]) -> FxHashMap<GroupKey, u64> {
        let occupied = dense.iter().filter(|&&c| c != 0).count();
        let mut out: FxHashMap<GroupKey, u64> =
            FxHashMap::with_capacity_and_hasher(occupied, Default::default());
        for (idx, &c) in dense.iter().enumerate() {
            if c != 0 {
                out.insert(self.unpack(idx as u64), c);
            }
        }
        out
    }
}

/// Estimate the number of distinct groups in `nrows` rows given that the
/// first `sample` rows held `seen` distinct groups. When the sample is
/// already saturated (few distinct values) the group count has plateaued,
/// so a small headroom factor suffices; otherwise extrapolate linearly.
/// Only a sizing hint — correctness never depends on it.
fn estimate_groups(nrows: usize, seen: usize, sample: usize) -> usize {
    if sample == 0 || seen == 0 {
        return 0;
    }
    let est = if seen * 4 <= sample { seen * 2 } else { seen * (nrows / sample).max(1) };
    est.min(nrows)
}

/// Estimated heap footprint of a group-count map: capacity × bucket size
/// plus one control byte per slot (SwissTable layout). An estimate — the
/// point is comparability across kernel tiers and cache snapshots, not
/// byte-exact accounting (the tracking allocator owns that).
fn map_resident_bytes(counts: &FxHashMap<GroupKey, u64>) -> u64 {
    counts.capacity() as u64 * (std::mem::size_of::<(GroupKey, u64)>() as u64 + 1)
}

/// The frequency set of a table with respect to a [`GroupSpec`].
#[derive(Debug, Clone)]
pub struct FrequencySet {
    spec: GroupSpec,
    counts: FxHashMap<GroupKey, u64>,
    total: u64,
}

impl FrequencySet {
    /// Compute by scanning `table` (the spec must already be validated).
    pub(crate) fn scan(table: &Table, spec: &GroupSpec) -> FrequencySet {
        let _span = incognito_obs::span("table.scan.time");
        let mut tspan = incognito_obs::trace::span("table.scan")
            .arg("rows", table.num_rows() as u64);
        incognito_obs::incr("table.scan.count");
        incognito_obs::add("table.scan.rows", table.num_rows() as u64);
        let schema = table.schema();
        let maps: Vec<&[ValueId]> = spec
            .parts
            .iter()
            .map(|&(a, l)| schema.hierarchy(a).map_to_level(l))
            .collect();
        let cols: Vec<&[ValueId]> = spec.parts.iter().map(|&(a, _)| table.column(a)).collect();
        let nrows = table.num_rows();
        let space = KeySpace::for_spec(schema, spec);
        let counts = Self::scan_rows(&cols, &maps, 0..nrows, &space);
        tspan.set_arg("groups", counts.len() as u64);
        FrequencySet { spec: spec.clone(), counts, total: nrows as u64 }
    }

    /// Aggregate one contiguous row range into a group-count map, choosing
    /// the cheapest kernel the key space allows: a flat dense array, a
    /// packed-`u64` hash map, or hashed [`GroupKey`]s. All three produce
    /// identical counts; hashed kernels pre-size themselves from a sampled
    /// group-count estimate instead of growing through rehash storms.
    fn scan_rows(
        cols: &[&[ValueId]],
        maps: &[&[ValueId]],
        rows: std::ops::Range<usize>,
        space: &KeySpace,
    ) -> FxHashMap<GroupKey, u64> {
        let nrows = rows.len();
        if space.is_packable() {
            let pack = |row: usize| -> u64 {
                let mut idx = 0u64;
                for ((col, map), &stride) in cols.iter().zip(maps).zip(&space.strides) {
                    idx += map[col[row] as usize] as u64 * stride;
                }
                idx
            };
            if space.is_dense() {
                incognito_obs::incr("table.scan.dense");
                incognito_obs::add("table.kernel.dense.slot_bytes", space.len() as u64 * 8);
                let mut dense = vec![0u64; space.len()];
                for row in rows {
                    dense[pack(row) as usize] += 1;
                }
                let counts = space.gather(&dense);
                incognito_obs::add("table.kernel.dense.groups", counts.len() as u64);
                incognito_obs::add("table.kernel.dense.bytes", map_resident_bytes(&counts));
                return counts;
            }
            incognito_obs::incr("table.scan.packed");
            let mut packed: FxHashMap<u64, u64> = FxHashMap::default();
            let sample = nrows.min(SCAN_SAMPLE_ROWS);
            for row in rows.start..rows.start + sample {
                *packed.entry(pack(row)).or_insert(0) += 1;
            }
            packed
                .reserve(estimate_groups(nrows, packed.len(), sample).saturating_sub(packed.len()));
            for row in rows.start + sample..rows.end {
                *packed.entry(pack(row)).or_insert(0) += 1;
            }
            let mut counts: FxHashMap<GroupKey, u64> =
                FxHashMap::with_capacity_and_hasher(packed.len(), Default::default());
            counts.extend(packed.into_iter().map(|(idx, c)| (space.unpack(idx), c)));
            incognito_obs::add("table.kernel.packed.groups", counts.len() as u64);
            incognito_obs::add("table.kernel.packed.bytes", map_resident_bytes(&counts));
            return counts;
        }
        let key_of = |row: usize| -> GroupKey {
            let mut key = GroupKey::default();
            for (col, map) in cols.iter().zip(maps) {
                key.push(map[col[row] as usize]);
            }
            key
        };
        let mut counts: FxHashMap<GroupKey, u64> = FxHashMap::default();
        let sample = nrows.min(SCAN_SAMPLE_ROWS);
        for row in rows.start..rows.start + sample {
            *counts.entry(key_of(row)).or_insert(0) += 1;
        }
        counts.reserve(estimate_groups(nrows, counts.len(), sample).saturating_sub(counts.len()));
        for row in rows.start + sample..rows.end {
            *counts.entry(key_of(row)).or_insert(0) += 1;
        }
        incognito_obs::add("table.kernel.hash.groups", counts.len() as u64);
        incognito_obs::add("table.kernel.hash.bytes", map_resident_bytes(&counts));
        counts
    }

    /// Compute by scanning `table` with `threads` worker threads: rows are
    /// sharded, each worker builds a local frequency map, and the shards
    /// are merged. Exactly equivalent to [`FrequencySet::scan`] (counts are
    /// associative); worthwhile once the table is large enough that the
    /// scan dominates the merge (hundreds of thousands of rows).
    pub(crate) fn scan_parallel(table: &Table, spec: &GroupSpec, threads: usize) -> FrequencySet {
        let nrows = table.num_rows();
        let threads = threads.clamp(1, nrows.max(1));
        if threads == 1 || nrows < 2 * threads {
            return FrequencySet::scan(table, spec);
        }
        let _span = incognito_obs::span("table.scan.time");
        let mut tspan = incognito_obs::trace::span("table.scan")
            .arg("rows", nrows as u64)
            .arg("threads", threads as u64);
        incognito_obs::incr("table.scan.count");
        incognito_obs::incr("table.scan.parallel");
        incognito_obs::add("table.scan.rows", nrows as u64);
        let schema = table.schema();
        let maps: Vec<&[ValueId]> = spec
            .parts
            .iter()
            .map(|&(a, l)| schema.hierarchy(a).map_to_level(l))
            .collect();
        let cols: Vec<&[ValueId]> = spec.parts.iter().map(|&(a, _)| table.column(a)).collect();

        let chunk = nrows.div_ceil(threads);
        let space = KeySpace::for_spec(schema, spec);
        let mut shards: Vec<FxHashMap<GroupKey, u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let maps = &maps;
                    let cols = &cols;
                    let space = &space;
                    scope.spawn(move || {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(nrows);
                        Self::scan_rows(cols, maps, lo..hi, space)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
        });

        // Merge into the largest shard to minimize rehashing, reserving
        // for the worst case (all groups distinct across shards) up front.
        let biggest = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        let mut counts = shards.swap_remove(biggest);
        counts.reserve(shards.iter().map(|s| s.len()).sum());
        for shard in shards {
            for (k, c) in shard {
                *counts.entry(k).or_insert(0) += c;
            }
        }
        tspan.set_arg("groups", counts.len() as u64);
        FrequencySet { spec: spec.clone(), counts, total: nrows as u64 }
    }

    /// Assemble a frequency set from raw parts (used by the out-of-core
    /// pipeline when upgrading to the in-memory representation).
    pub(crate) fn from_parts(
        spec: GroupSpec,
        counts: FxHashMap<GroupKey, u64>,
        total: u64,
    ) -> FrequencySet {
        FrequencySet { spec, counts, total }
    }

    /// The grouping spec this frequency set was computed under.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Number of distinct value groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// Estimated heap bytes held by this frequency set (see
    /// [`map_resident_bytes`]) — what the core engine's cache-occupancy
    /// gauges account when this set is cached or materialized.
    pub fn resident_bytes(&self) -> u64 {
        map_resident_bytes(&self.counts)
    }

    /// Total tuple count (size of the underlying multiset).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for `key` (0 if absent).
    pub fn count(&self, key: &GroupKey) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Smallest group count, or `None` for an empty table.
    pub fn min_count(&self) -> Option<u64> {
        self.counts.values().copied().min()
    }

    /// Iterate `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, u64)> + '_ {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// K-Anonymity Property (§1.1): every count ≥ k. Vacuously true for an
    /// empty relation.
    pub fn is_k_anonymous(&self, k: u64) -> bool {
        self.counts.values().all(|&c| c >= k)
    }

    /// Total number of tuples lying in groups smaller than `k` — the tuples
    /// that would have to be suppressed to make the relation k-anonymous.
    pub fn tuples_below(&self, k: u64) -> u64 {
        self.counts.values().filter(|&&c| c < k).sum()
    }

    /// K-anonymity with the tuple-suppression extension of §2.1: the
    /// relation passes if at most `max_suppress` outlier tuples (those in
    /// groups of size < k) would need to be removed.
    pub fn is_k_anonymous_with_suppression(&self, k: u64, max_suppress: u64) -> bool {
        self.tuples_below(k) <= max_suppress
    }

    /// **Rollup Property** (§3): produce the frequency set at higher levels
    /// `target` (one level per spec part, each ≥ the current level) by
    /// mapping each group through γ and summing counts — no table scan.
    pub fn rollup(&self, schema: &Schema, target: &[LevelNo]) -> Result<FrequencySet, TableError> {
        let _span = incognito_obs::span("table.rollup.time");
        let mut tspan = incognito_obs::trace::span("table.rollup")
            .arg("groups_in", self.counts.len() as u64);
        if target.len() != self.spec.len() {
            return Err(TableError::IncompatibleSpec(format!(
                "rollup target has {} levels, spec has {}",
                target.len(),
                self.spec.len()
            )));
        }
        let mut maps: Vec<&[ValueId]> = Vec::with_capacity(target.len());
        for (&(a, from), &to) in self.spec.parts.iter().zip(target) {
            let h = schema.hierarchy(a);
            if to < from {
                return Err(TableError::IncompatibleSpec(format!(
                    "cannot roll attribute {a} down from level {from} to {to}"
                )));
            }
            // Memoized at hierarchy construction — an O(1) borrow per part.
            let m = h.between_map(from, to).map_err(|_| TableError::LevelOutOfRange {
                attribute: schema.attribute(a).name().to_string(),
                level: to,
                height: h.height(),
            })?;
            maps.push(m);
        }
        let dims: Vec<u64> = self
            .spec
            .parts
            .iter()
            .zip(target)
            .map(|(&(a, _), &to)| schema.hierarchy(a).level_size(to) as u64)
            .collect();
        let space = KeySpace::new(&dims);
        let counts = if space.is_dense() {
            incognito_obs::incr("table.rollup.dense");
            incognito_obs::add("table.kernel.dense.slot_bytes", space.len() as u64 * 8);
            let mut dense = vec![0u64; space.len()];
            for (key, &c) in &self.counts {
                let mut idx = 0u64;
                for ((&v, map), &stride) in key.as_slice().iter().zip(&maps).zip(&space.strides) {
                    idx += map[v as usize] as u64 * stride;
                }
                dense[idx as usize] += c;
            }
            space.gather(&dense)
        } else {
            // Output groups never outnumber input groups (γ only merges).
            let mut counts: FxHashMap<GroupKey, u64> =
                FxHashMap::with_capacity_and_hasher(self.counts.len(), Default::default());
            for (key, &c) in &self.counts {
                let mut out = GroupKey::default();
                for (&v, map) in key.as_slice().iter().zip(&maps) {
                    out.push(map[v as usize]);
                }
                *counts.entry(out).or_insert(0) += c;
            }
            counts
        };
        let spec = GroupSpec::new(
            self.spec
                .parts
                .iter()
                .zip(target)
                .map(|(&(a, _), &l)| (a, l))
                .collect(),
        )?;
        incognito_obs::incr("table.rollup.count");
        incognito_obs::add("table.rollup.groups_in", self.counts.len() as u64);
        incognito_obs::add("table.rollup.groups_out", counts.len() as u64);
        tspan.set_arg("groups_out", counts.len() as u64);
        Ok(FrequencySet { spec, counts, total: self.total })
    }

    /// **Subset Property** (§3): project onto the spec positions in `keep`
    /// (strictly increasing), dropping the other attributes and re-summing.
    /// Used by Cube Incognito to derive subset frequency sets from wider
    /// ones, data-cube style.
    pub fn project(&self, keep: &[usize]) -> Result<FrequencySet, TableError> {
        let _span = incognito_obs::span("table.project.time");
        let mut tspan = incognito_obs::trace::span("table.project")
            .arg("groups_in", self.counts.len() as u64);
        let mut prev: Option<usize> = None;
        for &p in keep {
            if p >= self.spec.len() || prev.is_some_and(|q| q >= p) {
                return Err(TableError::IncompatibleSpec(format!(
                    "projection positions must be strictly increasing and < {}",
                    self.spec.len()
                )));
            }
            prev = Some(p);
        }
        // `project` has no schema in scope, so derive the kept positions'
        // cardinalities from the data: one cheap hash-free max pass.
        let mut dims = vec![0u64; keep.len()];
        for key in self.counts.keys() {
            let slice = key.as_slice();
            for (d, &p) in dims.iter_mut().zip(keep) {
                *d = (*d).max(slice[p] as u64);
            }
        }
        for d in &mut dims {
            *d += 1;
        }
        let space = KeySpace::new(&dims);
        let counts = if space.is_dense() {
            incognito_obs::incr("table.project.dense");
            incognito_obs::add("table.kernel.dense.slot_bytes", space.len() as u64 * 8);
            let mut dense = vec![0u64; space.len()];
            for (key, &c) in &self.counts {
                let slice = key.as_slice();
                let mut idx = 0u64;
                for (&p, &stride) in keep.iter().zip(&space.strides) {
                    idx += slice[p] as u64 * stride;
                }
                dense[idx as usize] += c;
            }
            space.gather(&dense)
        } else {
            let mut counts: FxHashMap<GroupKey, u64> =
                FxHashMap::with_capacity_and_hasher(self.counts.len(), Default::default());
            for (key, &c) in &self.counts {
                let slice = key.as_slice();
                let mut out = GroupKey::default();
                for &p in keep {
                    out.push(slice[p]);
                }
                *counts.entry(out).or_insert(0) += c;
            }
            counts
        };
        let spec = GroupSpec::new(keep.iter().map(|&p| self.spec.parts[p]).collect())?;
        incognito_obs::incr("table.project.count");
        incognito_obs::add("table.project.groups_in", self.counts.len() as u64);
        incognito_obs::add("table.project.groups_out", counts.len() as u64);
        tspan.set_arg("groups_out", counts.len() as u64);
        Ok(FrequencySet { spec, counts, total: self.total })
    }

    /// Render the groups as label tuples (for display and tests), sorted
    /// lexicographically for determinism.
    pub fn to_labeled_rows(&self, schema: &Arc<Schema>) -> Vec<(Vec<String>, u64)> {
        let mut rows: Vec<(Vec<String>, u64)> = self
            .counts
            .iter()
            .map(|(key, &c)| {
                let labels = key
                    .as_slice()
                    .iter()
                    .zip(&self.spec.parts)
                    .map(|(&v, &(a, l))| schema.hierarchy(a).label(l, v).to_string())
                    .collect();
                (labels, c)
            })
            .collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use incognito_hierarchy::builders;

    fn patients() -> Table {
        // Figure 1's Patients table over ⟨Birthdate, Sex, Zipcode⟩.
        let schema = Schema::new(vec![
            Attribute::new(
                "Birthdate",
                builders::suppression("Birthdate", &["1/21/76", "4/13/86", "2/28/76"]).unwrap(),
            ),
            Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
            Attribute::new(
                "Zipcode",
                builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                    .unwrap(),
            ),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for row in [
            ["1/21/76", "Male", "53715"],
            ["4/13/86", "Female", "53715"],
            ["2/28/76", "Male", "53703"],
            ["1/21/76", "Male", "53703"],
            ["4/13/86", "Female", "53706"],
            ["2/28/76", "Female", "53706"],
        ] {
            t.push_row(&row).unwrap();
        }
        t
    }

    #[test]
    fn spec_validation() {
        assert!(GroupSpec::new(vec![(0, 0), (0, 1)]).is_err()); // dup attr
        assert!(GroupSpec::new((0..17).map(|a| (a, 0)).collect()).is_err()); // too wide
        let t = patients();
        let bad_attr = GroupSpec::new(vec![(7, 0)]).unwrap();
        assert!(bad_attr.validate(t.schema()).is_err());
        let bad_level = GroupSpec::new(vec![(1, 3)]).unwrap();
        assert!(bad_level.validate(t.schema()).is_err());
    }

    #[test]
    fn group_key_semantics() {
        let a = GroupKey::from_slice(&[1, 2, 3]);
        let b = GroupKey::from_slice(&[1, 2, 3]);
        let c = GroupKey::from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        let mut d = GroupKey::default();
        d.push(1);
        d.push(2);
        assert_eq!(c, d);
    }

    #[test]
    #[should_panic(expected = "MAX_KEY_ATTRS")]
    fn group_key_push_panics_past_max_width() {
        let mut k = GroupKey::from_slice(&[0; MAX_KEY_ATTRS]);
        k.push(1);
    }

    #[test]
    fn group_key_try_push_reports_overflow() {
        let mut k = GroupKey::default();
        for i in 0..MAX_KEY_ATTRS as u32 {
            assert!(k.try_push(i).is_ok());
        }
        assert!(matches!(k.try_push(99), Err(TableError::KeyTooWide(_))));
        // The failed push must not have corrupted the key.
        assert_eq!(k.as_slice().len(), MAX_KEY_ATTRS);
        assert_eq!(k.as_slice()[MAX_KEY_ATTRS - 1], MAX_KEY_ATTRS as u32 - 1);
    }

    #[test]
    fn key_space_pack_roundtrip() {
        let space = KeySpace::new(&[3, 5, 2]);
        assert!(space.is_dense());
        assert_eq!(space.len(), 30);
        for idx in 0..30u64 {
            let key = space.unpack(idx);
            let mut back = 0u64;
            for (&v, &s) in key.as_slice().iter().zip(&space.strides) {
                back += v as u64 * s;
            }
            assert_eq!(back, idx);
            assert!(key.as_slice().iter().zip([3u32, 5, 2]).all(|(&v, d)| v < d));
        }
    }

    #[test]
    fn key_space_overflow_disables_packing() {
        // 5 dims of 2^13 = 2^65 > u64::MAX: no packing, no dense kernel.
        let space = KeySpace::new(&[1 << 13; 5]);
        assert!(!space.is_packable());
        assert!(!space.is_dense());
        // Just over the dense cutoff: packable but not dense.
        let space = KeySpace::new(&[DENSE_MAX_SLOTS + 1]);
        assert!(space.is_packable());
        assert!(!space.is_dense());
        // Empty key space (projection onto nothing): one slot.
        let space = KeySpace::new(&[]);
        assert!(space.is_dense());
        assert_eq!(space.len(), 1);
        assert_eq!(space.unpack(0), GroupKey::default());
    }

    /// Run `spec` over `t` through every kernel tier the key space can
    /// express — the real tier, plus the packed and hash tiers forced by
    /// forging the space's `slots` — and check each against a brute-force
    /// count. Returns the number of distinct groups.
    fn assert_tiers_agree(t: &Table, spec: &GroupSpec) -> usize {
        let schema = t.schema();
        let maps: Vec<&[ValueId]> =
            spec.parts.iter().map(|&(a, l)| schema.hierarchy(a).map_to_level(l)).collect();
        let cols: Vec<&[ValueId]> = spec.parts.iter().map(|&(a, _)| t.column(a)).collect();
        let space = KeySpace::for_spec(schema, spec);
        let nrows = t.num_rows();
        let mut expected: FxHashMap<GroupKey, u64> = FxHashMap::default();
        for row in 0..nrows {
            let mut k = GroupKey::default();
            for (col, map) in cols.iter().zip(&maps) {
                k.push(map[col[row] as usize]);
            }
            *expected.entry(k).or_insert(0) += 1;
        }
        if space.is_dense() {
            let got = FrequencySet::scan_rows(&cols, &maps, 0..nrows, &space);
            assert_eq!(got, expected, "dense kernel diverged");
        }
        if space.is_packable() {
            // Oversized slot count: still packable, never dense.
            let forced =
                KeySpace { strides: space.strides.clone(), slots: Some(DENSE_MAX_SLOTS + 1) };
            let got = FrequencySet::scan_rows(&cols, &maps, 0..nrows, &forced);
            assert_eq!(got, expected, "packed kernel diverged");
        }
        let hash_space = KeySpace { strides: space.strides.clone(), slots: None };
        let got = FrequencySet::scan_rows(&cols, &maps, 0..nrows, &hash_space);
        assert_eq!(got, expected, "hash kernel diverged");
        // The public path picks whichever tier the real space selects.
        let via_table = t.frequency_set(spec).unwrap();
        assert_eq!(via_table.num_groups(), expected.len());
        for (k, &c) in &expected {
            assert_eq!(via_table.count(k), c);
        }
        expected.len()
    }

    #[test]
    fn key_space_dense_boundary_is_exact() {
        let at = KeySpace::new(&[DENSE_MAX_SLOTS]);
        assert!(at.is_dense());
        assert_eq!(at.len() as u64, 1 << 16);
        let past = KeySpace::new(&[DENSE_MAX_SLOTS + 1]);
        assert!(past.is_packable() && !past.is_dense());
        // Mixed-radix shapes hit the same boundary: 256 × 256 is the
        // widest dense space, 256 × 257 already is not.
        assert!(KeySpace::new(&[256, 256]).is_dense());
        assert!(!KeySpace::new(&[256, 257]).is_dense());
    }

    #[test]
    fn kernel_tiers_agree_on_the_exact_boundary_space() {
        // 256 × 256 = exactly 1 << 16 slots: the widest key space the
        // dense kernel accepts.
        let labels: Vec<String> = (0..256).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let schema = Schema::new(vec![
            Attribute::new("a", builders::suppression("a", &label_refs).unwrap()),
            Attribute::new("b", builders::suppression("b", &label_refs).unwrap()),
        ])
        .unwrap();
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for i in 0..4_000u32 {
            cols[0].push((i * 31) % 256);
            cols[1].push((i * 17 + i / 9) % 256);
        }
        let t = Table::from_columns(schema, cols).unwrap();
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let space = KeySpace::for_spec(t.schema(), &spec);
        assert_eq!(space.slots, Some(DENSE_MAX_SLOTS));
        assert!(space.is_dense());
        assert!(assert_tiers_agree(&t, &spec) > 1_000);
    }

    #[test]
    fn packed_tier_takes_over_one_slot_past_the_dense_cutoff() {
        // A single attribute with 2^16 + 1 ground values: the smallest
        // key space the dense kernel rejects, by exactly one slot.
        let labels: Vec<String> = (0..=DENSE_MAX_SLOTS).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let schema = Schema::new(vec![Attribute::new(
            "a",
            builders::suppression("a", &label_refs).unwrap(),
        )])
        .unwrap();
        let col: Vec<u32> =
            (0..3_000u32).map(|i| (i * 97) % (DENSE_MAX_SLOTS as u32 + 1)).collect();
        let t = Table::from_columns(schema, vec![col]).unwrap();
        let spec = GroupSpec::ground(&[0]).unwrap();
        let space = KeySpace::for_spec(t.schema(), &spec);
        assert_eq!(space.slots, Some(DENSE_MAX_SLOTS + 1));
        assert!(space.is_packable() && !space.is_dense());
        assert_tiers_agree(&t, &spec);
    }

    #[test]
    fn max_width_keys_agree_across_tiers_and_wider_specs_error() {
        // 16 binary attributes: a full-width GroupKey and exactly 2^16
        // slots — the dense boundary reached at MAX_KEY_ATTRS.
        let schema = Schema::new(
            (0..MAX_KEY_ATTRS)
                .map(|i| {
                    let name = format!("a{i}");
                    Attribute::new(&name, builders::suppression(&name, &["0", "1"]).unwrap())
                })
                .collect(),
        )
        .unwrap();
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(); MAX_KEY_ATTRS];
        for i in 0..2_000u32 {
            for (j, col) in cols.iter_mut().enumerate() {
                col.push((i >> (j % 11)) & 1);
            }
        }
        let t = Table::from_columns(schema, cols).unwrap();
        let spec = GroupSpec::ground(&(0..MAX_KEY_ATTRS).collect::<Vec<_>>()).unwrap();
        let space = KeySpace::for_spec(t.schema(), &spec);
        assert_eq!(space.slots, Some(DENSE_MAX_SLOTS));
        assert_tiers_agree(&t, &spec);
        // One more attribute cannot form a group key at all: the same
        // overflow GroupKey::try_push reports, surfaced as KeyTooWide.
        assert!(matches!(
            GroupSpec::new((0..=MAX_KEY_ATTRS).map(|a| (a, 0)).collect()),
            Err(TableError::KeyTooWide(_))
        ));
    }

    #[test]
    fn group_estimate_is_sane() {
        assert_eq!(estimate_groups(10_000, 0, 0), 0); // empty sample
        assert_eq!(estimate_groups(10_000, 0, 100), 0);
        // Saturated sample: 10 groups in 1024 rows → plateau, small headroom.
        assert_eq!(estimate_groups(100_000, 10, 1024), 20);
        // Every sampled row distinct → extrapolate linearly, capped at rows.
        assert_eq!(estimate_groups(10_000, 1_000, 1_000), 10_000);
        assert!(estimate_groups(2_000, 1_024, 1_024) <= 2_000);
    }

    #[test]
    fn packed_scan_equals_dense_scan() {
        // A domain big enough (300^2 = 90,000 slots) to force the
        // packed-u64 hash kernel rather than the dense kernel, compared
        // against a 2-attribute projection of itself and a direct scan.
        let labels: Vec<String> = (0..300).map(|i| format!("v{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let schema = Schema::new(vec![
            Attribute::new("a", builders::suppression("a", &label_refs).unwrap()),
            Attribute::new("b", builders::suppression("b", &label_refs).unwrap()),
        ])
        .unwrap();
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for i in 0..5_000u32 {
            cols[0].push((i * 7) % 300);
            cols[1].push((i * 13) % 300);
        }
        let t = Table::from_columns(schema.clone(), cols).unwrap();
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let wide = t.frequency_set(&spec).unwrap(); // packed kernel
        assert_eq!(wide.total(), 5_000);
        // Suppressing both attributes lands in the dense kernel; totals and
        // group structure must agree with a rollup of the packed result.
        let spec_top = GroupSpec::new(vec![(0, 1), (1, 1)]).unwrap();
        let scanned_top = t.frequency_set(&spec_top).unwrap();
        let rolled_top = wide.rollup(&schema, &[1, 1]).unwrap();
        assert_eq!(
            scanned_top.to_labeled_rows(&schema),
            rolled_top.to_labeled_rows(&schema)
        );
        // Single-attribute projection (dense) vs narrow scan.
        let proj = wide.project(&[0]).unwrap();
        let narrow = t.frequency_set(&GroupSpec::ground(&[0]).unwrap()).unwrap();
        assert_eq!(proj.to_labeled_rows(&schema), narrow.to_labeled_rows(&schema));
    }

    #[test]
    fn scan_counts_match_sql_example() {
        // §1.1: GROUP BY Sex, Zipcode on Patients has groups with count < 2.
        let t = patients();
        let f = t.frequency_set(&GroupSpec::ground(&[1, 2]).unwrap()).unwrap();
        assert_eq!(f.total(), 6);
        assert_eq!(f.num_groups(), 4); // (M,53715) (F,53715) (M,53703) (F,53706)
        assert_eq!(f.min_count(), Some(1));
        assert!(!f.is_k_anonymous(2));
        assert_eq!(f.tuples_below(2), 2);
        assert!(f.is_k_anonymous_with_suppression(2, 2));
        assert!(!f.is_k_anonymous_with_suppression(2, 1));
    }

    #[test]
    fn parallel_scan_equals_serial() {
        // Build a larger table by repeating the Patients rows with varying
        // combinations so shard boundaries fall mid-group.
        let base = patients();
        let schema = base.schema().clone();
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(); schema.arity()];
        for i in 0..1_000u32 {
            cols[0].push(i % 3);
            cols[1].push(i % 2);
            cols[2].push((i * 7) % 4);
        }
        let t = Table::from_columns(schema.clone(), cols).unwrap();
        for spec in [
            GroupSpec::ground(&[0, 1, 2]).unwrap(),
            GroupSpec::new(vec![(1, 1), (2, 1)]).unwrap(),
        ] {
            let serial = t.frequency_set(&spec).unwrap();
            for threads in [1usize, 2, 3, 8, 1000, 5000] {
                let par = t.frequency_set_parallel(&spec, threads).unwrap();
                assert_eq!(
                    par.to_labeled_rows(&schema),
                    serial.to_labeled_rows(&schema),
                    "threads={threads}"
                );
                assert_eq!(par.total(), serial.total());
            }
        }
        // Degenerate inputs.
        let empty = Table::empty(schema);
        let f = empty
            .frequency_set_parallel(&GroupSpec::ground(&[0]).unwrap(), 4)
            .unwrap();
        assert_eq!(f.num_groups(), 0);
    }

    #[test]
    fn rollup_equals_rescan() {
        let t = patients();
        let schema = t.schema().clone();
        let ground = t.frequency_set(&GroupSpec::ground(&[1, 2]).unwrap()).unwrap();
        // Roll up Zipcode to Z1, then compare against a fresh scan at (S0, Z1).
        let rolled = ground.rollup(&schema, &[0, 1]).unwrap();
        let scanned = t
            .frequency_set(&GroupSpec::new(vec![(1, 0), (2, 1)]).unwrap())
            .unwrap();
        assert_eq!(rolled.to_labeled_rows(&schema), scanned.to_labeled_rows(&schema));
        // Example 3.1: Patients IS 2-anonymous w.r.t. ⟨S1, Z0⟩ ...
        let s1z0 = ground.rollup(&schema, &[1, 0]).unwrap();
        assert!(s1z0.is_k_anonymous(2));
        // ... and not w.r.t. ⟨S0, Z1⟩, but IS w.r.t. ⟨S0, Z2⟩.
        let s0z1 = ground.rollup(&schema, &[0, 1]).unwrap();
        assert!(!s0z1.is_k_anonymous(2));
        let s0z2 = ground.rollup(&schema, &[0, 2]).unwrap();
        assert!(s0z2.is_k_anonymous(2));
    }

    #[test]
    fn rollup_is_transitive() {
        let t = patients();
        let schema = t.schema().clone();
        let ground = t.frequency_set(&GroupSpec::ground(&[1, 2]).unwrap()).unwrap();
        let via_mid = ground.rollup(&schema, &[0, 1]).unwrap().rollup(&schema, &[1, 2]).unwrap();
        let direct = ground.rollup(&schema, &[1, 2]).unwrap();
        assert_eq!(via_mid.to_labeled_rows(&schema), direct.to_labeled_rows(&schema));
        assert_eq!(via_mid.total(), 6);
    }

    #[test]
    fn rollup_rejects_bad_targets() {
        let t = patients();
        let schema = t.schema().clone();
        let f = t.frequency_set(&GroupSpec::new(vec![(1, 1), (2, 1)]).unwrap()).unwrap();
        assert!(f.rollup(&schema, &[0, 1]).is_err()); // downward
        assert!(f.rollup(&schema, &[1]).is_err()); // wrong arity
        assert!(f.rollup(&schema, &[1, 9]).is_err()); // above height
    }

    #[test]
    fn project_equals_narrow_scan() {
        let t = patients();
        let schema = t.schema().clone();
        let wide = t.frequency_set(&GroupSpec::ground(&[0, 1, 2]).unwrap()).unwrap();
        let proj = wide.project(&[1]).unwrap();
        let scan = t.frequency_set(&GroupSpec::ground(&[1]).unwrap()).unwrap();
        assert_eq!(proj.to_labeled_rows(&schema), scan.to_labeled_rows(&schema));
        assert_eq!(proj.total(), 6);
        // Subset Property direction: ⟨Sex⟩ is 3-anonymous here even though
        // the full QI is not.
        assert!(proj.is_k_anonymous(3));
        assert!(!wide.is_k_anonymous(2));
    }

    #[test]
    fn project_validates_positions() {
        let t = patients();
        let wide = t.frequency_set(&GroupSpec::ground(&[0, 1, 2]).unwrap()).unwrap();
        assert!(wide.project(&[1, 1]).is_err());
        assert!(wide.project(&[2, 1]).is_err());
        assert!(wide.project(&[3]).is_err());
        assert!(wide.project(&[]).is_ok()); // empty projection: one group, total count
        let empty = wide.project(&[]).unwrap();
        assert_eq!(empty.num_groups(), 1);
        assert_eq!(empty.iter().next().unwrap().1, 6);
    }
}
