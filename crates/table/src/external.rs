//! Out-of-core frequency sets — the paper's §7 scalability future work:
//! *"It is also important to perform a more extensive evaluation of the
//! scalability of Incognito and previous algorithms in the case where the
//! original database or the intermediate frequency tables do not fit in
//! main memory."*
//!
//! [`ExternalFrequencySet`] computes a frequency set with bounded memory:
//! the scan hash-partitions group keys to disk (Grace-hash style), and
//! every query — the k-anonymity predicate, group counts, suppression
//! tallies — streams one partition at a time, so peak memory is the
//! largest partition's distinct-group footprint rather than the whole
//! frequency set. `into_frequency_set` upgrades to the in-memory
//! representation when it does fit.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use incognito_hierarchy::ValueId;

use crate::freq::{GroupKey, GroupSpec};
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::table::Table;
use crate::{FrequencySet, TableError};

/// Errors specific to the spilling pipeline.
#[derive(Debug)]
pub enum ExternalError {
    /// Underlying table/spec failure.
    Table(TableError),
    /// Spill-file IO failure.
    Io(std::io::Error),
    /// A spill file was truncated or corrupted.
    Corrupt {
        /// The offending partition file.
        partition: PathBuf,
    },
}

impl std::fmt::Display for ExternalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExternalError::Table(e) => write!(f, "table error: {e}"),
            ExternalError::Io(e) => write!(f, "spill io error: {e}"),
            ExternalError::Corrupt { partition } => {
                write!(f, "corrupt spill partition {}", partition.display())
            }
        }
    }
}

impl std::error::Error for ExternalError {}

impl From<TableError> for ExternalError {
    fn from(e: TableError) -> Self {
        ExternalError::Table(e)
    }
}

impl From<std::io::Error> for ExternalError {
    fn from(e: std::io::Error) -> Self {
        ExternalError::Io(e)
    }
}

/// A frequency set whose groups live in disk partitions.
pub struct ExternalFrequencySet {
    spec: GroupSpec,
    partitions: Vec<PathBuf>,
    arity: usize,
    total: u64,
    /// Owned spill directory, removed on drop.
    dir: PathBuf,
}

impl ExternalFrequencySet {
    /// Compute the frequency set of `table` w.r.t. `spec`, spilling keys
    /// into `num_partitions` files under a fresh subdirectory of
    /// `spill_root`.
    pub fn build(
        table: &Table,
        spec: &GroupSpec,
        num_partitions: usize,
        spill_root: &Path,
    ) -> Result<ExternalFrequencySet, ExternalError> {
        spec.validate(table.schema())?;
        let num_partitions = num_partitions.clamp(1, 4096);
        let dir = spill_root.join(format!(
            "incognito-spill-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)?;

        let schema = table.schema();
        let maps: Vec<&[ValueId]> = spec
            .parts()
            .iter()
            .map(|&(a, l)| schema.hierarchy(a).map_to_level(l))
            .collect();
        let cols: Vec<&[ValueId]> = spec.parts().iter().map(|&(a, _)| table.column(a)).collect();
        let arity = spec.len();

        let partitions: Vec<PathBuf> =
            (0..num_partitions).map(|p| dir.join(format!("part-{p}.bin"))).collect();
        let mut writers: Vec<BufWriter<File>> = partitions
            .iter()
            .map(|p| {
                OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .write(true)
                    .open(p)
                    .map(BufWriter::new)
            })
            .collect::<Result<_, _>>()?;

        use std::hash::BuildHasher;
        let hasher = FxBuildHasher::default();
        let nrows = table.num_rows();
        let mut buf = Vec::with_capacity(arity * 4);
        for row in 0..nrows {
            let mut key = GroupKey::default();
            for (col, map) in cols.iter().zip(&maps) {
                key.push(map[col[row] as usize]);
            }
            let part = (hasher.hash_one(key) % num_partitions as u64) as usize;
            buf.clear();
            for &v in key.as_slice() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            writers[part].write_all(&buf)?;
        }
        for mut w in writers {
            w.flush()?;
        }
        Ok(ExternalFrequencySet {
            spec: spec.clone(),
            partitions,
            arity,
            total: nrows as u64,
            dir,
        })
    }

    /// The grouping spec.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Total tuples scanned.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of spill partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Aggregate one partition into an in-memory map (the memory high-water
    /// mark of every streaming query).
    fn aggregate_partition(&self, idx: usize) -> Result<FxHashMap<GroupKey, u64>, ExternalError> {
        let path = &self.partitions[idx];
        let mut reader = BufReader::new(File::open(path)?);
        let record = self.arity * 4;
        let mut counts: FxHashMap<GroupKey, u64> = FxHashMap::default();
        let mut buf = vec![0u8; record.max(1)];
        loop {
            match reader.read_exact(&mut buf) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let mut key = GroupKey::default();
            for c in buf.chunks_exact(4) {
                key.push(u32::from_le_bytes(c.try_into().expect("4-byte chunk")));
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        // Every record is whole by construction; a trailing fragment means
        // corruption.
        let len = std::fs::metadata(path)?.len();
        if record > 0 && len % record as u64 != 0 {
            return Err(ExternalError::Corrupt { partition: path.clone() });
        }
        Ok(counts)
    }

    /// Fold every partition's aggregated counts through `f`, streaming.
    fn fold_groups<T>(
        &self,
        mut acc: T,
        mut f: impl FnMut(T, &GroupKey, u64) -> T,
    ) -> Result<T, ExternalError> {
        for idx in 0..self.partitions.len() {
            let counts = self.aggregate_partition(idx)?;
            for (k, c) in &counts {
                acc = f(acc, k, *c);
            }
        }
        Ok(acc)
    }

    /// Number of distinct groups (streamed).
    pub fn num_groups(&self) -> Result<usize, ExternalError> {
        self.fold_groups(0usize, |acc, _, _| acc + 1)
    }

    /// Smallest group count (streamed); `None` for an empty table.
    pub fn min_count(&self) -> Result<Option<u64>, ExternalError> {
        self.fold_groups(None, |acc: Option<u64>, _, c| {
            Some(acc.map_or(c, |m| m.min(c)))
        })
    }

    /// K-Anonymity Property, streamed partition by partition.
    pub fn is_k_anonymous(&self, k: u64) -> Result<bool, ExternalError> {
        for idx in 0..self.partitions.len() {
            if self.aggregate_partition(idx)?.values().any(|&c| c < k) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Tuples in groups smaller than k (the §2.1 suppression tally).
    pub fn tuples_below(&self, k: u64) -> Result<u64, ExternalError> {
        self.fold_groups(0u64, |acc, _, c| if c < k { acc + c } else { acc })
    }

    /// Upgrade to the in-memory representation (requires the whole set to
    /// fit, of course).
    pub fn into_frequency_set(self) -> Result<FrequencySet, ExternalError> {
        let mut counts: FxHashMap<GroupKey, u64> = FxHashMap::default();
        for idx in 0..self.partitions.len() {
            for (k, c) in self.aggregate_partition(idx)? {
                *counts.entry(k).or_insert(0) += c;
            }
        }
        Ok(FrequencySet::from_parts(self.spec.clone(), counts, self.total))
    }
}

impl Drop for ExternalFrequencySet {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use incognito_hierarchy::builders;

    fn big_table(rows: u32) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("a", builders::suppression("a", &["0", "1", "2", "3", "4"]).unwrap()),
            Attribute::new(
                "b",
                builders::round_digits("b", &["00", "01", "10", "11", "20", "21"], 2).unwrap(),
            ),
        ])
        .unwrap();
        let mut cols = vec![Vec::new(), Vec::new()];
        for i in 0..rows {
            cols[0].push(i % 5);
            cols[1].push((i * 7) % 6);
        }
        Table::from_columns(schema, cols).unwrap()
    }

    fn spill_root() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn external_matches_in_memory() {
        let t = big_table(10_000);
        for spec in [
            GroupSpec::ground(&[0, 1]).unwrap(),
            GroupSpec::new(vec![(1, 1)]).unwrap(),
        ] {
            let mem = t.frequency_set(&spec).unwrap();
            let ext = ExternalFrequencySet::build(&t, &spec, 7, &spill_root()).unwrap();
            assert_eq!(ext.total(), mem.total());
            assert_eq!(ext.num_groups().unwrap(), mem.num_groups());
            assert_eq!(ext.min_count().unwrap(), mem.min_count());
            for k in [1u64, 100, 500, 5_000] {
                assert_eq!(ext.is_k_anonymous(k).unwrap(), mem.is_k_anonymous(k), "k={k}");
                assert_eq!(ext.tuples_below(k).unwrap(), mem.tuples_below(k), "k={k}");
            }
            let upgraded = ext.into_frequency_set().unwrap();
            assert_eq!(
                upgraded.to_labeled_rows(t.schema()),
                mem.to_labeled_rows(t.schema())
            );
        }
    }

    #[test]
    fn single_partition_and_many_partitions_agree() {
        let t = big_table(3_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let one = ExternalFrequencySet::build(&t, &spec, 1, &spill_root()).unwrap();
        let many = ExternalFrequencySet::build(&t, &spec, 64, &spill_root()).unwrap();
        assert_eq!(one.num_groups().unwrap(), many.num_groups().unwrap());
        assert_eq!(one.tuples_below(200).unwrap(), many.tuples_below(200).unwrap());
    }

    #[test]
    fn empty_table_streams_cleanly() {
        let t = big_table(0);
        let spec = GroupSpec::ground(&[0]).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 4, &spill_root()).unwrap();
        assert_eq!(ext.num_groups().unwrap(), 0);
        assert_eq!(ext.min_count().unwrap(), None);
        assert!(ext.is_k_anonymous(5).unwrap());
    }

    #[test]
    fn spill_directory_is_cleaned_up() {
        let t = big_table(100);
        let spec = GroupSpec::ground(&[0]).unwrap();
        let dir;
        {
            let ext = ExternalFrequencySet::build(&t, &spec, 2, &spill_root()).unwrap();
            dir = ext.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "drop must remove the spill directory");
    }
}
