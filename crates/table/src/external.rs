//! Out-of-core frequency sets — the paper's §7 scalability future work:
//! *"It is also important to perform a more extensive evaluation of the
//! scalability of Incognito and previous algorithms in the case where the
//! original database or the intermediate frequency tables do not fit in
//! main memory."*
//!
//! [`ExternalFrequencySet`] computes a frequency set with bounded memory:
//! the scan hash-partitions `(group key, count)` records to disk
//! (Grace-hash style), and every query — the k-anonymity predicate, group
//! counts, suppression tallies — streams one partition at a time, so peak
//! memory is the largest partition's distinct-group footprint rather than
//! the whole frequency set. [`ExternalFrequencySet::rollup`] and
//! [`ExternalFrequencySet::project`] derive child sets partition by
//! partition (the paper's Rollup and Subset properties, §3), so the key
//! optimizations survive out-of-core instead of falling back to base-table
//! rescans. `into_frequency_set` upgrades to the in-memory representation
//! when it does fit.
//!
//! Spill activity is observable: the cumulative gauges
//! `table.spill.{partitions,bytes,spilled_sets,upgrades}` and the
//! `spill.build` / `spill.rollup` / `spill.project` / `spill.upgrade`
//! trace spans record every trip through the disk path. None of them are
//! touched unless spilling actually happens, so in-memory runs stay
//! byte-identical to historical baselines.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use incognito_hierarchy::{LevelNo, ValueId};

use crate::freq::{GroupKey, GroupSpec};
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::schema::Schema;
use crate::table::Table;
use crate::{FrequencySet, TableError};

/// Errors specific to the spilling pipeline.
#[derive(Debug)]
pub enum ExternalError {
    /// Underlying table/spec failure.
    Table(TableError),
    /// Spill-file IO failure.
    Io(std::io::Error),
    /// A spill file was truncated or corrupted.
    Corrupt {
        /// The offending partition file.
        partition: PathBuf,
    },
}

impl std::fmt::Display for ExternalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExternalError::Table(e) => write!(f, "table error: {e}"),
            ExternalError::Io(e) => write!(f, "spill io error: {e}"),
            ExternalError::Corrupt { partition } => {
                write!(f, "corrupt spill partition {}", partition.display())
            }
        }
    }
}

impl std::error::Error for ExternalError {}

impl From<TableError> for ExternalError {
    fn from(e: TableError) -> Self {
        ExternalError::Table(e)
    }
}

impl From<std::io::Error> for ExternalError {
    fn from(e: std::io::Error) -> Self {
        ExternalError::Io(e)
    }
}

/// Hard cap on spill partitions per set.
const MAX_PARTITIONS: usize = 4096;

/// Total write-buffer budget shared by all partitions of one build; each
/// partition flushes (open-append-close, so at most one spill FD is ever
/// open at a time) once its share fills up. This bounds the build's
/// in-flight memory independently of the row count — the point of
/// spilling — while keeping flushes large enough to amortize the
/// open/close (8 KiB at the default 64-partition fan-out).
const WRITE_BUFFER_BYTES: usize = 512 << 10;

/// Floor on the per-partition buffer share, so very wide partition counts
/// still amortize the open/close per flush over a few records.
const MIN_BUFFER_BYTES: usize = 256;

/// Monotonic suffix for spill-directory names. `SystemTime` alone is not
/// unique: two builds in one process on a coarse clock (or any pre-epoch
/// clock, which `unwrap_or(0)` pinned to the same suffix) would share a
/// directory, interleave partition writes, and the first `Drop` would
/// delete the survivor's live spill files.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Create a directory under `spill_root` that no other
/// `ExternalFrequencySet` in this process can share. `create_dir` (not
/// `create_dir_all`) makes an unexpected survivor — e.g. a stale dir from
/// a crashed run recycled onto the same pid — an `AlreadyExists` error we
/// skip past instead of a silent collision.
fn fresh_spill_dir(spill_root: &Path) -> Result<PathBuf, ExternalError> {
    std::fs::create_dir_all(spill_root)?;
    let pid = std::process::id();
    loop {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = spill_root.join(format!("incognito-spill-{pid}-{seq}"));
        match std::fs::create_dir(&dir) {
            Ok(()) => return Ok(dir),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

/// Bounded-FD partition writers: records accumulate in per-partition
/// memory buffers and are flushed by open-append-close, so the build never
/// holds more than one spill file descriptor open regardless of the
/// partition count (the old design opened up to 4096 `BufWriter<File>`s
/// simultaneously — above the common 1024 ulimit).
struct PartitionWriters<'p> {
    paths: &'p [PathBuf],
    bufs: Vec<Vec<u8>>,
    written: Vec<u64>,
    threshold: usize,
}

impl<'p> PartitionWriters<'p> {
    fn new(paths: &'p [PathBuf]) -> Self {
        let threshold = (WRITE_BUFFER_BYTES / paths.len().max(1)).max(MIN_BUFFER_BYTES);
        PartitionWriters {
            paths,
            bufs: vec![Vec::new(); paths.len()],
            written: vec![0; paths.len()],
            threshold,
        }
    }

    fn write(&mut self, part: usize, record: &[u8]) -> Result<(), ExternalError> {
        self.bufs[part].extend_from_slice(record);
        if self.bufs[part].len() >= self.threshold {
            self.flush_one(part)?;
        }
        Ok(())
    }

    fn flush_one(&mut self, part: usize) -> Result<(), ExternalError> {
        let mut file = OpenOptions::new().create(true).append(true).open(&self.paths[part])?;
        file.write_all(&self.bufs[part])?;
        self.written[part] += self.bufs[part].len() as u64;
        self.bufs[part].clear();
        Ok(())
    }

    /// Flush every buffer (creating empty files for partitions that never
    /// received a record, so readers can treat all paths uniformly) and
    /// return the exact byte length written to each partition.
    fn finish(mut self) -> Result<Vec<u64>, ExternalError> {
        for part in 0..self.paths.len() {
            self.flush_one(part)?;
        }
        Ok(self.written)
    }
}

/// Serialize one `(key, count)` record into `buf`.
fn push_record(buf: &mut Vec<u8>, key: &GroupKey, count: u64) {
    buf.clear();
    for &v in key.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&count.to_le_bytes());
}

/// A frequency set whose groups live in disk partitions.
///
/// Each partition file is a sequence of fixed-width records: `arity`
/// little-endian `u32` key components followed by a little-endian `u64`
/// count. A record's partition is its key's hash modulo the partition
/// count, so all records for one group land in the same partition and
/// streaming queries can aggregate one partition at a time.
pub struct ExternalFrequencySet {
    spec: GroupSpec,
    partitions: Vec<PathBuf>,
    /// Exact byte length written to each partition at build time. Any
    /// later mismatch — including truncation at a record boundary, which
    /// a divisibility check alone cannot see — is corruption.
    expected: Vec<u64>,
    /// Once a partition's on-disk length has been validated against
    /// `expected`, the check is not repeated (no re-`stat` per query).
    checked: Vec<OnceLock<()>>,
    arity: usize,
    total: u64,
    /// Owned spill directory, removed on drop.
    dir: PathBuf,
}

impl ExternalFrequencySet {
    /// Compute the frequency set of `table` w.r.t. `spec`, spilling
    /// `(key, count)` records into `num_partitions` files under a fresh
    /// subdirectory of `spill_root`.
    pub fn build(
        table: &Table,
        spec: &GroupSpec,
        num_partitions: usize,
        spill_root: &Path,
    ) -> Result<ExternalFrequencySet, ExternalError> {
        spec.validate(table.schema())?;
        let num_partitions = num_partitions.clamp(1, MAX_PARTITIONS);
        let dir = fresh_spill_dir(spill_root)?;
        let mut span = incognito_obs::trace::span("spill.build")
            .arg("rows", table.num_rows() as u64)
            .arg("partitions", num_partitions as u64);

        let schema = table.schema();
        let maps: Vec<&[ValueId]> = spec
            .parts()
            .iter()
            .map(|&(a, l)| schema.hierarchy(a).map_to_level(l))
            .collect();
        let cols: Vec<&[ValueId]> = spec.parts().iter().map(|&(a, _)| table.column(a)).collect();
        let arity = spec.len();

        let partitions: Vec<PathBuf> =
            (0..num_partitions).map(|p| dir.join(format!("part-{p}.bin"))).collect();
        let write_all = || -> Result<Vec<u64>, ExternalError> {
            use std::hash::BuildHasher;
            let hasher = FxBuildHasher::default();
            let mut writers = PartitionWriters::new(&partitions);
            let mut buf = Vec::with_capacity(arity * 4 + 8);
            for row in 0..table.num_rows() {
                let mut key = GroupKey::default();
                for (col, map) in cols.iter().zip(&maps) {
                    key.push(map[col[row] as usize]);
                }
                let part = (hasher.hash_one(key) % num_partitions as u64) as usize;
                push_record(&mut buf, &key, 1);
                writers.write(part, &buf)?;
            }
            writers.finish()
        };
        let expected = match write_all() {
            Ok(e) => e,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };

        let bytes: u64 = expected.iter().sum();
        record_spill(num_partitions, bytes);
        span.set_arg("bytes", bytes);
        Ok(ExternalFrequencySet {
            spec: spec.clone(),
            checked: (0..num_partitions).map(|_| OnceLock::new()).collect(),
            partitions,
            expected,
            arity,
            total: table.num_rows() as u64,
            dir,
        })
    }

    /// The grouping spec.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Total tuples scanned.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of spill partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// On-disk footprint of the spilled record files, in bytes.
    pub fn spilled_bytes(&self) -> u64 {
        self.expected.iter().sum()
    }

    /// Bytes per `(key, count)` record.
    fn record_len(&self) -> usize {
        self.arity * 4 + 8
    }

    /// Upper-bound estimate of the heap bytes
    /// [`ExternalFrequencySet::into_frequency_set`] would occupy. The
    /// spilled record count bounds the distinct group count from above (a
    /// built set holds one record per row; a derived set at most one
    /// record per group per parent partition), each group costs one
    /// hash-map slot in memory, and the factor of two covers the map's
    /// growth slack (capacity can reach ~2× the entry count after a
    /// doubling). Budget admission checks compare this against headroom
    /// *before* materializing, so the estimate deliberately errs high.
    pub fn estimated_resident_bytes(&self) -> u64 {
        let records = self.spilled_bytes() / self.record_len() as u64;
        let slot = std::mem::size_of::<(GroupKey, u64)>() as u64 + 1;
        records.saturating_mul(slot).saturating_mul(2)
    }

    /// Check the partition file's length against the exact byte count the
    /// build wrote, once; later queries reuse the verdict instead of
    /// re-`stat`ing. Runs *before* any aggregation so a truncated file is
    /// an error on the first query, not a silently shortened count.
    fn validate_partition(&self, idx: usize) -> Result<(), ExternalError> {
        if self.checked[idx].get().is_some() {
            return Ok(());
        }
        let path = &self.partitions[idx];
        let len = std::fs::metadata(path)?.len();
        if len != self.expected[idx] {
            return Err(ExternalError::Corrupt { partition: path.clone() });
        }
        let _ = self.checked[idx].set(());
        Ok(())
    }

    /// Aggregate one partition into an in-memory map (the memory high-water
    /// mark of every streaming query).
    fn aggregate_partition(&self, idx: usize) -> Result<FxHashMap<GroupKey, u64>, ExternalError> {
        self.validate_partition(idx)?;
        let path = &self.partitions[idx];
        let record = self.record_len();
        let n_records = (self.expected[idx] / record as u64) as usize;
        let mut reader = BufReader::new(File::open(path)?);
        let mut counts: FxHashMap<GroupKey, u64> = FxHashMap::default();
        let mut buf = vec![0u8; record];
        for _ in 0..n_records {
            reader.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    // The file shrank between validation and the read.
                    ExternalError::Corrupt { partition: path.clone() }
                } else {
                    ExternalError::Io(e)
                }
            })?;
            let (key_bytes, count_bytes) = buf.split_at(self.arity * 4);
            let mut key = GroupKey::default();
            for c in key_bytes.chunks_exact(4) {
                key.push(u32::from_le_bytes(c.try_into().expect("4-byte chunk")));
            }
            let count = u64::from_le_bytes(count_bytes.try_into().expect("8-byte count"));
            *counts.entry(key).or_insert(0) += count;
        }
        Ok(counts)
    }

    /// Fold every partition's aggregated counts through `f`, streaming.
    fn fold_groups<T>(
        &self,
        mut acc: T,
        mut f: impl FnMut(T, &GroupKey, u64) -> T,
    ) -> Result<T, ExternalError> {
        for idx in 0..self.partitions.len() {
            let counts = self.aggregate_partition(idx)?;
            for (k, c) in &counts {
                acc = f(acc, k, *c);
            }
        }
        Ok(acc)
    }

    /// Number of distinct groups (streamed).
    pub fn num_groups(&self) -> Result<usize, ExternalError> {
        self.fold_groups(0usize, |acc, _, _| acc + 1)
    }

    /// Smallest group count (streamed); `None` for an empty table.
    pub fn min_count(&self) -> Result<Option<u64>, ExternalError> {
        self.fold_groups(None, |acc: Option<u64>, _, c| {
            Some(acc.map_or(c, |m| m.min(c)))
        })
    }

    /// K-Anonymity Property, streamed partition by partition.
    pub fn is_k_anonymous(&self, k: u64) -> Result<bool, ExternalError> {
        for idx in 0..self.partitions.len() {
            if self.aggregate_partition(idx)?.values().any(|&c| c < k) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Tuples in groups smaller than k (the §2.1 suppression tally).
    pub fn tuples_below(&self, k: u64) -> Result<u64, ExternalError> {
        self.fold_groups(0u64, |acc, _, c| if c < k { acc + c } else { acc })
    }

    /// K-anonymity modulo suppression: at most `max_suppress` tuples sit
    /// in groups smaller than `k` (matches
    /// [`FrequencySet::is_k_anonymous_with_suppression`]).
    pub fn is_k_anonymous_with_suppression(
        &self,
        k: u64,
        max_suppress: u64,
    ) -> Result<bool, ExternalError> {
        Ok(self.tuples_below(k)? <= max_suppress)
    }

    /// Derive a child set from `(key, count)` records without touching the
    /// base table: aggregate each parent partition in memory, transform
    /// every key through `map_key`, and re-route the transformed records
    /// to the child partition its hash selects. One parent partition's
    /// groups are resident at a time, so memory stays bounded while the
    /// Rollup/Subset optimizations survive out-of-core.
    fn derive(
        &self,
        spec: GroupSpec,
        spill_root: &Path,
        mut map_key: impl FnMut(&GroupKey) -> GroupKey,
    ) -> Result<ExternalFrequencySet, ExternalError> {
        use std::hash::BuildHasher;
        let num_partitions = self.partitions.len();
        let dir = fresh_spill_dir(spill_root)?;
        let partitions: Vec<PathBuf> =
            (0..num_partitions).map(|p| dir.join(format!("part-{p}.bin"))).collect();
        let mut write_all = || -> Result<Vec<u64>, ExternalError> {
            let hasher = FxBuildHasher::default();
            let mut writers = PartitionWriters::new(&partitions);
            let mut buf = Vec::with_capacity(spec.len() * 4 + 8);
            for idx in 0..num_partitions {
                for (key, count) in self.aggregate_partition(idx)? {
                    let child = map_key(&key);
                    let part = (hasher.hash_one(child) % num_partitions as u64) as usize;
                    push_record(&mut buf, &child, count);
                    writers.write(part, &buf)?;
                }
            }
            writers.finish()
        };
        let expected = match write_all() {
            Ok(e) => e,
            Err(e) => {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(e);
            }
        };
        let bytes: u64 = expected.iter().sum();
        record_spill(num_partitions, bytes);
        let arity = spec.len();
        Ok(ExternalFrequencySet {
            spec,
            checked: (0..num_partitions).map(|_| OnceLock::new()).collect(),
            partitions,
            expected,
            arity,
            total: self.total,
            dir,
        })
    }

    /// The Rollup Property (§3), out-of-core: generalize this set to
    /// `target` levels by mapping each key component up its hierarchy and
    /// re-summing, partition by partition. Mirrors
    /// [`FrequencySet::rollup`]; `target[i]` must be ≥ the current level
    /// of the i-th grouped attribute.
    pub fn rollup(
        &self,
        schema: &Schema,
        target: &[LevelNo],
        spill_root: &Path,
    ) -> Result<ExternalFrequencySet, ExternalError> {
        if target.len() != self.spec.len() {
            return Err(TableError::IncompatibleSpec(format!(
                "rollup target has {} levels for {} grouped attributes",
                target.len(),
                self.spec.len()
            ))
            .into());
        }
        let mut maps: Vec<&[ValueId]> = Vec::with_capacity(target.len());
        let mut parts = Vec::with_capacity(target.len());
        for (&(a, from), &to) in self.spec.parts().iter().zip(target) {
            let h = schema.hierarchy(a);
            if to < from {
                return Err(TableError::IncompatibleSpec(format!(
                    "cannot roll attribute {a} down from level {from} to {to}"
                ))
                .into());
            }
            let m = h.between_map(from, to).map_err(|_| TableError::LevelOutOfRange {
                attribute: schema.attribute(a).name().to_string(),
                level: to,
                height: h.height(),
            })?;
            maps.push(m);
            parts.push((a, to));
        }
        let spec = GroupSpec::new(parts)?;
        let mut span = incognito_obs::trace::span("spill.rollup")
            .arg("partitions", self.partitions.len() as u64);
        let child = self.derive(spec, spill_root, |key| {
            let mut out = GroupKey::default();
            for (&v, map) in key.as_slice().iter().zip(&maps) {
                out.push(map[v as usize]);
            }
            out
        })?;
        span.set_arg("bytes", child.spilled_bytes());
        Ok(child)
    }

    /// The Subset Property (§3.3.2), out-of-core: keep only the key
    /// positions in `keep` (indices into this set's parts, in output
    /// order) and re-sum. Mirrors [`FrequencySet::project`].
    pub fn project(
        &self,
        keep: &[usize],
        spill_root: &Path,
    ) -> Result<ExternalFrequencySet, ExternalError> {
        let mut parts = Vec::with_capacity(keep.len());
        for &i in keep {
            let Some(&part) = self.spec.parts().get(i) else {
                return Err(TableError::IncompatibleSpec(format!(
                    "project position {i} out of range for {} grouped attributes",
                    self.spec.len()
                ))
                .into());
            };
            parts.push(part);
        }
        let spec = GroupSpec::new(parts)?;
        let mut span = incognito_obs::trace::span("spill.project")
            .arg("partitions", self.partitions.len() as u64);
        let child = self.derive(spec, spill_root, |key| {
            let slice = key.as_slice();
            let mut out = GroupKey::default();
            for &i in keep {
                out.push(slice[i]);
            }
            out
        })?;
        span.set_arg("bytes", child.spilled_bytes());
        Ok(child)
    }

    /// Upgrade to the in-memory representation (requires the whole set to
    /// fit, of course).
    pub fn into_frequency_set(self) -> Result<FrequencySet, ExternalError> {
        let _span = incognito_obs::trace::span("spill.upgrade")
            .arg("partitions", self.partitions.len() as u64);
        let mut counts: FxHashMap<GroupKey, u64> = FxHashMap::default();
        for idx in 0..self.partitions.len() {
            for (k, c) in self.aggregate_partition(idx)? {
                *counts.entry(k).or_insert(0) += c;
            }
        }
        incognito_obs::gauge_add("table.spill.upgrades", 1);
        Ok(FrequencySet::from_parts(self.spec.clone(), counts, self.total))
    }
}

/// Roll the cumulative spill gauges forward by one spilled set.
fn record_spill(num_partitions: usize, bytes: u64) {
    incognito_obs::gauge_add("table.spill.spilled_sets", 1);
    incognito_obs::gauge_add("table.spill.partitions", num_partitions as i64);
    incognito_obs::gauge_add("table.spill.bytes", bytes as i64);
}

impl Drop for ExternalFrequencySet {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use incognito_hierarchy::builders;

    fn big_table(rows: u32) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("a", builders::suppression("a", &["0", "1", "2", "3", "4"]).unwrap()),
            Attribute::new(
                "b",
                builders::round_digits("b", &["00", "01", "10", "11", "20", "21"], 2).unwrap(),
            ),
        ])
        .unwrap();
        let mut cols = vec![Vec::new(), Vec::new()];
        for i in 0..rows {
            cols[0].push(i % 5);
            cols[1].push((i * 7) % 6);
        }
        Table::from_columns(schema, cols).unwrap()
    }

    fn spill_root() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn external_matches_in_memory() {
        let t = big_table(10_000);
        for spec in [
            GroupSpec::ground(&[0, 1]).unwrap(),
            GroupSpec::new(vec![(1, 1)]).unwrap(),
        ] {
            let mem = t.frequency_set(&spec).unwrap();
            let ext = ExternalFrequencySet::build(&t, &spec, 7, &spill_root()).unwrap();
            assert_eq!(ext.total(), mem.total());
            assert_eq!(ext.num_groups().unwrap(), mem.num_groups());
            assert_eq!(ext.min_count().unwrap(), mem.min_count());
            for k in [1u64, 100, 500, 5_000] {
                assert_eq!(ext.is_k_anonymous(k).unwrap(), mem.is_k_anonymous(k), "k={k}");
                assert_eq!(ext.tuples_below(k).unwrap(), mem.tuples_below(k), "k={k}");
                assert_eq!(
                    ext.is_k_anonymous_with_suppression(k, 10).unwrap(),
                    mem.is_k_anonymous_with_suppression(k, 10),
                    "k={k}"
                );
            }
            let upgraded = ext.into_frequency_set().unwrap();
            assert_eq!(
                upgraded.to_labeled_rows(t.schema()),
                mem.to_labeled_rows(t.schema())
            );
        }
    }

    #[test]
    fn single_partition_and_many_partitions_agree() {
        let t = big_table(3_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let one = ExternalFrequencySet::build(&t, &spec, 1, &spill_root()).unwrap();
        let many = ExternalFrequencySet::build(&t, &spec, 64, &spill_root()).unwrap();
        assert_eq!(one.num_groups().unwrap(), many.num_groups().unwrap());
        assert_eq!(one.tuples_below(200).unwrap(), many.tuples_below(200).unwrap());
    }

    #[test]
    fn empty_table_streams_cleanly() {
        let t = big_table(0);
        let spec = GroupSpec::ground(&[0]).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 4, &spill_root()).unwrap();
        assert_eq!(ext.num_groups().unwrap(), 0);
        assert_eq!(ext.min_count().unwrap(), None);
        assert!(ext.is_k_anonymous(5).unwrap());
    }

    #[test]
    fn spill_directory_is_cleaned_up() {
        let t = big_table(100);
        let spec = GroupSpec::ground(&[0]).unwrap();
        let dir;
        {
            let ext = ExternalFrequencySet::build(&t, &spec, 2, &spill_root()).unwrap();
            dir = ext.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "drop must remove the spill directory");
    }

    /// Regression (spill-directory collision): two same-process builds —
    /// necessarily faster than the coarsest clock tick apart, and
    /// previously distinguishable only by `SystemTime` nanos — must land
    /// in distinct directories, and dropping the first must not delete
    /// the second's live spill files.
    #[test]
    fn concurrent_builds_use_distinct_directories() {
        let t = big_table(500);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let expected_groups = t.frequency_set(&spec).unwrap().num_groups();

        let builds: Vec<ExternalFrequencySet> = (0..8)
            .map(|_| ExternalFrequencySet::build(&t, &spec, 4, &spill_root()).unwrap())
            .collect();
        for (i, a) in builds.iter().enumerate() {
            for b in &builds[i + 1..] {
                assert_ne!(a.dir, b.dir, "two builds shared a spill directory");
            }
        }

        let survivor = ExternalFrequencySet::build(&t, &spec, 4, &spill_root()).unwrap();
        drop(builds);
        // Pre-fix, a same-tick sibling's Drop removed this set's files.
        assert_eq!(survivor.num_groups().unwrap(), expected_groups);
        assert!(survivor.dir.exists());
    }

    /// Regression (FD exhaustion): a build with 2048 partitions writing
    /// real rows must not hold thousands of file descriptors open at once
    /// (the old code opened one `BufWriter<File>` per partition up front,
    /// above the common 1024 ulimit).
    #[test]
    fn many_partitions_stay_under_fd_limits() {
        let t = big_table(5_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let mem = t.frequency_set(&spec).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 2048, &spill_root()).unwrap();
        assert_eq!(ext.num_partitions(), 2048);
        assert_eq!(ext.num_groups().unwrap(), mem.num_groups());
        assert_eq!(ext.min_count().unwrap(), mem.min_count());
        assert_eq!(ext.tuples_below(300).unwrap(), mem.tuples_below(300));
    }

    /// Regression (torn-record detection): truncating a partition —
    /// mid-record *or* at an exact record boundary — must surface as
    /// `Corrupt` on the next query instead of silently shrinking the
    /// counts. The boundary case is what the old after-the-fact
    /// `len % record == 0` check could never see.
    #[test]
    fn truncated_partition_is_detected_before_aggregation() {
        let t = big_table(1_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let record = spec.len() * 4 + 8;

        // Mid-record truncation.
        let ext = ExternalFrequencySet::build(&t, &spec, 1, &spill_root()).unwrap();
        let path = ext.partitions[0].clone();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        assert!(matches!(
            ext.num_groups(),
            Err(ExternalError::Corrupt { .. })
        ));

        // Record-boundary truncation: the file length stays divisible by
        // the record width, so only the cached expected length catches it.
        let ext = ExternalFrequencySet::build(&t, &spec, 1, &spill_root()).unwrap();
        let path = ext.partitions[0].clone();
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len % record as u64, 0);
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - record as u64).unwrap();
        drop(file);
        assert!(
            matches!(ext.tuples_below(100), Err(ExternalError::Corrupt { .. })),
            "boundary truncation must not silently drop a record"
        );
    }

    /// The validated length is cached: once a partition has been checked,
    /// queries stop re-`stat`ing it and keep working.
    #[test]
    fn validation_verdict_is_cached() {
        let t = big_table(1_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 3, &spill_root()).unwrap();
        let groups = ext.num_groups().unwrap();
        for idx in 0..ext.num_partitions() {
            assert!(ext.checked[idx].get().is_some(), "partition {idx} not cached");
        }
        assert_eq!(ext.num_groups().unwrap(), groups);
    }

    #[test]
    fn external_rollup_matches_in_memory_rollup() {
        let t = big_table(4_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let mem = t.frequency_set(&spec).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 8, &spill_root()).unwrap();
        for target in [[0u8, 1], [1, 0], [1, 2], [0, 2]] {
            let mem_r = mem.rollup(t.schema(), &target).unwrap();
            let ext_r = ext.rollup(t.schema(), &target, &spill_root()).unwrap();
            assert_eq!(ext_r.total(), mem_r.total());
            assert_eq!(ext_r.num_groups().unwrap(), mem_r.num_groups());
            assert_eq!(
                ext_r.into_frequency_set().unwrap().to_labeled_rows(t.schema()),
                mem_r.to_labeled_rows(t.schema()),
                "target={target:?}"
            );
        }
        // Rollup of a rollup (the chained lattice-walk case).
        let ext_r = ext.rollup(t.schema(), &[1, 1], &spill_root()).unwrap();
        let ext_rr = ext_r.rollup(t.schema(), &[1, 2], &spill_root()).unwrap();
        let mem_rr = mem.rollup(t.schema(), &[1, 2]).unwrap();
        assert_eq!(
            ext_rr.into_frequency_set().unwrap().to_labeled_rows(t.schema()),
            mem_rr.to_labeled_rows(t.schema())
        );
    }

    #[test]
    fn external_project_matches_in_memory_project() {
        let t = big_table(4_000);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let mem = t.frequency_set(&spec).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 8, &spill_root()).unwrap();
        for keep in [vec![0usize], vec![1], vec![0, 1]] {
            let mem_p = mem.project(&keep).unwrap();
            let ext_p = ext.project(&keep, &spill_root()).unwrap();
            assert_eq!(ext_p.total(), mem_p.total());
            assert_eq!(
                ext_p.into_frequency_set().unwrap().to_labeled_rows(t.schema()),
                mem_p.to_labeled_rows(t.schema()),
                "keep={keep:?}"
            );
        }
    }

    #[test]
    fn rollup_rejects_bad_targets() {
        let t = big_table(100);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 2, &spill_root()).unwrap();
        assert!(matches!(
            ext.rollup(t.schema(), &[1], &spill_root()),
            Err(ExternalError::Table(_))
        ));
        assert!(matches!(
            ext.project(&[5], &spill_root()),
            Err(ExternalError::Table(_))
        ));
    }
}
