use std::fmt;

/// Errors raised by the table substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Two attributes in one schema share a name.
    DuplicateAttribute(String),
    /// A row had the wrong number of fields.
    RowArity {
        /// Expected field count (schema arity).
        expected: usize,
        /// Supplied field count.
        actual: usize,
    },
    /// A field value was not found in the attribute's ground domain.
    UnknownValue {
        /// Attribute name.
        attribute: String,
        /// The unresolvable value.
        value: String,
    },
    /// A ground id exceeded the attribute's domain size.
    IdOutOfRange {
        /// Attribute name.
        attribute: String,
        /// The out-of-range id.
        id: u32,
        /// Domain size.
        domain: usize,
    },
    /// An attribute index was out of range for the schema.
    AttributeOutOfRange {
        /// The bad index.
        index: usize,
        /// Schema arity.
        arity: usize,
    },
    /// A generalization level exceeded an attribute's hierarchy height.
    LevelOutOfRange {
        /// Attribute name.
        attribute: String,
        /// Requested level.
        level: u8,
        /// Hierarchy height.
        height: u8,
    },
    /// More attributes were requested in a group key than [`crate::freq::MAX_KEY_ATTRS`].
    KeyTooWide(usize),
    /// A frequency-set operation combined incompatible specs (different
    /// attributes, or target levels below current levels).
    IncompatibleSpec(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateAttribute(n) => write!(f, "duplicate attribute name {n:?}"),
            TableError::RowArity { expected, actual } => {
                write!(f, "row has {actual} fields, schema expects {expected}")
            }
            TableError::UnknownValue { attribute, value } => {
                write!(f, "value {value:?} not in ground domain of attribute {attribute:?}")
            }
            TableError::IdOutOfRange { attribute, id, domain } => {
                write!(f, "id {id} out of range for attribute {attribute:?} (domain size {domain})")
            }
            TableError::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for schema of arity {arity}")
            }
            TableError::LevelOutOfRange { attribute, level, height } => {
                write!(f, "level {level} exceeds height {height} of attribute {attribute:?}")
            }
            TableError::KeyTooWide(n) => {
                write!(f, "group keys support at most {} attributes, got {n}", crate::freq::MAX_KEY_ATTRS)
            }
            TableError::IncompatibleSpec(msg) => write!(f, "incompatible frequency-set spec: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}
