//! A minimal FxHash implementation (the rustc hash), in-tree so the project
//! stays within its approved dependency set.
//!
//! Frequency-set computation hashes short tuples of small integers millions
//! of times; SipHash (the std default) is measurably slower for this shape of
//! key, which is why the perf guidance for database code recommends an
//! Fx-style hasher for integer-keyed tables.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox "Fx" hasher: fast, non-cryptographic, suitable when
/// HashDoS is not a concern (all keys here are internally generated ids).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one([1u32, 2, 3]), hash_one([1u32, 2, 3]));
    }

    #[test]
    fn discriminates_simple_keys() {
        assert_ne!(hash_one(1u32), hash_one(2u32));
        assert_ne!(hash_one([1u32, 2]), hash_one([2u32, 1]));
    }

    #[test]
    fn byte_write_handles_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<[u32; 3], u64> = FxHashMap::default();
        for i in 0..1000u32 {
            *m.entry([i % 10, i % 7, i % 3]).or_insert(0) += 1;
        }
        assert_eq!(m.values().sum::<u64>(), 1000);
        assert_eq!(m.len(), (10 * 7 * 3)); // lcm(10,7,3)=210 >= 1000/…: all combos cycle
    }
}
