use std::sync::Arc;

use incognito_hierarchy::{LevelNo, ValueId};

use crate::freq::{FrequencySet, GroupSpec};
use crate::schema::Schema;
use crate::TableError;

/// An in-memory, dictionary-encoded, column-oriented relation (a multiset of
/// tuples, per the paper's definitions in §1.1).
///
/// Every cell stores the `u32` ground id of its value in the attribute's
/// hierarchy dictionary. This is the substrate on which frequency sets —
/// `SELECT COUNT(*) ... GROUP BY ...` in the paper's DB2 implementation —
/// are computed.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    /// One column per attribute; all columns have equal length.
    columns: Vec<Vec<ValueId>>,
}

impl Table {
    /// Create an empty table over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Table { schema, columns }
    }

    /// Build a table from pre-encoded columns.
    ///
    /// All columns must have the same length and every id must lie within
    /// its attribute's ground domain.
    pub fn from_columns(
        schema: Arc<Schema>,
        columns: Vec<Vec<ValueId>>,
    ) -> Result<Self, TableError> {
        if columns.len() != schema.arity() {
            return Err(TableError::RowArity { expected: schema.arity(), actual: columns.len() });
        }
        let nrows = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != nrows {
                return Err(TableError::RowArity { expected: nrows, actual: col.len() });
            }
            let domain = schema.hierarchy(i).ground_size();
            if let Some(&bad) = col.iter().find(|&&id| id as usize >= domain) {
                return Err(TableError::IdOutOfRange {
                    attribute: schema.attribute(i).name().to_string(),
                    id: bad,
                    domain,
                });
            }
        }
        incognito_obs::incr("table.build.count");
        incognito_obs::add("table.build.rows", nrows as u64);
        let dict: usize = (0..schema.arity()).map(|i| schema.hierarchy(i).ground_size()).sum();
        incognito_obs::add("table.build.dict_values", dict as u64);
        Ok(Table { schema, columns })
    }

    /// Append a row given as labels, resolving each against the attribute's
    /// ground dictionary.
    pub fn push_row(&mut self, fields: &[&str]) -> Result<(), TableError> {
        if fields.len() != self.schema.arity() {
            return Err(TableError::RowArity {
                expected: self.schema.arity(),
                actual: fields.len(),
            });
        }
        // Resolve every field before mutating any column so a failed push
        // leaves the table unchanged.
        let mut ids = Vec::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            let h = self.schema.hierarchy(i);
            let id = h.ground_id(field).ok_or_else(|| TableError::UnknownValue {
                attribute: self.schema.attribute(i).name().to_string(),
                value: field.to_string(),
            })?;
            ids.push(id);
        }
        for (col, id) in self.columns.iter_mut().zip(ids) {
            col.push(id);
        }
        Ok(())
    }

    /// Append a row of pre-encoded ids.
    pub fn push_ids(&mut self, ids: &[ValueId]) -> Result<(), TableError> {
        if ids.len() != self.schema.arity() {
            return Err(TableError::RowArity { expected: self.schema.arity(), actual: ids.len() });
        }
        for (i, &id) in ids.iter().enumerate() {
            let domain = self.schema.hierarchy(i).ground_size();
            if id as usize >= domain {
                return Err(TableError::IdOutOfRange {
                    attribute: self.schema.attribute(i).name().to_string(),
                    id,
                    domain,
                });
            }
        }
        for (col, &id) in self.columns.iter_mut().zip(ids) {
            col.push(id);
        }
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Encoded column for attribute `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn column(&self, idx: usize) -> &[ValueId] {
        &self.columns[idx]
    }

    /// Decode cell `(row, attr)` to its ground label.
    pub fn label(&self, row: usize, attr: usize) -> &str {
        self.schema.hierarchy(attr).label(0, self.columns[attr][row])
    }

    /// Compute the frequency set of this table with respect to `spec` — the
    /// `SELECT COUNT(*) GROUP BY` of §1.1, where each grouped attribute is
    /// first generalized to the level given in the spec (the star-schema join
    /// + projection of Figure 4). One full scan of the involved columns.
    pub fn frequency_set(&self, spec: &GroupSpec) -> Result<FrequencySet, TableError> {
        spec.validate(&self.schema)?;
        Ok(FrequencySet::scan(self, spec))
    }

    /// Like [`Table::frequency_set`], sharding the scan over `threads`
    /// worker threads (plain `std::thread::scope`; counts merge
    /// associatively, so the result is identical). Falls back to the serial
    /// scan for small tables or `threads <= 1`.
    pub fn frequency_set_parallel(
        &self,
        spec: &GroupSpec,
        threads: usize,
    ) -> Result<FrequencySet, TableError> {
        spec.validate(&self.schema)?;
        Ok(FrequencySet::scan_parallel(self, spec, threads))
    }

    /// Convenience: is this table k-anonymous with respect to the given
    /// attributes at the given levels (no suppression)?
    pub fn is_k_anonymous(&self, spec: &GroupSpec, k: u64) -> Result<bool, TableError> {
        Ok(self.frequency_set(spec)?.is_k_anonymous(k))
    }

    /// Materialize the full-domain generalization of this table defined by
    /// `levels` (one level per attribute, `levels.len() == arity`): every
    /// value of attribute `i` is replaced by its γ⁺ image at `levels[i]`.
    ///
    /// The result is a new `Table` whose attribute dictionaries are the
    /// generalized domains (each with a height-0 hierarchy — the view is a
    /// release artifact, not a further-generalizable base table).
    pub fn generalize(&self, levels: &[LevelNo]) -> Result<Table, TableError> {
        self.generalize_with_suppression(levels, None).map(|(t, _)| t)
    }

    /// Like [`Table::generalize`], but if `suppress` is `Some((k, qi))`,
    /// rows whose generalized value combination over the attributes `qi`
    /// occurs fewer than `k` times are removed entirely (the
    /// tuple-suppression extension of §2.1). Grouping for suppression is
    /// over `qi` only — sensitive attributes do not split groups.
    /// Returns the view plus the number of suppressed tuples.
    pub fn generalize_with_suppression(
        &self,
        levels: &[LevelNo],
        suppress: Option<(u64, &[usize])>,
    ) -> Result<(Table, u64), TableError> {
        let _span = incognito_obs::span("table.generalize.time");
        let mut tspan = incognito_obs::trace::span("table.generalize")
            .arg("rows", self.num_rows() as u64);
        if levels.len() != self.schema.arity() {
            return Err(TableError::RowArity {
                expected: self.schema.arity(),
                actual: levels.len(),
            });
        }
        for (i, &l) in levels.iter().enumerate() {
            let h = self.schema.hierarchy(i);
            if l > h.height() {
                return Err(TableError::LevelOutOfRange {
                    attribute: self.schema.attribute(i).name().to_string(),
                    level: l,
                    height: h.height(),
                });
            }
        }

        // Build the output schema: one identity hierarchy per generalized domain.
        let mut attrs = Vec::with_capacity(self.schema.arity());
        for (i, &l) in levels.iter().enumerate() {
            let h = self.schema.hierarchy(i);
            let labels: Vec<&str> = h.level(l).labels().iter().map(String::as_str).collect();
            let ident = incognito_hierarchy::builders::identity(h.name(), &labels)
                .expect("level dictionaries are valid domains");
            attrs.push(crate::schema::Attribute::new(self.schema.attribute(i).name(), ident));
        }
        let out_schema = Schema::new(attrs)?;

        // Decide which rows survive suppression.
        let keep: Option<Vec<bool>> = match suppress {
            None => None,
            Some((k, qi)) => {
                let spec = GroupSpec::new(qi.iter().map(|&a| (a, levels[a])).collect())?;
                spec.validate(&self.schema)?;
                let freq = self.frequency_set(&spec)?;
                let mut keep = vec![true; self.num_rows()];
                let maps: Vec<&[ValueId]> = qi
                    .iter()
                    .map(|&a| self.schema.hierarchy(a).map_to_level(levels[a]))
                    .collect();
                for (row, flag) in keep.iter_mut().enumerate() {
                    let mut key = crate::freq::GroupKey::default();
                    for (&a, map) in qi.iter().zip(&maps) {
                        key.push(map[self.columns[a][row] as usize]);
                    }
                    if freq.count(&key) < k {
                        *flag = false;
                    }
                }
                Some(keep)
            }
        };

        let mut out_cols: Vec<Vec<ValueId>> = Vec::with_capacity(self.schema.arity());
        for (i, col) in self.columns.iter().enumerate() {
            let map = self.schema.hierarchy(i).map_to_level(levels[i]);
            let out: Vec<ValueId> = match &keep {
                None => col.iter().map(|&v| map[v as usize]).collect(),
                Some(keep) => col
                    .iter()
                    .zip(keep)
                    .filter(|&(_, &kf)| kf)
                    .map(|(&v, _)| map[v as usize])
                    .collect(),
            };
            out_cols.push(out);
        }
        let suppressed = self.num_rows() as u64
            - out_cols.first().map_or(0, |c| c.len() as u64);
        let table = Table::from_columns(out_schema, out_cols)?;
        incognito_obs::incr("table.generalize.count");
        incognito_obs::add("table.generalize.rows_suppressed", suppressed);
        tspan.set_arg("suppressed", suppressed);
        Ok((table, suppressed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use incognito_hierarchy::builders;

    /// The Patients table of Figure 1, restricted to ⟨Sex, Zipcode⟩.
    fn patients_sz() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
            Attribute::new(
                "Zipcode",
                builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                    .unwrap(),
            ),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for row in [
            ["Male", "53715"],
            ["Female", "53715"],
            ["Male", "53703"],
            ["Male", "53703"],
            ["Female", "53706"],
            ["Female", "53706"],
        ] {
            t.push_row(&row).unwrap();
        }
        t
    }

    #[test]
    fn push_and_decode() {
        let t = patients_sz();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.label(0, 0), "Male");
        assert_eq!(t.label(1, 1), "53715");
        assert_eq!(t.column(0).len(), 6);
    }

    #[test]
    fn push_row_errors_are_atomic() {
        let mut t = patients_sz();
        let err = t.push_row(&["Male", "99999"]).unwrap_err();
        assert!(matches!(err, TableError::UnknownValue { .. }));
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.column(0).len(), t.column(1).len());
        let err = t.push_row(&["Male"]).unwrap_err();
        assert!(matches!(err, TableError::RowArity { .. }));
    }

    #[test]
    fn from_columns_validates() {
        let schema = patients_sz().schema.clone();
        assert!(Table::from_columns(schema.clone(), vec![vec![0], vec![0, 1]]).is_err());
        assert!(Table::from_columns(schema.clone(), vec![vec![9], vec![0]]).is_err());
        assert!(Table::from_columns(schema, vec![vec![1], vec![3]]).is_ok());
    }

    #[test]
    fn k_anonymity_of_patients_example() {
        // §1.1: Patients is NOT 2-anonymous w.r.t. ⟨Sex, Zipcode⟩ ...
        let t = patients_sz();
        let spec0 = GroupSpec::new(vec![(0, 0), (1, 0)]).unwrap();
        assert!(!t.is_k_anonymous(&spec0, 2).unwrap());
        // ... but IS 2-anonymous w.r.t. ⟨S1, Z0⟩ (Example 3.1).
        let spec_s1 = GroupSpec::new(vec![(0, 1), (1, 0)]).unwrap();
        assert!(t.is_k_anonymous(&spec_s1, 2).unwrap());
        // And w.r.t. ⟨S0⟩ alone.
        let spec_s0 = GroupSpec::new(vec![(0, 0)]).unwrap();
        assert!(t.is_k_anonymous(&spec_s0, 2).unwrap());
    }

    #[test]
    fn generalize_materializes_view() {
        let t = patients_sz();
        let v = t.generalize(&[1, 0]).unwrap();
        assert_eq!(v.num_rows(), 6);
        assert_eq!(v.label(0, 0), "*");
        assert_eq!(v.label(0, 1), "53715");
        // The view is 2-anonymous at its own ground level.
        let spec = GroupSpec::new(vec![(0, 0), (1, 0)]).unwrap();
        assert!(v.is_k_anonymous(&spec, 2).unwrap());
    }

    #[test]
    fn generalize_rejects_bad_levels() {
        let t = patients_sz();
        assert!(matches!(
            t.generalize(&[2, 0]).unwrap_err(),
            TableError::LevelOutOfRange { .. }
        ));
        assert!(matches!(t.generalize(&[0]).unwrap_err(), TableError::RowArity { .. }));
    }

    #[test]
    fn suppression_removes_small_groups() {
        let t = patients_sz();
        // At ground level: (M,53715)=1, (F,53715)=1, (M,53703)=2, (F,53706)=2.
        let (v, suppressed) =
            t.generalize_with_suppression(&[0, 0], Some((2, &[0, 1]))).unwrap();
        assert_eq!(suppressed, 2);
        assert_eq!(v.num_rows(), 4);
        let spec = GroupSpec::new(vec![(0, 0), (1, 0)]).unwrap();
        assert!(v.is_k_anonymous(&spec, 2).unwrap());
        // No suppression requested: nothing removed.
        let (v, suppressed) = t.generalize_with_suppression(&[0, 0], None).unwrap();
        assert_eq!(suppressed, 0);
        assert_eq!(v.num_rows(), 6);
        // Grouping only over attribute 1 (Zipcode): all zip groups have
        // ≥ 1... zip counts are 2/2/2 except 53715 twice → nothing below 2.
        let (v, suppressed) =
            t.generalize_with_suppression(&[0, 0], Some((2, &[1]))).unwrap();
        assert_eq!(suppressed, 0);
        assert_eq!(v.num_rows(), 6);
    }

    #[test]
    fn empty_table_is_trivially_anonymous() {
        let t = Table::empty(patients_sz().schema.clone());
        let spec = GroupSpec::new(vec![(0, 0), (1, 0)]).unwrap();
        assert!(t.is_k_anonymous(&spec, 2).unwrap());
        let v = t.generalize(&[1, 2]).unwrap();
        assert_eq!(v.num_rows(), 0);
    }
}
