//! Seeded round-trip property tests for `obs::json`: any value the writer
//! can emit must parse back to an identical value, through both the
//! pretty and the compact serializer. The generator leans on the
//! workspace's own [`incognito_obs::Rng`] so failures reproduce exactly.

use incognito_obs::{Json, Rng};

/// Characters chosen to stress the escaper: quotes, backslashes, the
/// named control escapes, bare control bytes (escaped as `\\u00XX`),
/// multi-byte BMP text, and an astral-plane scalar.
const NASTY_CHARS: [char; 12] =
    ['"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'µ', '💡', 'a', ' '];

fn arbitrary_string(rng: &mut Rng) -> String {
    (0..rng.below(12)).map(|_| *rng.choose(&NASTY_CHARS).unwrap()).collect()
}

fn arbitrary_finite_f64(rng: &mut Rng) -> f64 {
    // Bit-pattern floats cover subnormals and extreme exponents; fall
    // back to a bounded range for the non-finite patterns.
    let v = f64::from_bits(rng.next_u64());
    if v.is_finite() {
        v
    } else {
        rng.range_f64(-1e18, 1e18)
    }
}

fn arbitrary(rng: &mut Rng, depth: usize) -> Json {
    // Leaves only once the depth budget is spent.
    let pick = if depth == 0 { rng.below(5) } else { rng.below(7) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Int(rng.next_u64() as i64),
        3 => Json::Num(arbitrary_finite_f64(rng)),
        4 => Json::Str(arbitrary_string(rng)),
        5 => Json::Arr((0..rng.below(5)).map(|_| arbitrary(rng, depth - 1)).collect()),
        _ => Json::Obj(
            (0..rng.below(5))
                .map(|i| (format!("k{i}_{}", arbitrary_string(rng)), arbitrary(rng, depth - 1)))
                .collect(),
        ),
    }
}

#[test]
fn seeded_values_round_trip_through_both_writers() {
    let mut rng = Rng::seed_from_u64(0x1f09_2005);
    for case in 0..300 {
        let v = arbitrary(&mut rng, 4);
        let pretty = v.to_pretty_string();
        assert_eq!(Json::parse(&pretty).unwrap(), v, "pretty round-trip, case {case}");
        let compact = v.to_compact_string();
        assert_eq!(Json::parse(&compact).unwrap(), v, "compact round-trip, case {case}");
    }
}

#[test]
fn deeply_nested_values_round_trip() {
    // A 64-deep array/object ladder — far past anything a report emits.
    let mut v = Json::Int(7);
    for i in 0..64 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::Obj(vec![("level".to_owned(), v)])
        };
    }
    assert_eq!(Json::parse(&v.to_pretty_string()).unwrap(), v);
    assert_eq!(Json::parse(&v.to_compact_string()).unwrap(), v);
}

#[test]
fn escape_heavy_strings_round_trip() {
    for s in ["", "\"\\\n\r\t", "\u{1}\u{1f}", "µs & 💡", "say \"hi\"\\no", "trailing \\"] {
        let v = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&v.to_compact_string()).unwrap(), v, "string {s:?}");
    }
}

#[test]
fn nonfinite_floats_degrade_to_null_not_invalid_json() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut doc = Json::obj();
        doc.set("ok", 1.5f64);
        doc.set("bad", bad);
        doc.set("nested", Json::Arr(vec![Json::Num(bad), Json::Int(2)]));
        let text = doc.to_pretty_string();
        // The document must stay parseable; the non-finite slots read
        // back as null (JSON has no NaN/∞), everything else intact.
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("ok"), Some(&Json::Num(1.5)));
        assert_eq!(back.get("bad"), Some(&Json::Null));
        assert_eq!(
            back.get("nested").and_then(Json::as_arr),
            Some(&[Json::Null, Json::Int(2)][..])
        );
    }
}
