//! Abuse tests for the trace-tree span stack: unbalanced drop order and
//! cross-thread drops must not corrupt the tree, and the emitted Chrome
//! trace JSON must stay well-formed and lossless.
//!
//! The trace collector is process-global, so everything lives in ONE
//! test function — separate `#[test]`s would race on the shared state.

use incognito_obs::trace;
use incognito_obs::Json;

#[test]
fn span_stack_survives_abuse_and_chrome_json_stays_well_formed() {
    trace::clear();
    trace::set_enabled(true);

    // 1. Balanced nesting: a > b > c.
    {
        let mut a = trace::span("a").arg("x", 1u64);
        {
            let _b = trace::span("b");
            let _c = trace::span("c");
        }
        a.set_arg("y", 2u64);
    }

    // 2. Unbalanced drop order: the parent closes while its child is
    //    still open. Closing the parent truncates the leaked child off
    //    the stack; the child's later drop must find nothing and leave
    //    other spans alone.
    let parent = trace::span("unbalanced.parent");
    let child = trace::span("unbalanced.child");
    drop(parent);
    let sibling = trace::span("unbalanced.sibling");
    drop(child);
    drop(sibling);

    // 3. Cross-thread drop: a span opened here but dropped on another
    //    thread records there without touching that thread's stack, and
    //    spans opened on the other thread get their own root.
    let moved = trace::span("moved");
    std::thread::spawn(move || {
        let _other = trace::span("other.thread");
        drop(moved);
    })
    .join()
    .unwrap();

    // 4. After all that abuse, fresh nesting on this thread still works.
    {
        let _after = trace::span("after");
        let _leaf = trace::span("after.leaf");
    }

    trace::set_enabled(false);
    let records = trace::drain();
    let by_name = |name: &str| records.iter().find(|r| r.name == name).unwrap();

    // The balanced chain kept its parent links.
    assert_eq!(by_name("a").parent, None);
    assert_eq!(by_name("b").parent, Some(by_name("a").seq));
    assert_eq!(by_name("c").parent, Some(by_name("b").seq));
    assert_eq!(by_name("a").args.len(), 2, "both args survive");

    // The unbalanced child recorded, under its original parent; the
    // sibling opened after the parent closed is NOT a child of the
    // leaked child.
    assert_eq!(by_name("unbalanced.child").parent, Some(by_name("unbalanced.parent").seq));
    assert_ne!(by_name("unbalanced.sibling").parent, Some(by_name("unbalanced.child").seq));

    // Cross-thread: the other thread's own span is a root on its own
    // tid; the moved span kept the parentage from its opening thread.
    assert_eq!(by_name("other.thread").parent, None);
    assert_ne!(by_name("other.thread").tid, by_name("a").tid);
    assert_eq!(by_name("moved").parent, None);

    // Nesting after the abuse is intact (the stale "moved" entry on this
    // thread's stack may re-parent "after", but never corrupts below it).
    assert_eq!(by_name("after.leaf").parent, Some(by_name("after").seq));

    // The tree builder places every record exactly once, panics on
    // nothing, and the forest covers all records.
    let forest = trace::build_tree(&records);
    let mut seen = 0;
    let mut stack: Vec<&trace::TraceNode> = forest.iter().collect();
    while let Some(node) = stack.pop() {
        seen += 1;
        stack.extend(node.children.iter());
    }
    assert_eq!(seen, records.len());

    // Chrome trace JSON: parseable, every event a complete "X" phase
    // with non-negative timestamps/durations, and lossless.
    let doc = trace::to_chrome_json(&records);
    let reparsed = Json::parse(&doc.to_pretty_string()).expect("trace JSON must be valid");
    let events = reparsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), records.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "only complete events");
        assert!(!e.get("name").and_then(Json::as_str).unwrap_or("").is_empty());
        for field in ["ts", "dur"] {
            let v = match e.get(field) {
                Some(Json::Num(v)) => *v,
                Some(Json::Int(v)) => *v as f64,
                other => panic!("{field} must be a number, got {other:?}"),
            };
            assert!(v >= 0.0, "{field} must be non-negative");
        }
    }
    // Round-trip: structure and args are lossless; timestamps go
    // through the format's microsecond floats, so allow 1 ns of
    // conversion rounding.
    let back = trace::from_chrome_json(&doc).unwrap();
    assert_eq!(back.len(), records.len());
    for (b, r) in back.iter().zip(&records) {
        assert_eq!((&b.name, b.tid, b.seq, b.parent), (&r.name, r.tid, r.seq, r.parent));
        assert_eq!(b.args, r.args, "span {}", r.name);
        assert!(b.ts_ns.abs_diff(r.ts_ns) <= 1, "ts of {}: {} vs {}", r.name, b.ts_ns, r.ts_ns);
        assert!(b.dur_ns.abs_diff(r.dur_ns) <= 1, "dur of {}: {} vs {}", r.name, b.dur_ns, r.dur_ns);
    }

    // Draining emptied the collector.
    assert!(trace::drain().is_empty());
}
