//! Hierarchical trace trees: nested spans serialized to Chrome Trace
//! Event Format, loadable in Perfetto or `chrome://tracing`.
//!
//! Where [`crate::span`] feeds flat *timers* (aggregate count/total/max),
//! a [`TraceSpan`] records one **event per occurrence** with its position
//! in the call tree: each thread keeps a stack of open spans, a span's
//! parent is whatever was on top of that stack when it opened, and the
//! completed events land in a process-global collector. [`drain`] hands
//! the events back; [`write_chrome_trace`] serializes them as complete
//! (`"ph": "X"`) events with microsecond timestamps relative to a common
//! epoch, so the nesting Perfetto renders is exactly the nesting the
//! engines executed.
//!
//! Tracing is gated by its own flag, separate from the metrics flag:
//! metrics are cheap enough to leave on for a whole benchmark suite,
//! while tracing allocates one record per span and is meant for targeted
//! `--trace` runs. While disabled, [`span`] returns an inert guard — one
//! relaxed atomic load, no clock read, no allocation.
//!
//! The tree is rebuilt from parent links, not inferred from timestamp
//! containment, so unbalanced drops (a parent finished before its child,
//! a guard carried across threads) degrade a span into a root rather than
//! corrupting its siblings.
//!
//! When memory attribution is on ([`crate::mem::set_enabled`]), every
//! span additionally samples its thread's allocation counters at open and
//! close, recording the delta as `alloc_bytes`/`allocs` args plus the
//! process-wide `peak_live` high-water mark, and contributes one
//! `mem.live_bytes` [`CounterSample`] per close — exported as Chrome
//! `"ph": "C"` counter events, which Perfetto renders as a live-bytes
//! counter track under the trace. A guard dropped on a different thread
//! than it was opened on gets *no* memory args: the open-time sample
//! belongs to another thread's counter, so attributing the difference
//! would charge one thread's allocations to another. The span itself
//! still records (as a root, per the self-healing above).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Process-global switch for trace collection, independent of the metrics
/// flag. Off by default.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small sequential thread id (Chrome traces want integer tids).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The stack of currently open span sequence numbers on this thread.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The common clock origin for all span timestamps. Pinned when tracing is
/// first enabled (or at first use) so every `ts` is a small offset.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<TraceRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<TraceRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn counter_collector() -> &'static Mutex<Vec<CounterSample>> {
    static COLLECTOR: OnceLock<Mutex<Vec<CounterSample>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn trace collection on or off. Enabling pins the trace epoch.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Is trace collection currently enabled?
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Span name (the Chrome event `name`).
    pub name: String,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Process-wide open order; parents always have a smaller `seq` than
    /// their children.
    pub seq: u64,
    /// `seq` of the enclosing span, if any was open on the same thread.
    pub parent: Option<u64>,
    /// Open time in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Key/value annotations (the Chrome event `args`).
    pub args: Vec<(String, Json)>,
}

/// One sample of a numeric counter track (exported as a Chrome
/// `"ph": "C"` event, rendered by Perfetto as a counter graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Track name (e.g. `mem.live_bytes`).
    pub name: String,
    /// Small sequential id of the sampling thread.
    pub tid: u64,
    /// Sample time in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: u64,
}

/// Record one counter-track sample at the current time. No-op while trace
/// collection is disabled.
pub fn sample_counter(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let sample = CounterSample {
        name: name.to_owned(),
        tid: TID.with(|t| *t),
        ts_ns: duration_ns(Instant::now().saturating_duration_since(epoch())),
        value,
    };
    counter_collector().lock().unwrap().push(sample);
}

/// An RAII guard for one span of the trace tree. Obtain via [`span`];
/// records into the global collector on drop (or [`TraceSpan::finish`]).
#[must_use = "a trace span records on drop; binding it to `_` drops it immediately"]
pub struct TraceSpan {
    state: Option<SpanState>,
}

struct SpanState {
    name: String,
    tid: u64,
    seq: u64,
    parent: Option<u64>,
    start: Instant,
    args: Vec<(String, Json)>,
    /// This thread's (allocated_bytes, alloc_count) at open, when memory
    /// attribution was enabled; the close-time delta becomes the span's
    /// `alloc_bytes`/`allocs` args.
    mem_at_open: Option<(u64, u64)>,
}

/// Open a span named `name`, nested under the innermost span currently
/// open on this thread. Inert (no clock read, no allocation) while trace
/// collection is disabled.
pub fn span(name: impl Into<String>) -> TraceSpan {
    if !enabled() {
        return TraceSpan { state: None };
    }
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let tid = TID.with(|t| *t);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(seq);
        parent
    });
    let mem_at_open = if crate::mem::enabled() {
        Some((crate::mem::thread_allocated_bytes(), crate::mem::thread_alloc_count()))
    } else {
        None
    };
    TraceSpan {
        state: Some(SpanState {
            name: name.into(),
            tid,
            seq,
            parent,
            start: Instant::now(),
            args: Vec::new(),
            mem_at_open,
        }),
    }
}

impl TraceSpan {
    /// True when this span will record on drop. Use to skip computing
    /// expensive argument values in instrumented hot paths.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Attach (or replace) an annotation; builder form of
    /// [`TraceSpan::set_arg`].
    pub fn arg(mut self, key: &str, value: impl Into<Json>) -> TraceSpan {
        self.set_arg(key, value);
        self
    }

    /// Attach (or replace) an annotation. No-op on an inert span.
    pub fn set_arg(&mut self, key: &str, value: impl Into<Json>) {
        if let Some(state) = &mut self.state {
            match state.args.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value.into(),
                None => state.args.push((key.to_owned(), value.into())),
            }
        }
    }

    /// Record now instead of at end of scope.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        let Some(mut state) = self.state.take() else { return };
        let dur = state.start.elapsed();
        // Attribute this thread's allocation delta to the span — but only
        // when the guard closes on the thread that opened it; the open
        // sample belongs to that thread's counter, so a cross-thread drop
        // gets no memory args rather than a misattributed delta.
        if let Some((bytes_at_open, count_at_open)) = state.mem_at_open {
            if TID.with(|t| *t) == state.tid {
                let alloc_bytes =
                    crate::mem::thread_allocated_bytes().saturating_sub(bytes_at_open);
                let allocs = crate::mem::thread_alloc_count().saturating_sub(count_at_open);
                state.args.push(("alloc_bytes".to_owned(), Json::from(alloc_bytes)));
                state.args.push(("allocs".to_owned(), Json::from(allocs)));
                state
                    .args
                    .push(("peak_live".to_owned(), Json::from(crate::mem::peak_live_bytes())));
                sample_counter("mem.live_bytes", crate::mem::live_bytes());
            }
        }
        // Pop this span off its thread's stack. A guard dropped on a
        // different thread (or after its parent) simply is not found and
        // leaves the other thread's stack alone; truncating at the found
        // position also clears any children that were leaked open.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&q| q == state.seq) {
                s.truncate(pos);
            }
        });
        let record = TraceRecord {
            name: state.name,
            tid: state.tid,
            seq: state.seq,
            parent: state.parent,
            ts_ns: duration_ns(state.start.saturating_duration_since(epoch())),
            dur_ns: duration_ns(dur),
            args: state.args,
        };
        collector().lock().unwrap().push(record);
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.record();
    }
}

fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Take every collected record out of the global collector, sorted by
/// open order (`seq`). Subsequent spans start a fresh trace.
pub fn drain() -> Vec<TraceRecord> {
    let mut records = std::mem::take(&mut *collector().lock().unwrap());
    records.sort_by_key(|r| r.seq);
    records
}

/// Take every collected counter sample out of the global collector,
/// sorted by sample time.
pub fn drain_counter_samples() -> Vec<CounterSample> {
    let mut samples = std::mem::take(&mut *counter_collector().lock().unwrap());
    samples.sort_by_key(|s| s.ts_ns);
    samples
}

/// Discard all collected records and counter samples without returning
/// them.
pub fn clear() {
    collector().lock().unwrap().clear();
    counter_collector().lock().unwrap().clear();
}

/// Render records as a Chrome Trace Event Format document: an object with
/// a `traceEvents` array of complete (`"ph": "X"`) events, timestamps and
/// durations in (fractional) microseconds. `seq`/`parent_seq` ride along
/// inside each event's `args` so [`from_chrome_json`] can rebuild the
/// exact tree; Perfetto ignores them.
pub fn to_chrome_json(records: &[TraceRecord]) -> Json {
    to_chrome_json_with_counters(records, &[])
}

/// [`to_chrome_json`] plus counter tracks: each [`CounterSample`] becomes
/// a `"ph": "C"` event, which Perfetto renders as a counter graph (one
/// track per sample name) alongside the span rows.
pub fn to_chrome_json_with_counters(records: &[TraceRecord], samples: &[CounterSample]) -> Json {
    let mut events: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut args = Json::obj();
            args.set("seq", r.seq);
            match r.parent {
                Some(p) => args.set("parent_seq", p),
                None => args.set("parent_seq", Json::Null),
            };
            for (k, v) in &r.args {
                args.set(k, v.clone());
            }
            let mut e = Json::obj();
            e.set("name", r.name.as_str());
            e.set("cat", "incognito");
            e.set("ph", "X");
            e.set("ts", r.ts_ns as f64 / 1_000.0);
            e.set("dur", r.dur_ns as f64 / 1_000.0);
            e.set("pid", 1u64);
            e.set("tid", r.tid);
            e.set("args", args);
            e
        })
        .collect();
    for s in samples {
        let mut args = Json::obj();
        args.set("value", s.value);
        let mut e = Json::obj();
        e.set("name", s.name.as_str());
        e.set("cat", "incognito");
        e.set("ph", "C");
        e.set("ts", s.ts_ns as f64 / 1_000.0);
        e.set("pid", 1u64);
        e.set("tid", s.tid);
        e.set("args", args);
        events.push(e);
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events));
    doc.set("displayTimeUnit", "ms");
    doc
}

/// Serialize `records` as Chrome Trace Event Format JSON, re-parse the
/// output as a self-check (like [`crate::RunReport::write_to`]), and write
/// it to `path`, creating parent directories. Returns bytes written.
pub fn write_chrome_trace(path: &Path, records: &[TraceRecord]) -> io::Result<usize> {
    write_chrome_trace_with_counters(path, records, &[])
}

/// [`write_chrome_trace`] plus counter tracks (see
/// [`to_chrome_json_with_counters`]).
pub fn write_chrome_trace_with_counters(
    path: &Path,
    records: &[TraceRecord],
    samples: &[CounterSample],
) -> io::Result<usize> {
    let text = to_chrome_json_with_counters(records, samples).to_pretty_string();
    if let Err(e) = Json::parse(&text) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace failed its own JSON round-trip: {e}"),
        ));
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, &text)?;
    Ok(text.len())
}

/// Parse a Chrome Trace Event Format document (an object with
/// `traceEvents`, or a bare event array) back into [`TraceRecord`]s.
/// Only complete (`"ph": "X"`) events are kept; events written by other
/// tools (without `seq` in `args`) get synthetic sequence numbers and no
/// parent, i.e. they load as a forest of roots.
pub fn from_chrome_json(doc: &Json) -> Result<Vec<TraceRecord>, String> {
    let events = match doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("document has no traceEvents array")?,
        _ => return Err("expected a trace object or event array".to_owned()),
    };
    let mut max_seq = 0u64;
    let mut records = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = e.get("name").and_then(Json::as_str).unwrap_or("?").to_owned();
        let tid = e.get("tid").and_then(Json::as_int).unwrap_or(0).max(0) as u64;
        let micros = |key: &str| -> f64 {
            match e.get(key) {
                Some(Json::Num(v)) => *v,
                Some(Json::Int(v)) => *v as f64,
                _ => 0.0,
            }
        };
        let args_json = e.get("args");
        let seq = args_json
            .and_then(|a| a.get("seq"))
            .and_then(Json::as_int)
            .map(|v| v.max(0) as u64);
        let parent = args_json
            .and_then(|a| a.get("parent_seq"))
            .and_then(Json::as_int)
            .map(|v| v.max(0) as u64);
        let mut args = Vec::new();
        if let Some(Json::Obj(fields)) = args_json {
            for (k, v) in fields {
                if k != "seq" && k != "parent_seq" {
                    args.push((k.clone(), v.clone()));
                }
            }
        }
        records.push(TraceRecord {
            name,
            tid,
            seq: seq.unwrap_or(0),
            parent,
            ts_ns: (micros("ts").max(0.0) * 1_000.0) as u64,
            dur_ns: (micros("dur").max(0.0) * 1_000.0) as u64,
            args,
        });
        max_seq = max_seq.max(seq.unwrap_or(0));
    }
    // Synthesize sequence numbers for foreign events (seq 0 is reserved).
    for r in &mut records {
        if r.seq == 0 {
            max_seq += 1;
            r.seq = max_seq;
        }
    }
    records.sort_by_key(|r| r.seq);
    Ok(records)
}

/// One node of a rebuilt trace tree: an index into the record slice the
/// tree was built from, plus its children in open order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Index of this span in the records slice passed to [`build_tree`].
    pub index: usize,
    /// Child spans, ordered by open time.
    pub children: Vec<TraceNode>,
}

/// Rebuild the span forest from parent links. A record whose parent is
/// absent (never closed, foreign trace, cross-thread drop) becomes a
/// root; nothing panics on malformed input.
pub fn build_tree(records: &[TraceRecord]) -> Vec<TraceNode> {
    let by_seq: HashMap<u64, usize> =
        records.iter().enumerate().map(|(i, r)| (r.seq, i)).collect();
    // children[i] = indices of records whose parent is record i.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut roots: Vec<usize> = Vec::new();
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| records[i].seq);
    for &i in &order {
        match records[i].parent.and_then(|p| by_seq.get(&p)).copied() {
            // A self-parenting record (malformed input) is a root too.
            Some(p) if p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    fn assemble(index: usize, children: &[Vec<usize>]) -> TraceNode {
        TraceNode {
            index,
            children: children[index].iter().map(|&c| assemble(c, children)).collect(),
        }
    }
    roots.into_iter().map(|i| assemble(i, &children)).collect()
}

/// One row of an aggregated span profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations.
    pub total_ns: u64,
    /// Sum of their durations minus their direct children's durations
    /// (time attributable to the span itself).
    pub self_ns: u64,
    /// Largest single duration.
    pub max_ns: u64,
}

/// Aggregate records by span name, with self-time computed from the
/// rebuilt tree. Rows are sorted by total duration, descending.
pub fn profile(records: &[TraceRecord]) -> Vec<ProfileRow> {
    let mut child_ns: Vec<u64> = vec![0; records.len()];
    let forest = build_tree(records);
    let mut stack: Vec<&TraceNode> = forest.iter().collect();
    while let Some(node) = stack.pop() {
        child_ns[node.index] =
            node.children.iter().map(|c| records[c.index].dur_ns).sum();
        stack.extend(node.children.iter());
    }
    let mut rows: HashMap<&str, ProfileRow> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let row = rows.entry(r.name.as_str()).or_insert_with(|| ProfileRow {
            name: r.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
        });
        row.count += 1;
        row.total_ns += r.dur_ns;
        row.self_ns += r.dur_ns.saturating_sub(child_ns[i]);
        row.max_ns = row.max_ns.max(r.dur_ns);
    }
    let mut rows: Vec<ProfileRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, seq: u64, parent: Option<u64>, ts: u64, dur: u64) -> TraceRecord {
        TraceRecord {
            name: name.to_owned(),
            tid: 1,
            seq,
            parent,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn tree_follows_parent_links() {
        let records = vec![
            rec("root", 1, None, 0, 100),
            rec("child", 2, Some(1), 10, 40),
            rec("grandchild", 3, Some(2), 15, 10),
            rec("sibling", 4, Some(1), 60, 30),
        ];
        let forest = build_tree(&records);
        assert_eq!(forest.len(), 1);
        assert_eq!(records[forest[0].index].name, "root");
        assert_eq!(forest[0].children.len(), 2);
        assert_eq!(records[forest[0].children[0].index].name, "child");
        assert_eq!(forest[0].children[0].children.len(), 1);
    }

    #[test]
    fn orphans_and_self_parents_become_roots() {
        let records = vec![
            rec("orphan", 2, Some(99), 0, 10),
            rec("selfie", 3, Some(3), 20, 10),
        ];
        let forest = build_tree(&records);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn profile_computes_self_time() {
        let records = vec![
            rec("outer", 1, None, 0, 100),
            rec("inner", 2, Some(1), 10, 30),
            rec("inner", 3, Some(1), 50, 20),
        ];
        let rows = profile(&records);
        assert_eq!(rows[0].name, "outer");
        assert_eq!(rows[0].total_ns, 100);
        assert_eq!(rows[0].self_ns, 50);
        assert_eq!(rows[1].name, "inner");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].self_ns, 50);
    }

    #[test]
    fn chrome_json_round_trips_records() {
        let mut records = vec![
            rec("root", 1, None, 0, 100_000),
            rec("child", 2, Some(1), 10_000, 40_000),
        ];
        records[1].args.push(("via".to_owned(), Json::from("rollup")));
        records[1].args.push(("anonymous".to_owned(), Json::Bool(true)));
        let doc = to_chrome_json(&records);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        }
        let back = from_chrome_json(&doc).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "root");
        assert_eq!(back[1].parent, Some(1));
        assert_eq!(back[1].args, records[1].args);
        assert_eq!(back[1].ts_ns, 10_000);
        assert_eq!(back[1].dur_ns, 40_000);
    }

    // Trace + mem attribution flags are process-global; this is the only
    // test in the obs binary that enables them or drains the collectors,
    // so it exercises the whole live-span protocol serially.
    #[test]
    fn spans_attribute_allocation_deltas_and_counter_samples() {
        set_enabled(true);
        crate::mem::set_enabled(true);
        let outer = span("mem_attr_test");
        let v: Vec<u8> = Vec::with_capacity(1 << 18);
        outer.finish();
        drop(v);
        crate::mem::set_enabled(false);
        set_enabled(false);

        let records = drain();
        let r = records.iter().find(|r| r.name == "mem_attr_test").expect("span recorded");
        let get = |k: &str| {
            r.args.iter().find(|(key, _)| key == k).and_then(|(_, v)| v.as_int())
        };
        assert!(get("alloc_bytes").expect("alloc_bytes arg") >= 1 << 18);
        assert!(get("allocs").expect("allocs arg") >= 1);
        assert!(get("peak_live").expect("peak_live arg") > 0);

        let samples = drain_counter_samples();
        assert!(
            samples.iter().any(|s| s.name == "mem.live_bytes" && s.value > 0),
            "span close must sample the live-bytes counter track"
        );
    }

    #[test]
    fn counter_samples_export_as_ph_c_events() {
        let records = vec![rec("root", 1, None, 0, 100_000)];
        let samples = vec![CounterSample {
            name: "mem.live_bytes".to_owned(),
            tid: 1,
            ts_ns: 5_000,
            value: 42,
        }];
        let doc = to_chrome_json_with_counters(&records, &samples);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        let c = &events[1];
        assert_eq!(c.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(c.get("name").and_then(Json::as_str), Some("mem.live_bytes"));
        assert_eq!(
            c.get("args").and_then(|a| a.get("value")).and_then(Json::as_int),
            Some(42)
        );
        // Counter events are render-only: the span loader skips them.
        assert_eq!(from_chrome_json(&doc).unwrap().len(), 1);
    }

    #[test]
    fn foreign_events_load_as_roots() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":7},
            {"name":"meta","ph":"M","args":{"name":"process_name"}},
            {"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":7}
        ]}"#;
        let records = from_chrome_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(records.len(), 2); // the "M" metadata event is skipped
        assert!(records.iter().all(|r| r.parent.is_none() && r.seq > 0));
        assert_eq!(records[0].ts_ns, 1_500);
        assert_eq!(build_tree(&records).len(), 2);
    }
}
