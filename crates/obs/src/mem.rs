//! A tracking global allocator: per-thread and global allocation counters.
//!
//! Incognito's efficiency argument is as much about bounded *state* as
//! bounded work — frequency-set caches, rollup reuse, and the zero-cube all
//! trade memory for scans — so peak memory is a first-class signal next to
//! `nodes_checked`. This module wraps [`std::alloc::System`] in a
//! zero-dependency [`TrackingAlloc`] installed as the workspace's
//! `#[global_allocator]`, maintaining:
//!
//! * **global** counters — bytes allocated / freed, live bytes, allocation
//!   and free counts, and a peak-live high-water mark (`fetch_max`), read
//!   via [`stats`];
//! * **per-thread** counters — allocated bytes and allocation count in
//!   const-initialised `thread_local!` cells, read via
//!   [`thread_allocated_bytes`] / [`thread_alloc_count`]. These are what
//!   [`crate::trace::TraceSpan`] samples at open and close to attribute an
//!   allocation delta to each span; because a work-stealing pool's
//!   `exec.task` spans open and close on the worker that actually ran the
//!   task, per-worker attribution survives stealing for free.
//!
//! # Always-on counting, opt-in attribution
//!
//! Raw counting is **always on**: every path is a handful of relaxed
//! atomic adds plus two plain thread-local `Cell` bumps — cheaper than the
//! `malloc` call it decorates, and always-on counting means every `dealloc`
//! subtracts an allocation that was previously added, so `live` can never
//! underflow. What *is* gated (by [`set_enabled`], off by default) is
//! attribution: trace spans only snapshot the thread-local counters and
//! attach `alloc_bytes` / `peak_live` args — and only emit `mem.live_bytes`
//! Perfetto counter samples — while memory observation is enabled.
//!
//! # Reentrancy
//!
//! Allocator code must never allocate. The counters here are plain atomics
//! and const-initialised `Cell<u64>` thread-locals: no `Drop` impl, no lazy
//! initialiser, no destructor registration, hence no recursion into the
//! allocator and no TLS-destruction panics (`try_with` guards the
//! teardown window regardless).

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; the only unsafe here
                       // is delegating verbatim to `System`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::json::Json;

/// Gates *attribution* (span args + Perfetto counter samples), not the raw
/// counting, which is always on. Off by default.
static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Turn memory *attribution* on or off (span `alloc_bytes`/`peak_live`
/// args and `mem.live_bytes` trace counter samples). The underlying
/// counters run unconditionally either way.
pub fn set_enabled(on: bool) {
    MEM_ENABLED.store(on, Ordering::Relaxed);
}

/// Is memory attribution currently enabled?
#[inline]
pub fn enabled() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn on_alloc(size: u64) {
    ALLOCATED_BYTES.fetch_add(size, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = TL_ALLOCATED_BYTES.try_with(|c| c.set(c.get() + size));
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn on_dealloc(size: u64) {
    FREED_BYTES.fetch_add(size, Ordering::Relaxed);
    FREES.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

/// The tracking allocator. Installed once, in this crate, as
/// `#[global_allocator]`; every workspace binary that links
/// `incognito-obs` (all of them) gets it.
pub struct TrackingAlloc;

// SAFETY: every method delegates verbatim to `System` and only touches
// atomics / non-Drop thread-locals on the side, so the GlobalAlloc
// contract (layout fidelity, no recursion, no unwinding) is System's own.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: TrackingAlloc = TrackingAlloc;

/// A point-in-time copy of the global allocation counters.
///
/// `allocated_bytes`/`freed_bytes`/`allocs`/`frees` are monotone totals
/// since process start; `live_bytes` is their running difference and
/// `peak_live_bytes` its high-water mark (resettable via [`reset_peak`]
/// for per-phase peaks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Total bytes handed out by the allocator since process start.
    pub allocated_bytes: u64,
    /// Total bytes returned to the allocator since process start.
    pub freed_bytes: u64,
    /// Bytes currently live (`allocated - freed`).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since start (or the last
    /// [`reset_peak`]).
    pub peak_live_bytes: u64,
    /// Number of allocations (reallocs count once more).
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
}

impl MemStats {
    /// `self - earlier` for the monotone totals (saturating); `live_bytes`
    /// and `peak_live_bytes` keep `self`'s point-in-time values, which is
    /// what a per-run record wants: *flow* as a delta, *occupancy* as-is.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            freed_bytes: self.freed_bytes.saturating_sub(earlier.freed_bytes),
            live_bytes: self.live_bytes,
            peak_live_bytes: self.peak_live_bytes,
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
        }
    }

    /// Render as the `memory` JSON object used in run reports.
    pub fn to_json(&self) -> Json {
        let mut m = Json::obj();
        m.set("peak_live_bytes", self.peak_live_bytes);
        m.set("live_bytes", self.live_bytes);
        m.set("allocated_bytes", self.allocated_bytes);
        m.set("freed_bytes", self.freed_bytes);
        m.set("allocs", self.allocs);
        m.set("frees", self.frees);
        m
    }
}

/// Snapshot the global counters.
///
/// The fields are read individually (relaxed) while other threads may be
/// allocating, so they are not a single consistent cut — good enough for
/// reporting, never for invariants.
pub fn stats() -> MemStats {
    MemStats {
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

/// Restart the peak-live high-water mark from the current live level, so
/// the next [`stats`] reports the peak *since this call*. Benchmarks call
/// this at the start of each run to get per-run peaks.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// This thread's total allocated bytes. Monotone; spans subtract an
/// open-time sample from a close-time sample to get their `alloc_bytes`.
#[inline]
pub fn thread_allocated_bytes() -> u64 {
    TL_ALLOCATED_BYTES.with(|c| c.get())
}

/// This thread's total allocation count (see [`thread_allocated_bytes`]).
#[inline]
pub fn thread_alloc_count() -> u64 {
    TL_ALLOCS.with(|c| c.get())
}

/// Current live bytes (cheap single load, for counter-track sampling).
#[inline]
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Current peak-live bytes since start or the last [`reset_peak`].
#[inline]
pub fn peak_live_bytes() -> u64 {
    PEAK_LIVE_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_known_allocation() {
        let before = stats();
        let tl_bytes = thread_allocated_bytes();
        let tl_count = thread_alloc_count();
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        let mid = stats();
        assert!(mid.allocated_bytes >= before.allocated_bytes + (1 << 20));
        assert!(mid.live_bytes >= 1 << 20);
        assert!(mid.peak_live_bytes >= mid.live_bytes.saturating_sub(1024));
        assert!(thread_allocated_bytes() >= tl_bytes + (1 << 20));
        assert!(thread_alloc_count() > tl_count);
        drop(v);
        let after = stats();
        assert!(after.freed_bytes >= before.freed_bytes + (1 << 20));
        assert!(after.frees > before.frees);
    }

    #[test]
    fn realloc_accounts_growth_against_live() {
        let before = stats();
        let mut v: Vec<u8> = vec![0; 4096];
        v.reserve_exact(1 << 16); // forces realloc of the 4 KiB block
        let after = stats();
        assert!(after.allocated_bytes - before.allocated_bytes >= 4096 + (1 << 16));
        assert!(after.live_bytes > before.live_bytes);
        drop(v);
    }

    #[test]
    fn delta_subtracts_flows_and_keeps_occupancy() {
        let a = MemStats {
            allocated_bytes: 100,
            freed_bytes: 40,
            live_bytes: 60,
            peak_live_bytes: 80,
            allocs: 10,
            frees: 4,
        };
        let b = MemStats {
            allocated_bytes: 300,
            freed_bytes: 140,
            live_bytes: 160,
            peak_live_bytes: 200,
            allocs: 25,
            frees: 11,
        };
        let d = b.delta(&a);
        assert_eq!(d.allocated_bytes, 200);
        assert_eq!(d.freed_bytes, 100);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.frees, 7);
        assert_eq!(d.live_bytes, 160);
        assert_eq!(d.peak_live_bytes, 200);
    }

    #[test]
    fn reset_peak_rebases_to_current_live() {
        let spike: Vec<u8> = vec![0; 1 << 21];
        drop(spike);
        reset_peak();
        let s = stats();
        // Other test threads may allocate concurrently, but the rebased
        // peak cannot still sit a whole spike above live.
        assert!(s.peak_live_bytes < s.live_bytes + (1 << 21));
    }

    #[test]
    fn json_shape_matches_report_schema() {
        let s = stats();
        let j = s.to_json();
        for key in
            ["peak_live_bytes", "live_bytes", "allocated_bytes", "freed_bytes", "allocs", "frees"]
        {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("allocs").and_then(Json::as_int), Some(s.allocs as i64));
    }
}
