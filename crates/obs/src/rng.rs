//! A small deterministic PRNG: xoshiro256\*\* seeded via splitmix64.
//!
//! This is the workspace's only randomness source — the synthetic data
//! generators (`incognito-data`) and the seeded property-style tests all
//! draw from it, so the whole build stays free of external crates and
//! every "random" artifact is reproducible from a single `u64` seed.
//!
//! Not cryptographic. Not intended to be: it exists to shape census-like
//! skew and to enumerate test cases, both of which only need good
//! equidistribution and speed.

/// xoshiro256\*\* (Blackman & Vigna), seeded with splitmix64 so that every
/// `u64` seed — including 0 — yields a well-mixed nonzero state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministic construction from a single seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        // splitmix64 stream to fill the state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (slight modulo
    /// bias of < 2⁻⁶⁴·bound, irrelevant at our bounds). Panics if
    /// `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range_usize: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty or non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && (hi - lo).is_finite(), "Rng::range_f64: bad range {lo}..{hi}");
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() { None } else { Some(&items[self.range_usize(0, items.len())]) }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0x1ce5_0a11);
        let mut b = Rng::seed_from_u64(0x1ce5_0a11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge_even_for_zero() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn f64_stays_in_unit_interval_and_looks_uniform() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_bounds_and_covers_small_domains() {
        let mut rng = Rng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((8800..=9200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    fn choose_is_none_only_on_empty() {
        let mut rng = Rng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }
}
