//! Observability substrate for the Incognito workspace.
//!
//! The paper's entire evaluation (§4.2, Figures 9–12) is an accounting
//! exercise: count table scans, rollups, and nodes searched, and time each
//! phase. This crate is the shared instrumentation layer that makes those
//! numbers first-class across the stack:
//!
//! * [`MetricsRegistry`] — named atomic counters and timers, snapshotted to
//!   an immutable [`MetricsSnapshot`] that supports `diff`.
//! * [`Span`] — RAII monotonic-clock timing; a no-op unless observation is
//!   enabled.
//! * [`Json`] / [`RunReport`] — a hand-rolled (zero-dependency) JSON value
//!   with writer and parser, and the `BENCH_<name>.json` report builder the
//!   bench bins emit alongside their CSVs.
//! * [`trace`] — hierarchical trace trees: nesting [`TraceSpan`]s with
//!   key/value args, exported as Chrome Trace Event Format JSON for
//!   Perfetto / `chrome://tracing` (gated by its own flag, see the module
//!   docs).
//! * [`mem`] — a tracking `#[global_allocator]` wrapping `System`:
//!   per-thread and global allocation counters (live bytes, peak
//!   high-water, alloc counts) that trace spans attribute to themselves
//!   (see the module docs for the always-on-counting / opt-in-attribution
//!   split).
//! * [`Rng`] — a tiny deterministic PRNG (xoshiro256\*\*) used by the data
//!   generators and property-style tests, so the workspace needs no
//!   external `rand` crate. It lives here, at the bottom of the dependency
//!   graph, because every layer's tests want it and a dev-dependency from
//!   `incognito-hierarchy` on `incognito-data` would cycle.
//!
//! # Overhead contract
//!
//! All recording funnels through a single process-global `AtomicBool`
//! (relaxed load). When observation is **disabled** (the default) every
//! probe — counter adds included — is one relaxed load and a branch;
//! instrumented code records at *call* granularity (one add of `n_rows` per
//! scan, never one per row), so the disabled cost is unmeasurable against
//! any real scan or group-by. Benchmarks and examples opt in with
//! [`set_enabled`]`(true)`.

// `deny`, not `forbid`: the `mem` module needs `unsafe impl GlobalAlloc`
// (scoped allow in that file); everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

pub mod json;
pub mod mem;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod span;
pub mod trace;

pub use json::{Json, JsonError};
pub use mem::MemStats;
pub use metrics::{
    CounterHandle, GaugeHandle, MetricValue, MetricsRegistry, MetricsSnapshot, TimerHandle,
    TimerValue,
};
pub use report::RunReport;
pub use rng::Rng;
pub use span::Span;
pub use trace::{TraceRecord, TraceSpan};

/// Process-global switch for all observation. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn observation on or off globally. Instrumentation probes compiled
/// into the engines become live (or revert to no-ops) immediately.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is observation currently enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry that the engine probes record into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Add `v` to the named global counter. No-op while observation is
/// disabled — one relaxed atomic load.
#[inline]
pub fn add(name: &str, v: u64) {
    if enabled() {
        global().counter(name).add(v);
    }
}

/// Increment the named global counter by one (see [`add`]).
#[inline]
pub fn incr(name: &str) {
    add(name, 1);
}

/// Set the named global gauge to `v` (occupancy-style metrics: cache
/// entries, resident bytes). No-op while observation is disabled.
#[inline]
pub fn gauge_set(name: &str, v: i64) {
    if enabled() {
        global().gauge(name).set(v);
    }
}

/// Add `v` (possibly negative) to the named global gauge. No-op while
/// observation is disabled.
#[inline]
pub fn gauge_add(name: &str, v: i64) {
    if enabled() {
        global().gauge(name).add(v);
    }
}

/// Open a timing span against the named global timer. Returns an inert
/// span (no clock read, nothing recorded on drop) while observation is
/// disabled.
#[inline]
pub fn span(name: &str) -> Span {
    if enabled() {
        Span::active(global().timer(name))
    } else {
        Span::inert()
    }
}

/// Record an externally measured duration against the named global timer.
/// No-op while observation is disabled.
#[inline]
pub fn record_duration(name: &str, d: Duration) {
    if enabled() {
        global().timer(name).record(d);
    }
}

/// Snapshot the global registry (works whether or not observation is
/// currently enabled — it reads whatever has been recorded so far).
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Reset every metric in the global registry to zero. Handy between
/// repetitions in benchmarks; prefer [`MetricsSnapshot::diff`] when runs
/// may interleave.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag is shared across the test binary, so this
    // single test exercises the whole disabled/enabled protocol serially.
    #[test]
    fn global_probes_respect_the_enabled_flag() {
        set_enabled(false);
        add("lib.test.counter", 5);
        {
            let _s = span("lib.test.span");
        }
        let before = snapshot();
        assert_eq!(before.counter("lib.test.counter"), 0);
        assert_eq!(before.timer("lib.test.span").count, 0);

        set_enabled(true);
        add("lib.test.counter", 5);
        incr("lib.test.counter");
        {
            let _s = span("lib.test.span");
        }
        record_duration("lib.test.span", Duration::from_micros(3));
        set_enabled(false);

        let after = snapshot();
        assert_eq!(after.counter("lib.test.counter"), 6);
        let t = after.timer("lib.test.span");
        assert_eq!(t.count, 2);
        assert!(t.total >= Duration::from_micros(3));

        let d = after.diff(&before);
        assert_eq!(d.counter("lib.test.counter"), 6);
        assert_eq!(d.timer("lib.test.span").count, 2);
    }
}
