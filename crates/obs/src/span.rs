//! RAII monotonic-clock timing spans.
//!
//! A [`Span`] reads `Instant::now()` when opened and records the elapsed
//! duration into its timer when dropped. An *inert* span (what
//! [`crate::span`] hands out while observation is disabled) carries no
//! timer and never touches the clock, so leaving probes in hot paths is
//! free in the disabled case.

use std::time::Instant;

use crate::metrics::TimerHandle;

/// A scope timer. Construct via [`crate::span`] (global registry, gated on
/// the enabled flag) or [`Span::active`] against an explicit timer.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    state: Option<(TimerHandle, Instant)>,
}

impl Span {
    /// A live span recording into `timer` when dropped.
    pub fn active(timer: TimerHandle) -> Span {
        Span { state: Some((timer, Instant::now())) }
    }

    /// A span that does nothing — no clock read, nothing recorded.
    pub fn inert() -> Span {
        Span { state: None }
    }

    /// True when this span will record on drop.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Record now instead of at end of scope (idempotent; drop becomes a
    /// no-op afterwards).
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some((timer, started)) = self.state.take() {
            timer.record(started.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn active_span_records_once_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let s = Span::active(reg.timer("op"));
            assert!(s.is_active());
        }
        assert_eq!(reg.snapshot().timer("op").count, 1);
    }

    #[test]
    fn finish_preempts_drop() {
        let reg = MetricsRegistry::new();
        let s = Span::active(reg.timer("op"));
        s.finish();
        assert_eq!(reg.snapshot().timer("op").count, 1);
    }

    #[test]
    fn inert_span_records_nothing() {
        let reg = MetricsRegistry::new();
        {
            let s = Span::inert();
            assert!(!s.is_active());
        }
        assert!(reg.snapshot().is_empty());
    }
}
