//! Machine-readable run reports: the `BENCH_<name>.json` format.
//!
//! A [`RunReport`] is an ordered JSON object with a handful of typed
//! helpers (metrics snapshots, provenance) and a self-validating writer:
//! after serializing, the written text is re-parsed with this crate's own
//! JSON parser before it hits disk, so a malformed report is a hard error
//! at the producing site rather than a mystery downstream.

use std::io;
use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::{MetricValue, MetricsSnapshot};

/// Builder for one machine-readable run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    root: Json,
}

impl RunReport {
    /// A fresh report. `name` becomes the leading `"name"` field and, by
    /// convention, the `BENCH_<name>.json` file stem.
    pub fn new(name: &str) -> RunReport {
        let mut root = Json::obj();
        root.set("name", name);
        RunReport { root }
    }

    /// Set a top-level field (appends, or replaces an existing key).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut RunReport {
        self.root.set(key, value);
        self
    }

    /// Attach a metrics snapshot under `key` (see [`snapshot_to_json`]).
    pub fn set_metrics(&mut self, key: &str, snapshot: &MetricsSnapshot) -> &mut RunReport {
        self.root.set(key, snapshot_to_json(snapshot));
        self
    }

    /// Record provenance: report-format version, unix timestamp, and — when
    /// the binary runs inside a git checkout — `git describe`.
    pub fn set_provenance(&mut self, tool_version: &str) -> &mut RunReport {
        self.root.set("report_version", 1i64);
        self.root.set("tool_version", tool_version);
        self.root.set("unix_time", unix_timestamp());
        match git_describe() {
            Some(desc) => self.root.set("git", desc),
            None => self.root.set("git", Json::Null),
        };
        self
    }

    /// The report's name field.
    pub fn name(&self) -> &str {
        self.root.get("name").and_then(Json::as_str).unwrap_or("")
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> &Json {
        &self.root
    }

    /// Serialize pretty-printed, re-parse as a self-check, and write to
    /// `path` (creating parent directories). Returns the number of bytes
    /// written.
    pub fn write_to(&self, path: &Path) -> io::Result<usize> {
        let text = self.root.to_pretty_string();
        if let Err(e) = Json::parse(&text) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("report failed its own JSON round-trip: {e}"),
            ));
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &text)?;
        Ok(text.len())
    }
}

/// Render a snapshot as an ordered JSON object: counters become integers,
/// timers become `{count, total_ns, mean_ns, max_ns, hist}` where `hist`
/// lists the non-empty power-of-two buckets as `[bit_length, count]`
/// pairs.
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> Json {
    let mut obj = Json::obj();
    for (name, value) in snapshot.iter() {
        match value {
            MetricValue::Counter(v) => {
                obj.set(name, *v);
            }
            MetricValue::Gauge(v) => {
                obj.set(name, *v);
            }
            MetricValue::Timer(t) => {
                let mut timer = Json::obj();
                timer.set("count", t.count);
                timer.set("total_ns", duration_ns(t.total));
                timer.set("mean_ns", duration_ns(t.mean()));
                timer.set("max_ns", duration_ns(t.max));
                let hist: Vec<Json> = t
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(bit, &n)| Json::Arr(vec![Json::from(bit), Json::from(n)]))
                    .collect();
                timer.set("hist", Json::Arr(hist));
                obj.set(name, timer);
            }
        }
    }
    obj
}

fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Seconds since the unix epoch (0 if the clock is before it).
pub fn unix_timestamp() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// `git describe --always --dirty`, or `None` when not in a checkout / git
/// is unavailable. Never fails — provenance is best-effort.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let desc = String::from_utf8(out.stdout).ok()?;
    let desc = desc.trim();
    if desc.is_empty() { None } else { Some(desc.to_owned()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn report_builds_in_insertion_order_and_round_trips() {
        let mut r = RunReport::new("fig09_datasets");
        r.set("dataset", "adults").set("k", 2u64).set("rows", 45_222usize);
        assert_eq!(r.name(), "fig09_datasets");
        let text = r.to_json().to_pretty_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("name").and_then(Json::as_str), Some("fig09_datasets"));
        assert_eq!(back.get("k").and_then(Json::as_int), Some(2));
        // Name stays the leading field.
        assert!(text.trim_start().starts_with("{\n  \"name\""));
    }

    #[test]
    fn snapshot_renders_counters_and_timers() {
        let reg = MetricsRegistry::new();
        reg.counter("table.scan.count").add(3);
        reg.timer("table.scan.time").record(Duration::from_micros(10));
        let j = snapshot_to_json(&reg.snapshot());
        assert_eq!(j.get("table.scan.count").and_then(Json::as_int), Some(3));
        let t = j.get("table.scan.time").unwrap();
        assert_eq!(t.get("count").and_then(Json::as_int), Some(1));
        assert_eq!(t.get("total_ns").and_then(Json::as_int), Some(10_000));
        assert_eq!(t.get("hist").and_then(Json::as_arr).unwrap().len(), 1);
    }

    #[test]
    fn write_to_emits_parseable_json() {
        let dir = std::env::temp_dir().join("incognito-obs-test");
        let path = dir.join("BENCH_unit.json");
        let mut r = RunReport::new("unit");
        r.set_provenance("0.0.0-test");
        let n = r.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.len(), n);
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("report_version").and_then(Json::as_int), Some(1));
        assert!(parsed.get("unix_time").and_then(Json::as_int).is_some());
        std::fs::remove_file(&path).ok();
    }
}
