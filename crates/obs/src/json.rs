//! A hand-rolled JSON value with writer and parser — no external
//! dependencies, which matters because this workspace builds offline.
//!
//! Objects are ordered `Vec<(String, Json)>`, not maps: report readers see
//! fields in the order the report builder wrote them, which keeps
//! `BENCH_*.json` diffs stable and human-scannable.
//!
//! The writer escapes control characters, `"` and `\`; non-finite floats
//! serialize as `null` (JSON has no NaN/∞). The parser accepts exactly the
//! JSON grammar (RFC 8259) minus `\u` surrogate-pair pedantry — enough to
//! round-trip everything the writer emits, which is what the self-check in
//! [`crate::report`] relies on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append (or replace) a field on an object. Panics on non-objects —
    /// report-building code holds the only call sites.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => {
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value.into(),
                    None => fields.push((key.to_owned(), value.into())),
                }
                self
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Look up a field of an object; `None` on non-objects too.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline — the
    /// on-disk format of every `BENCH_*.json`.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize compactly (single line, no spaces).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                use fmt::Write;
                write!(out, "{v}").unwrap();
            }
            Json::Num(v) => {
                use fmt::Write;
                if v.is_finite() {
                    // `{v:?}` keeps a decimal point or exponent, so the
                    // value re-parses as a float rather than an integer.
                    write!(out, "{v:?}").unwrap();
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing whitespace is allowed; trailing
    /// garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if v <= i64::MAX as u64 { Json::Int(v as i64) } else { Json::Num(v as f64) }
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<std::time::Duration> for Json {
    fn from(v: std::time::Duration) -> Json {
        Json::from(v.as_nanos().min(u64::MAX as u128) as u64)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// A parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                // Integer literals beyond i64 fall back to f64, like most readers.
                Err(_) => text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut report = Json::obj();
        report.set("name", "fig09");
        report.set("k", 2i64);
        report.set("elapsed_s", 1.25f64);
        report.set("quoted", "say \"hi\"\nline2\ttab");
        report.set("flags", Json::Arr(vec![Json::Bool(true), Json::Null, Json::Int(-3)]));
        let mut nested = Json::obj();
        nested.set("rows", 45_222usize);
        report.set("dataset", nested);
        report
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = sample();
        let text = v.to_pretty_string();
        assert!(text.ends_with('\n'));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_output_round_trips() {
        let v = sample();
        assert_eq!(Json::parse(&v.to_compact_string()).unwrap(), v);
    }

    #[test]
    fn set_replaces_existing_fields_in_place() {
        let mut v = Json::obj();
        v.set("a", 1i64).set("b", 2i64).set("a", 9i64);
        assert_eq!(v, Json::Obj(vec![("a".into(), Json::Int(9)), ("b".into(), Json::Int(2))]));
    }

    #[test]
    fn floats_keep_a_decimal_marker_and_nonfinite_becomes_null() {
        assert_eq!(Json::Num(2.0).to_compact_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn parser_handles_escapes_unicode_and_exponents() {
        assert_eq!(
            Json::parse(r#""aA\n\t\" b""#).unwrap(),
            Json::Str("aA\n\t\" b".to_owned())
        );
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".to_owned()));
        assert_eq!(Json::parse(" [ ] ").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{ }").unwrap(), Json::obj());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nulll").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
