//! Named atomic counters and timers, and immutable snapshots of them.
//!
//! A [`MetricsRegistry`] is a lazily-populated map from metric name to an
//! atomic cell. Handles ([`CounterHandle`], [`TimerHandle`]) are cheap
//! `Arc` clones — look one up once and record against it lock-free; the
//! registry lock is only taken on first registration and on snapshot.
//!
//! Timers keep a count, a running total, a maximum, and a power-of-two
//! histogram of nanosecond durations (bucket `i` counts durations whose
//! bit length is `i`), which is enough to read tail behaviour out of a
//! `BENCH_*.json` without any external tooling.
//!
//! Gauges ([`GaugeHandle`]) are signed set/add cells for occupancy-style
//! metrics — cache entries, resident bytes — where the *current level*
//! matters, not a monotone total. `diff` keeps the later snapshot's value
//! for them, since occupancy is a point-in-time reading.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of power-of-two histogram buckets. Bucket 47 holds durations of
/// roughly 2^46..2^47 ns (≈ 20–39 h), far beyond any run we time.
pub const TIMER_BUCKETS: usize = 48;

#[derive(Default)]
struct CounterCell {
    value: AtomicU64,
}

struct TimerCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; TIMER_BUCKETS],
}

impl Default for TimerCell {
    fn default() -> Self {
        TimerCell {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A cheap, clonable handle onto one registered counter.
#[derive(Clone)]
pub struct CounterHandle {
    cell: Arc<CounterCell>,
}

impl CounterHandle {
    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.cell.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct GaugeCell {
    value: AtomicI64,
}

/// A cheap, clonable handle onto one registered gauge.
#[derive(Clone)]
pub struct GaugeHandle {
    cell: Arc<GaugeCell>,
}

impl GaugeHandle {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.value.store(v, Ordering::Relaxed);
    }

    /// Add `v` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, v: i64) {
        self.cell.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A cheap, clonable handle onto one registered timer.
#[derive(Clone)]
pub struct TimerHandle {
    cell: Arc<TimerCell>,
}

impl TimerHandle {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let bucket = (64 - nanos.leading_zeros() as usize).min(TIMER_BUCKETS - 1);
        self.cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Timer(Arc<TimerCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Timer(_) => "timer",
        }
    }
}

/// A registry of named metrics. Create one per scope of interest, or use
/// the process-global one via [`crate::global`].
#[derive(Default)]
pub struct MetricsRegistry {
    cells: RwLock<BTreeMap<String, Cell>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Handle for the named counter, registering it on first use.
    ///
    /// Panics if `name` is already registered as a timer — metric names
    /// are typed, and mixing kinds under one name is an instrumentation
    /// bug worth failing loudly on.
    pub fn counter(&self, name: &str) -> CounterHandle {
        if let Some(cell) = self.cells.read().unwrap().get(name) {
            return match cell {
                Cell::Counter(c) => CounterHandle { cell: c.clone() },
                other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
            };
        }
        let mut cells = self.cells.write().unwrap();
        let cell = cells
            .entry(name.to_owned())
            .or_insert_with(|| Cell::Counter(Arc::new(CounterCell::default())));
        match cell {
            Cell::Counter(c) => CounterHandle { cell: c.clone() },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Handle for the named gauge, registering it on first use. Panics if
    /// `name` is already registered as another kind.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        if let Some(cell) = self.cells.read().unwrap().get(name) {
            return match cell {
                Cell::Gauge(g) => GaugeHandle { cell: g.clone() },
                other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
            };
        }
        let mut cells = self.cells.write().unwrap();
        let cell = cells
            .entry(name.to_owned())
            .or_insert_with(|| Cell::Gauge(Arc::new(GaugeCell::default())));
        match cell {
            Cell::Gauge(g) => GaugeHandle { cell: g.clone() },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Handle for the named timer, registering it on first use. Panics if
    /// `name` is already registered as a counter.
    pub fn timer(&self, name: &str) -> TimerHandle {
        if let Some(cell) = self.cells.read().unwrap().get(name) {
            return match cell {
                Cell::Timer(t) => TimerHandle { cell: t.clone() },
                other => panic!("metric {name:?} is a {}, not a timer", other.kind()),
            };
        }
        let mut cells = self.cells.write().unwrap();
        let cell = cells
            .entry(name.to_owned())
            .or_insert_with(|| Cell::Timer(Arc::new(TimerCell::default())));
        match cell {
            Cell::Timer(t) => TimerHandle { cell: t.clone() },
            other => panic!("metric {name:?} is a {}, not a timer", other.kind()),
        }
    }

    /// Immutable copy of every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.read().unwrap();
        let values = cells
            .iter()
            .map(|(name, cell)| {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => MetricValue::Gauge(g.value.load(Ordering::Relaxed)),
                    Cell::Timer(t) => MetricValue::Timer(TimerValue {
                        count: t.count.load(Ordering::Relaxed),
                        total: Duration::from_nanos(t.total_nanos.load(Ordering::Relaxed)),
                        max: Duration::from_nanos(t.max_nanos.load(Ordering::Relaxed)),
                        buckets: t.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Zero every registered metric (handles stay valid).
    pub fn reset(&self) {
        let cells = self.cells.read().unwrap();
        for cell in cells.values() {
            match cell {
                Cell::Counter(c) => c.value.store(0, Ordering::Relaxed),
                Cell::Gauge(g) => g.value.store(0, Ordering::Relaxed),
                Cell::Timer(t) => {
                    t.count.store(0, Ordering::Relaxed);
                    t.total_nanos.store(0, Ordering::Relaxed);
                    t.max_nanos.store(0, Ordering::Relaxed);
                    for b in &t.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// One timer's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimerValue {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub total: Duration,
    /// Largest single observation.
    pub max: Duration,
    /// Power-of-two histogram over nanoseconds (see [`TIMER_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl TimerValue {
    /// Mean observation, or zero if none were recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 { Duration::ZERO } else { self.total / self.count as u32 }
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A signed occupancy level (cache entries, resident bytes).
    Gauge(i64),
    /// A duration distribution.
    Timer(TimerValue),
}

/// An immutable, ordered copy of a registry's metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The named counter's value, defaulting to 0 when absent. Panics if
    /// the name is registered as another kind.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            None => 0,
            Some(MetricValue::Counter(v)) => *v,
            Some(_) => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The named gauge's level, defaulting to 0 when absent. Panics if the
    /// name is registered as another kind.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name) {
            None => 0,
            Some(MetricValue::Gauge(v)) => *v,
            Some(_) => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The named timer's value, defaulting to an empty distribution when
    /// absent. Panics if the name is registered as a counter.
    pub fn timer(&self, name: &str) -> TimerValue {
        match self.values.get(name) {
            None => TimerValue::default(),
            Some(MetricValue::Timer(t)) => t.clone(),
            Some(_) => panic!("metric {name:?} is not a timer"),
        }
    }

    /// `self - earlier`, per metric. Counters and timer counts/totals
    /// subtract (saturating); a timer's `max` is not differentiable and a
    /// gauge is a point-in-time level, so the later snapshot's value is
    /// kept for both. Metrics absent from `earlier` pass through
    /// unchanged.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(name, v)| {
                let dv = match (v, earlier.values.get(name)) {
                    (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                        MetricValue::Counter(a.saturating_sub(*b))
                    }
                    (MetricValue::Timer(a), Some(MetricValue::Timer(b))) => {
                        MetricValue::Timer(TimerValue {
                            count: a.count.saturating_sub(b.count),
                            total: a.total.saturating_sub(b.total),
                            max: a.max,
                            buckets: a
                                .buckets
                                .iter()
                                .zip(b.buckets.iter().chain(std::iter::repeat(&0)))
                                .map(|(x, y)| x.saturating_sub(*y))
                                .collect(),
                        })
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("scans");
        c.add(3);
        c.incr();
        reg.counter("scans").add(6); // same cell via re-lookup
        assert_eq!(c.get(), 10);
        assert_eq!(reg.snapshot().counter("scans"), 10);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn timers_track_count_total_max_and_buckets() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("scan_time");
        t.record(Duration::from_nanos(100)); // bit length 7
        t.record(Duration::from_nanos(1000)); // bit length 10
        let v = reg.snapshot().timer("scan_time");
        assert_eq!(v.count, 2);
        assert_eq!(v.total, Duration::from_nanos(1100));
        assert_eq!(v.max, Duration::from_nanos(1000));
        assert_eq!(v.mean(), Duration::from_nanos(550));
        assert_eq!(v.buckets[7], 1);
        assert_eq!(v.buckets[10], 1);
        assert_eq!(v.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn diff_subtracts_counters_and_timer_totals() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.timer("t").record(Duration::from_micros(5));
        let early = reg.snapshot();
        reg.counter("a").add(5);
        reg.counter("b").add(1);
        reg.timer("t").record(Duration::from_micros(7));
        let late = reg.snapshot();

        let d = late.diff(&early);
        assert_eq!(d.counter("a"), 5);
        assert_eq!(d.counter("b"), 1);
        let t = d.timer("t");
        assert_eq!(t.count, 1);
        assert_eq!(t.total, Duration::from_micros(7));
        assert_eq!(t.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn reset_zeroes_without_invalidating_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        c.add(9);
        reg.reset();
        assert_eq!(reg.snapshot().counter("n"), 0);
        c.add(1);
        assert_eq!(reg.snapshot().counter("n"), 1);
    }

    #[test]
    fn gauges_set_add_and_keep_later_value_in_diff() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("cache.entries");
        g.set(10);
        g.add(5);
        g.add(-3);
        assert_eq!(g.get(), 12);
        let early = reg.snapshot();
        assert_eq!(early.gauge("cache.entries"), 12);
        assert_eq!(early.gauge("absent"), 0);
        g.set(7);
        let late = reg.snapshot();
        // Occupancy is point-in-time: diff keeps the later level.
        assert_eq!(late.diff(&early).gauge("cache.entries"), 7);
        reg.reset();
        assert_eq!(reg.snapshot().gauge("cache.entries"), 0);
    }

    #[test]
    #[should_panic(expected = "is a timer")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.timer("x");
        reg.counter("x");
    }

    #[test]
    #[should_panic(expected = "is a gauge")]
    fn gauge_counter_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("y");
        reg.counter("y");
    }
}
