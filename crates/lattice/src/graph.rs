use std::collections::BTreeMap;

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{GroupSpec, Schema, TableError};

/// Identifier of a node within one [`CandidateGraph`] (the `ID` column of
/// the paper's Nodes relation, Figure 6).
pub type NodeId = u32;

/// One candidate multi-attribute generalization: the `(dim, index)` pairs of
/// the paper's Nodes relation, sorted by dimension (attribute index), plus
/// the ids of the two `(i-1)`-nodes joined to produce it (`parent1`,
/// `parent2`; `None` in the first iteration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// `(attribute index, generalization level)` pairs, strictly increasing
    /// by attribute index.
    pub parts: Vec<(usize, LevelNo)>,
    /// First join parent in the previous candidate graph.
    pub parent1: Option<NodeId>,
    /// Second join parent in the previous candidate graph.
    pub parent2: Option<NodeId>,
}

impl NodeSpec {
    /// The generalization height: the sum of the node's levels, i.e. the sum
    /// of the distance vector from the all-zeros node (§2).
    pub fn height(&self) -> u32 {
        self.parts.iter().map(|&(_, l)| l as u32).sum()
    }

    /// The attribute indices (the node's "family" — which QI subset it
    /// generalizes).
    pub fn attr_set(&self) -> Vec<usize> {
        self.parts.iter().map(|&(a, _)| a).collect()
    }

    /// The levels, in attribute order.
    pub fn levels(&self) -> Vec<LevelNo> {
        self.parts.iter().map(|&(_, l)| l).collect()
    }

    /// Convert to a [`GroupSpec`] for frequency-set computation.
    pub fn to_group_spec(&self) -> Result<GroupSpec, TableError> {
        GroupSpec::new(self.parts.clone())
    }

    /// True if `other` is a (direct or implied) multi-attribute
    /// generalization of `self`: same attribute set, every level ≥, and at
    /// least one strictly greater.
    pub fn is_generalized_by(&self, other: &NodeSpec) -> bool {
        if self.parts.len() != other.parts.len() {
            return false;
        }
        let mut strict = false;
        for (&(a, la), &(b, lb)) in self.parts.iter().zip(&other.parts) {
            if a != b || lb < la {
                return false;
            }
            if lb > la {
                strict = true;
            }
        }
        strict
    }
}

/// A candidate generalization graph `(Cᵢ, Eᵢ)`: the in-memory analogue of
/// the paper's Nodes and Edges relations (Figure 6).
#[derive(Debug, Clone)]
pub struct CandidateGraph {
    /// Number of attributes per node (the iteration number `i`).
    arity: usize,
    nodes: Vec<NodeSpec>,
    edges: Vec<(NodeId, NodeId)>,
    /// Outgoing adjacency (direct generalizations of each node).
    out_adj: Vec<Vec<NodeId>>,
    /// Number of incoming edges per node (0 ⇒ root).
    in_degree: Vec<u32>,
}

impl CandidateGraph {
    /// Assemble a graph from nodes and edges, building adjacency.
    pub fn new(arity: usize, nodes: Vec<NodeSpec>, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut out_adj = vec![Vec::new(); nodes.len()];
        let mut in_degree = vec![0u32; nodes.len()];
        for &(s, e) in &edges {
            out_adj[s as usize].push(e);
            in_degree[e as usize] += 1;
        }
        for adj in &mut out_adj {
            adj.sort_unstable();
        }
        CandidateGraph { arity, nodes, edges, out_adj, in_degree }
    }

    /// `C₁`/`E₁`: one node per (attribute, level) of every quasi-identifier
    /// attribute's hierarchy, with the hierarchy chain edges.
    pub fn initial(schema: &Schema, qi: &[usize]) -> Self {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for &a in qi {
            let h = schema.hierarchy(a);
            let base = nodes.len() as NodeId;
            for l in 0..=h.height() {
                nodes.push(NodeSpec { parts: vec![(a, l)], parent1: None, parent2: None });
                if l > 0 {
                    edges.push((base + (l - 1) as NodeId, base + l as NodeId));
                }
            }
        }
        CandidateGraph::new(1, nodes, edges)
    }

    /// The complete multi-attribute generalization lattice over the full
    /// quasi-identifier (Figure 3): every combination of levels, with the
    /// one-step direct generalization edges. Used by the baseline
    /// algorithms, which do not perform a-priori pruning.
    pub fn full_lattice(schema: &Schema, qi: &[usize]) -> Self {
        let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
        // Enumerate level vectors in mixed-radix order; index arithmetic
        // gives each node's id directly.
        let mut radix_suffix = vec![1usize; qi.len() + 1];
        for i in (0..qi.len()).rev() {
            radix_suffix[i] = radix_suffix[i + 1] * (heights[i] as usize + 1);
        }
        let total = radix_suffix[0];
        let mut nodes = Vec::with_capacity(total);
        let mut edges = Vec::new();
        let mut levels = vec![0u8; qi.len()];
        for id in 0..total {
            // Decode `id` into its level vector.
            let mut rem = id;
            for i in 0..qi.len() {
                levels[i] = (rem / radix_suffix[i + 1]) as u8;
                rem %= radix_suffix[i + 1];
            }
            nodes.push(NodeSpec {
                parts: qi.iter().copied().zip(levels.iter().copied()).collect(),
                parent1: None,
                parent2: None,
            });
            // Direct generalizations: +1 in exactly one component.
            for i in 0..qi.len() {
                if levels[i] < heights[i] {
                    edges.push((id as NodeId, (id + radix_suffix[i + 1]) as NodeId));
                }
            }
        }
        CandidateGraph::new(qi.len(), nodes, edges)
    }

    /// Number of attributes per node.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id as usize]
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// All direct-generalization edges.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Ids of the direct generalizations of `id` (outgoing edges).
    pub fn direct_generalizations(&self, id: NodeId) -> &[NodeId] {
        &self.out_adj[id as usize]
    }

    /// Roots: nodes that are not the direct generalization of any other node
    /// in the graph (no incoming edge). The BFS starts from these.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&n| self.in_degree[n as usize] == 0)
            .collect()
    }

    /// Group node ids by family (attribute set). Iteration order is
    /// deterministic (sorted by attribute set).
    pub fn families(&self) -> BTreeMap<Vec<usize>, Vec<NodeId>> {
        let mut fam: BTreeMap<Vec<usize>, Vec<NodeId>> = BTreeMap::new();
        for (id, n) in self.nodes.iter().enumerate() {
            fam.entry(n.attr_set()).or_default().push(id as NodeId);
        }
        fam
    }

    /// Greatest lower bound of a set of nodes from the same family: the
    /// component-wise minimum of their level vectors. This is the
    /// "super-root" of §3.3.1 — it need not itself be a node of the graph.
    ///
    /// Returns `None` if `ids` is empty or the nodes span different families.
    pub fn family_glb(&self, ids: &[NodeId]) -> Option<NodeSpec> {
        let first = self.node(*ids.first()?);
        let mut parts = first.parts.clone();
        for &id in &ids[1..] {
            let n = self.node(id);
            if n.parts.len() != parts.len() {
                return None;
            }
            for (acc, &(a, l)) in parts.iter_mut().zip(&n.parts) {
                if acc.0 != a {
                    return None;
                }
                acc.1 = acc.1.min(l);
            }
        }
        Some(NodeSpec { parts, parent1: None, parent2: None })
    }

    /// Look up a node id by its `(attribute, level)` parts.
    pub fn find(&self, parts: &[(usize, LevelNo)]) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.parts == parts)
            .map(|p| p as NodeId)
    }

    /// Build a spec → id index for the whole graph.
    pub fn spec_index(&self) -> FxHashMap<Vec<(usize, LevelNo)>, NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(id, n)| (n.parts.clone(), id as NodeId))
            .collect()
    }

    /// Render the graph in Graphviz DOT form, labelling each node
    /// `⟨Name:level, …⟩` using `schema`'s attribute names — handy for
    /// eyeballing the Figure 3/5/7 lattices (`dot -Tsvg`).
    pub fn to_dot(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph generalization_lattice {\n  rankdir=BT;\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let label: Vec<String> = node
                .parts
                .iter()
                .map(|&(a, l)| format!("{}:{}", schema.attribute(a).name(), l))
                .collect();
            let _ = writeln!(out, "  n{id} [label=\"⟨{}⟩\"];", label.join(", "));
        }
        for &(s, e) in &self.edges {
            let _ = writeln!(out, "  n{s} -> n{e};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_hierarchy::builders;
    use incognito_table::Attribute;
    use std::sync::Arc;

    fn sz_schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
            Attribute::new(
                "Zipcode",
                builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                    .unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn initial_graph_is_the_hierarchy_chains() {
        let s = sz_schema();
        let g = CandidateGraph::initial(&s, &[0, 1]);
        assert_eq!(g.arity(), 1);
        assert_eq!(g.num_nodes(), 2 + 3); // S0,S1 + Z0,Z1,Z2
        assert_eq!(g.num_edges(), 1 + 2);
        let roots = g.roots();
        assert_eq!(roots.len(), 2);
        for r in roots {
            assert_eq!(g.node(r).height(), 0);
        }
        let s0 = g.find(&[(0, 0)]).unwrap();
        let s1 = g.find(&[(0, 1)]).unwrap();
        assert_eq!(g.direct_generalizations(s0), &[s1]);
        assert!(g.direct_generalizations(s1).is_empty());
    }

    #[test]
    fn full_lattice_matches_figure3() {
        // Figure 3 (a): the ⟨Sex, Zipcode⟩ lattice has 2 × 3 = 6 nodes and
        // 7 edges.
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[0, 1]);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.roots(), vec![0]);
        let bottom = g.node(0);
        assert_eq!(bottom.parts, vec![(0, 0), (1, 0)]);
        assert_eq!(bottom.height(), 0);
        let top = g.find(&[(0, 1), (1, 2)]).unwrap();
        assert!(g.direct_generalizations(top).is_empty());
        assert_eq!(g.node(top).height(), 3);
        // ⟨S1, Z1⟩ has height 2, per §2.
        let s1z1 = g.find(&[(0, 1), (1, 1)]).unwrap();
        assert_eq!(g.node(s1z1).height(), 2);
        // Edges go up by exactly one level in one attribute.
        for &(a, b) in g.edges() {
            let (na, nb) = (g.node(a), g.node(b));
            assert!(na.is_generalized_by(nb));
            assert_eq!(na.height() + 1, nb.height());
        }
    }

    #[test]
    fn generalization_partial_order() {
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[0, 1]);
        let s0z0 = g.node(g.find(&[(0, 0), (1, 0)]).unwrap()).clone();
        let s0z2 = g.node(g.find(&[(0, 0), (1, 2)]).unwrap()).clone();
        let s1z0 = g.node(g.find(&[(0, 1), (1, 0)]).unwrap()).clone();
        assert!(s0z0.is_generalized_by(&s0z2));
        assert!(!s0z2.is_generalized_by(&s0z0));
        assert!(!s0z2.is_generalized_by(&s1z0)); // incomparable
        assert!(!s0z0.is_generalized_by(&s0z0)); // strict
        let single = NodeSpec { parts: vec![(0, 1)], parent1: None, parent2: None };
        assert!(!s0z0.is_generalized_by(&single)); // different arity
    }

    #[test]
    fn families_and_glb() {
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[0, 1]);
        let fam = g.families();
        assert_eq!(fam.len(), 1);
        let ids = &fam[&vec![0usize, 1]];
        assert_eq!(ids.len(), 6);
        let a = g.find(&[(0, 1), (1, 0)]).unwrap();
        let b = g.find(&[(0, 0), (1, 2)]).unwrap();
        let glb = g.family_glb(&[a, b]).unwrap();
        assert_eq!(glb.parts, vec![(0, 0), (1, 0)]);
        assert!(g.family_glb(&[]).is_none());
    }

    #[test]
    fn spec_index_roundtrips() {
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[0, 1]);
        let idx = g.spec_index();
        for (id, n) in g.nodes().iter().enumerate() {
            assert_eq!(idx[&n.parts], id as NodeId);
        }
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[0, 1]);
        let dot = g.to_dot(&s);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("label=").count(), g.num_nodes());
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        assert!(dot.contains("⟨Sex:1, Zipcode:0⟩"));
    }

    #[test]
    fn full_lattice_single_attribute() {
        let s = sz_schema();
        let g = CandidateGraph::full_lattice(&s, &[1]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.roots(), vec![0]);
    }
}
