//! An Apriori-style hash tree over candidate specs.
//!
//! The paper's prune phase (§3.1.2) uses "a hash tree structure similar to
//! that described in \[2\]" — Agrawal & Srikant's *Fast Algorithms for Mining
//! Association Rules* — to test whether every `(i-1)`-subset of an
//! `i`-attribute candidate survived the previous iteration. This module is
//! that structure: interior nodes hash one spec component per depth into a
//! fixed fanout, leaves hold small buckets that are split when they
//! overflow. A flat [`SpecSet`] built on a hash set provides the same
//! membership interface so the ablation benchmark can compare the two.

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashSet;

/// One spec component: `(attribute index, level)`.
pub type Item = (usize, LevelNo);

/// Fanout of interior nodes. Agrawal & Srikant used small fixed fanouts;
/// 8 keeps interior nodes cache-friendly for the spec sizes at play (≤ 16).
const FANOUT: usize = 8;

/// Leaf bucket capacity before splitting (if components remain to hash on).
const LEAF_CAPACITY: usize = 16;

#[derive(Debug)]
enum Node {
    Interior(Box<[Node; FANOUT]>),
    Leaf(Vec<Vec<Item>>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

#[inline]
fn bucket_of(item: &Item) -> usize {
    // Mix both fields; the exact mix only affects balance, not correctness.
    let h = (item.0 as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(item.1 as u64);
    (h % FANOUT as u64) as usize
}

/// Membership structure used by the prune phase.
#[derive(Debug)]
pub struct HashTree {
    root: Node,
    /// Specs too short to descend to their target leaf after a split made
    /// the tree deeper than they are. The prune phase only ever stores
    /// uniform-length specs, so this stays empty there, but the structure
    /// must be correct for mixed lengths too.
    stranded: FxHashSet<Vec<Item>>,
    len: usize,
}

impl Default for HashTree {
    fn default() -> Self {
        Self::new()
    }
}

impl HashTree {
    /// An empty tree.
    pub fn new() -> Self {
        HashTree { root: Node::empty_leaf(), stranded: FxHashSet::default(), len: 0 }
    }

    /// Build a tree from an iterator of specs.
    pub fn from_specs<I: IntoIterator<Item = Vec<Item>>>(specs: I) -> Self {
        let mut t = HashTree::new();
        for s in specs {
            t.insert(s);
        }
        t
    }

    /// Number of specs stored (duplicates are not re-inserted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no specs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `spec`; returns `false` if it was already present.
    pub fn insert(&mut self, spec: Vec<Item>) -> bool {
        fn insert_at(
            node: &mut Node,
            spec: Vec<Item>,
            depth: usize,
            stranded: &mut FxHashSet<Vec<Item>>,
        ) -> bool {
            match node {
                Node::Interior(children) => {
                    if depth >= spec.len() {
                        return stranded.insert(spec);
                    }
                    let b = bucket_of(&spec[depth]);
                    insert_at(&mut children[b], spec, depth + 1, stranded)
                }
                Node::Leaf(bucket) => {
                    if bucket.contains(&spec) {
                        return false;
                    }
                    bucket.push(spec);
                    // Split when overflowing, provided every resident spec
                    // still has a component at this depth to hash on.
                    if bucket.len() > LEAF_CAPACITY && bucket.iter().all(|s| s.len() > depth) {
                        let specs = std::mem::take(bucket);
                        let mut children: [Node; FANOUT] =
                            std::array::from_fn(|_| Node::empty_leaf());
                        for s in specs {
                            let b = bucket_of(&s[depth]);
                            match &mut children[b] {
                                Node::Leaf(v) => v.push(s),
                                Node::Interior(_) => unreachable!("fresh children are leaves"),
                            }
                        }
                        *node = Node::Interior(Box::new(children));
                    }
                    true
                }
            }
        }
        let inserted = insert_at(&mut self.root, spec, 0, &mut self.stranded);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Membership test.
    pub fn contains(&self, spec: &[Item]) -> bool {
        let mut node = &self.root;
        let mut depth = 0;
        loop {
            match node {
                Node::Interior(children) => {
                    if depth >= spec.len() {
                        // Tree split deeper than this spec's length; such
                        // specs live in the stranded set.
                        return self.stranded.contains(spec);
                    }
                    node = &children[bucket_of(&spec[depth])];
                    depth += 1;
                }
                Node::Leaf(bucket) => return bucket.iter().any(|s| s == spec),
            }
        }
    }
}

/// Flat hash-set membership structure with the same interface, for the
/// prune-structure ablation.
#[derive(Debug, Default)]
pub struct SpecSet {
    set: FxHashSet<Vec<Item>>,
}

impl SpecSet {
    /// Build from an iterator of specs.
    pub fn from_specs<I: IntoIterator<Item = Vec<Item>>>(specs: I) -> Self {
        SpecSet { set: specs.into_iter().collect() }
    }

    /// Membership test.
    pub fn contains(&self, spec: &[Item]) -> bool {
        self.set.contains(spec)
    }

    /// Number of specs stored.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(parts: &[(usize, u8)]) -> Vec<Item> {
        parts.to_vec()
    }

    #[test]
    fn insert_and_contains() {
        let mut t = HashTree::new();
        assert!(t.is_empty());
        assert!(t.insert(spec(&[(0, 1), (2, 0)])));
        assert!(!t.insert(spec(&[(0, 1), (2, 0)]))); // duplicate
        assert!(t.insert(spec(&[(0, 1), (2, 1)])));
        assert_eq!(t.len(), 2);
        assert!(t.contains(&spec(&[(0, 1), (2, 0)])));
        assert!(!t.contains(&spec(&[(0, 1), (3, 0)])));
        assert!(!t.contains(&spec(&[(0, 1)])));
    }

    #[test]
    fn splits_and_still_finds_everything() {
        let mut t = HashTree::new();
        let mut all = Vec::new();
        for a in 0..6usize {
            for b in (a + 1)..7usize {
                for l in 0..4u8 {
                    let s = spec(&[(a, l), (b, 3 - l)]);
                    all.push(s.clone());
                    t.insert(s);
                }
            }
        }
        assert_eq!(t.len(), all.len());
        for s in &all {
            assert!(t.contains(s), "missing {s:?}");
        }
        assert!(!t.contains(&spec(&[(9, 0), (10, 0)])));
    }

    #[test]
    fn mixed_lengths() {
        let mut t = HashTree::new();
        for i in 0..100usize {
            t.insert(spec(&[(i, 0)]));
        }
        t.insert(spec(&[(0, 0), (1, 0), (2, 0)]));
        assert!(t.contains(&spec(&[(57, 0)])));
        assert!(t.contains(&spec(&[(0, 0), (1, 0), (2, 0)])));
        assert!(!t.contains(&spec(&[(0, 0), (1, 0)])));
    }

    #[test]
    fn agrees_with_spec_set() {
        let specs: Vec<Vec<Item>> = (0..50)
            .map(|i| spec(&[(i % 7, (i % 3) as u8), (7 + i % 5, (i % 2) as u8)]))
            .collect();
        let t = HashTree::from_specs(specs.clone());
        let s = SpecSet::from_specs(specs.clone());
        assert_eq!(t.len(), s.len());
        for q in &specs {
            assert_eq!(t.contains(q), s.contains(q));
        }
        let absent = spec(&[(100, 0), (101, 1)]);
        assert_eq!(t.contains(&absent), s.contains(&absent));
    }
}
