//! A-priori candidate graph generation: the join, prune, and
//! edge-generation phases of §3.1.2.
//!
//! Given the surviving nodes `Sᵢ` (those with respect to which the table is
//! k-anonymous) and the edges `Eᵢ` of iteration `i`, [`generate_next`]
//! produces the candidate graph `(Cᵢ₊₁, Eᵢ₊₁)` for iteration `i + 1`:
//!
//! 1. **Join** — pair survivors agreeing on their first `i - 1`
//!    `(dim, index)` components with `p.dimᵢ < q.dimᵢ`, mirroring the
//!    paper's self-join SQL over `Sᵢ₋₁` (the dimension ordering exists
//!    purely to avoid duplicates, as in Apriori);
//! 2. **Prune** — drop candidates having any `i`-subset absent from `Sᵢ`,
//!    using an Apriori hash tree (or a flat hash set; see
//!    [`PruneStrategy`]);
//! 3. **Edge generation** — derive candidate direct-generalization edges
//!    from the parents' edges (the three-disjunct `CandidateEdges` query),
//!    then delete implied edges, i.e. those that are the composition of two
//!    candidate edges (the `EXCEPT` clause).

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::{FxHashMap, FxHashSet};

use crate::graph::{CandidateGraph, NodeId, NodeSpec};
use crate::hash_tree::{HashTree, SpecSet};

/// How the prune phase tests subset membership in `Sᵢ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneStrategy {
    /// The Apriori hash tree of \[2\], as the paper describes.
    HashTree,
    /// A flat hash set — same semantics, different constant factors
    /// (compared in the `ablation_prune_structure` bench).
    HashSet,
    /// Skip the subset check entirely (join results only). Used by the
    /// a-priori ablation; Incognito proper always prunes.
    None,
}

enum Membership {
    Tree(HashTree),
    Set(SpecSet),
    None,
}

impl Membership {
    fn contains(&self, spec: &[(usize, LevelNo)]) -> bool {
        match self {
            Membership::Tree(t) => t.contains(spec),
            Membership::Set(s) => s.contains(spec),
            Membership::None => true,
        }
    }
}

/// Generate `(Cᵢ₊₁, Eᵢ₊₁)` from iteration `i`'s candidate graph, the
/// aliveness of its nodes (`alive[id]` ⇔ node `id` ∈ `Sᵢ`), and its edges.
///
/// Returns the new graph; its nodes' `parent1`/`parent2` reference ids in
/// `prev`, matching the paper's Nodes relation.
///
/// # Panics
/// Panics if `alive.len() != prev.num_nodes()`.
pub fn generate_next(
    prev: &CandidateGraph,
    alive: &[bool],
    strategy: PruneStrategy,
) -> CandidateGraph {
    assert_eq!(alive.len(), prev.num_nodes(), "aliveness vector must cover all nodes");
    let _span = incognito_obs::span("lattice.generate.time");
    let mut tspan = incognito_obs::trace::span("candidate.generate")
        .arg("arity", (prev.arity() + 1) as u64);
    incognito_obs::incr("lattice.generate.count");
    let arity = prev.arity() + 1;

    // ---- Join phase -------------------------------------------------------
    // Bucket survivors by their first (arity_prev - 1) components; within a
    // bucket, pair p, q with p's last attribute < q's last attribute.
    let join_span = incognito_obs::span("lattice.generate.join.time");
    let join_tspan = incognito_obs::trace::span("lattice.join");
    let survivors: Vec<NodeId> = (0..prev.num_nodes() as NodeId)
        .filter(|&id| alive[id as usize])
        .collect();
    incognito_obs::add("lattice.generate.survivors_in", survivors.len() as u64);
    let mut buckets: std::collections::BTreeMap<Vec<(usize, LevelNo)>, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for &id in &survivors {
        let parts = &prev.node(id).parts;
        buckets.entry(parts[..parts.len() - 1].to_vec()).or_default().push(id);
    }

    // Prune-phase membership structure over the survivor specs.
    let membership = match strategy {
        PruneStrategy::HashTree => Membership::Tree(HashTree::from_specs(
            survivors.iter().map(|&id| prev.node(id).parts.clone()),
        )),
        PruneStrategy::HashSet => Membership::Set(SpecSet::from_specs(
            survivors.iter().map(|&id| prev.node(id).parts.clone()),
        )),
        PruneStrategy::None => Membership::None,
    };

    let mut nodes: Vec<NodeSpec> = Vec::new();
    let mut pruned = 0u64;
    let mut subset_buf: Vec<(usize, LevelNo)> = Vec::with_capacity(arity - 1);
    for bucket in buckets.values() {
        for (bi, &p) in bucket.iter().enumerate() {
            for &q in &bucket[bi + 1..] {
                let (pp, qp) = (&prev.node(p).parts, &prev.node(q).parts);
                let (pl, ql) = (pp[pp.len() - 1], qp[qp.len() - 1]);
                // Within a bucket the last components may share an
                // attribute (same prefix, different level of the same
                // dimension); those pairs are not joinable.
                let (lo, hi, parent1, parent2) = if pl.0 < ql.0 {
                    (pl, ql, p, q)
                } else if ql.0 < pl.0 {
                    (ql, pl, q, p)
                } else {
                    continue;
                };
                let mut parts = prev.node(parent1).parts.clone();
                parts.pop();
                parts.push(lo);
                parts.push(hi);

                // ---- Prune phase -----------------------------------------
                // Every (arity - 1)-subset must be in Sᵢ. Dropping the last
                // component reproduces parent1 and dropping the second-to-
                // last reproduces parent2, both survivors by construction,
                // so only the remaining subsets need checking.
                let mut keep = true;
                if !matches!(strategy, PruneStrategy::None) && arity > 2 {
                    for drop in 0..arity - 2 {
                        subset_buf.clear();
                        subset_buf
                            .extend(parts.iter().enumerate().filter(|&(j, _)| j != drop).map(|(_, &x)| x));
                        if !membership.contains(&subset_buf) {
                            keep = false;
                            break;
                        }
                    }
                }
                if keep {
                    nodes.push(NodeSpec {
                        parts,
                        parent1: Some(parent1),
                        parent2: Some(parent2),
                    });
                } else {
                    pruned += 1;
                }
            }
        }
    }
    join_span.finish();
    join_tspan
        .arg("survivors_in", survivors.len() as u64)
        .arg("pruned", pruned)
        .arg("candidates_out", nodes.len() as u64)
        .finish();
    incognito_obs::add("lattice.generate.pruned", pruned);
    incognito_obs::add("lattice.generate.candidates_out", nodes.len() as u64);

    // ---- Edge generation --------------------------------------------------
    let edge_span = incognito_obs::span("lattice.generate.edges.time");
    let edge_tspan = incognito_obs::trace::span("lattice.edges");
    let edges = generate_edges(prev, &nodes);
    edge_span.finish();
    edge_tspan.arg("edges_out", edges.len() as u64).finish();
    incognito_obs::add("lattice.generate.edges_out", edges.len() as u64);
    tspan.set_arg("candidates_out", nodes.len() as u64);
    CandidateGraph::new(arity, nodes, edges)
}

/// The edge-generation phase: candidate edges from the three disjuncts of
/// the paper's `CandidateEdges` query, minus implied edges (compositions of
/// two candidate edges).
fn generate_edges(prev: &CandidateGraph, nodes: &[NodeSpec]) -> Vec<(NodeId, NodeId)> {
    let prev_edges: FxHashSet<(NodeId, NodeId)> = prev.edges().iter().copied().collect();

    // Index the new candidates by their parents.
    let mut by_parent1: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    let mut by_parent2: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for (id, n) in nodes.iter().enumerate() {
        let (p1, p2) = (
            n.parent1.expect("joined nodes have parents"),
            n.parent2.expect("joined nodes have parents"),
        );
        by_parent1.entry(p1).or_default().push(id as NodeId);
        by_parent2.entry(p2).or_default().push(id as NodeId);
    }
    let parent2 = |id: NodeId| nodes[id as usize].parent2.expect("checked above");

    let mut candidate: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    // Disjunct 1 and 2: an edge between the first parents, with the second
    // parents either also connected by an edge (1) or equal (2).
    for &(s, e) in prev.edges() {
        if let (Some(ps), Some(qs)) = (by_parent1.get(&s), by_parent1.get(&e)) {
            for &p in ps {
                for &q in qs {
                    let (p2, q2) = (parent2(p), parent2(q));
                    if p2 == q2 || prev_edges.contains(&(p2, q2)) {
                        candidate.insert((p, q));
                    }
                }
            }
        }
    }
    // Disjunct 3: equal first parents, edge between second parents.
    for (_, group) in by_parent1.iter() {
        for &p in group {
            for &q in group {
                if p != q && prev_edges.contains(&(parent2(p), parent2(q))) {
                    candidate.insert((p, q));
                }
            }
        }
    }

    // EXCEPT: remove edges implied by a two-edge path within the candidate
    // set (the paper observes implied relationships here are separated by
    // at most one node).
    let mut out: FxHashMap<NodeId, FxHashSet<NodeId>> = FxHashMap::default();
    for &(s, e) in &candidate {
        out.entry(s).or_default().insert(e);
    }
    let mut edges: Vec<(NodeId, NodeId)> = candidate
        .iter()
        .copied()
        .filter(|&(s, e)| {
            !out.get(&s).is_some_and(|mids| {
                mids.iter().any(|&m| m != e && out.get(&m).is_some_and(|o| o.contains(&e)))
            })
        })
        .collect();
    edges.sort_unstable();
    edges
}

/// Reference edge construction: the cover relation of the generalization
/// partial order restricted to `nodes` — `p → q` iff `q` generalizes `p`
/// and no other candidate lies strictly between them. Quadratic; used by
/// tests and the edge-generation ablation to validate [`generate_next`].
pub fn edges_by_cover(nodes: &[NodeSpec]) -> Vec<(NodeId, NodeId)> {
    let n = nodes.len();
    let mut edges = Vec::new();
    for s in 0..n {
        for e in 0..n {
            if s == e || !nodes[s].is_generalized_by(&nodes[e]) {
                continue;
            }
            let has_mid = (0..n).any(|m| {
                m != s
                    && m != e
                    && nodes[s].is_generalized_by(&nodes[m])
                    && nodes[m].is_generalized_by(&nodes[e])
            });
            if !has_mid {
                edges.push((s as NodeId, e as NodeId));
            }
        }
    }
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_hierarchy::builders;
    use incognito_table::{Attribute, Schema};
    use std::sync::Arc;

    /// Schema over ⟨Birthdate, Sex, Zipcode⟩ with Figure 2's hierarchies.
    fn bsz_schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new(
                "Birthdate",
                builders::suppression("Birthdate", &["1/21/76", "2/28/76", "4/13/86"]).unwrap(),
            ),
            Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
            Attribute::new(
                "Zipcode",
                builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2)
                    .unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn join_from_singletons_builds_pairwise_lattices() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive, PruneStrategy::HashTree);
        assert_eq!(c2.arity(), 2);
        // Families: (B,S) 2*2=4, (B,Z) 2*3=6, (S,Z) 2*3=6 nodes.
        assert_eq!(c2.num_nodes(), 16);
        let fams = c2.families();
        assert_eq!(fams.len(), 3);
        assert_eq!(fams[&vec![0, 1]].len(), 4);
        assert_eq!(fams[&vec![0, 2]].len(), 6);
        assert_eq!(fams[&vec![1, 2]].len(), 6);
        // Each family's edges match the full pairwise lattice's cover edges.
        assert_eq!(c2.edges().len(), edges_by_cover(c2.nodes()).len());
        assert_eq!(c2.edges(), &edges_by_cover(c2.nodes())[..]);
        // Roots: the all-zeros node of each family.
        let roots = c2.roots();
        assert_eq!(roots.len(), 3);
        for r in roots {
            assert_eq!(c2.node(r).height(), 0);
        }
    }

    #[test]
    fn parents_recorded_during_join() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[1, 2]);
        let alive = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive, PruneStrategy::HashTree);
        for n in c2.nodes() {
            let p1 = c1.node(n.parent1.unwrap());
            let p2 = c1.node(n.parent2.unwrap());
            assert_eq!(p1.parts[0], n.parts[0]);
            assert_eq!(p2.parts[0], n.parts[1]);
        }
    }

    /// Reproduces Figure 5 → Figure 7(a): from the surviving 2-attribute
    /// nodes of the Patients example, the 3-attribute candidate graph has
    /// exactly the five nodes ⟨B1,S1,Z0⟩, ⟨B1,S1,Z1⟩, ⟨B1,S0,Z2⟩, ⟨B0,S1,Z2⟩,
    /// ⟨B1,S1,Z2⟩ with the four drawn edges.
    #[test]
    fn figure7_graph_from_figure5_survivors() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive1 = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive1, PruneStrategy::HashTree);

        // Survivors per Figure 5's final frames:
        //   ⟨B,S⟩: ⟨B1,S0⟩, ⟨B0,S1⟩, ⟨B1,S1⟩
        //   ⟨B,Z⟩: ⟨B1,Z0⟩, ⟨B1,Z1⟩, ⟨B0,Z2⟩, ⟨B1,Z2⟩
        //   ⟨S,Z⟩: ⟨S1,Z0⟩, ⟨S1,Z1⟩, ⟨S0,Z2⟩, ⟨S1,Z2⟩
        let surviving: Vec<Vec<(usize, LevelNo)>> = vec![
            vec![(0, 1), (1, 0)],
            vec![(0, 0), (1, 1)],
            vec![(0, 1), (1, 1)],
            vec![(0, 1), (2, 0)],
            vec![(0, 1), (2, 1)],
            vec![(0, 0), (2, 2)],
            vec![(0, 1), (2, 2)],
            vec![(1, 1), (2, 0)],
            vec![(1, 1), (2, 1)],
            vec![(1, 0), (2, 2)],
            vec![(1, 1), (2, 2)],
        ];
        let mut alive2 = vec![false; c2.num_nodes()];
        for spec in &surviving {
            let id = c2.find(spec).expect("survivor exists in C2");
            alive2[id as usize] = true;
        }
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashTree);

        let mut specs: Vec<Vec<(usize, LevelNo)>> =
            c3.nodes().iter().map(|n| n.parts.clone()).collect();
        specs.sort();
        let mut expected = vec![
            vec![(0, 1), (1, 1), (2, 0)],
            vec![(0, 1), (1, 1), (2, 1)],
            vec![(0, 1), (1, 0), (2, 2)],
            vec![(0, 0), (1, 1), (2, 2)],
            vec![(0, 1), (1, 1), (2, 2)],
        ];
        expected.sort();
        assert_eq!(specs, expected, "Figure 7(a) candidate nodes");

        // Figure 7(a) edges: B1S1Z0→B1S1Z1, B1S1Z1→B1S1Z2,
        // B1S0Z2→B1S1Z2, B0S1Z2→B1S1Z2.
        let id = |spec: &[(usize, LevelNo)]| c3.find(spec).unwrap();
        let mut expected_edges = [(id(&[(0, 1), (1, 1), (2, 0)]), id(&[(0, 1), (1, 1), (2, 1)])),
            (id(&[(0, 1), (1, 1), (2, 1)]), id(&[(0, 1), (1, 1), (2, 2)])),
            (id(&[(0, 1), (1, 0), (2, 2)]), id(&[(0, 1), (1, 1), (2, 2)])),
            (id(&[(0, 0), (1, 1), (2, 2)]), id(&[(0, 1), (1, 1), (2, 2)]))];
        expected_edges.sort_unstable();
        assert_eq!(c3.edges(), &expected_edges[..]);

        // And they agree with the cover relation.
        assert_eq!(c3.edges(), &edges_by_cover(c3.nodes())[..]);

        // Super-root grouping (§3.3.1): all three roots of this family
        // share the GLB ⟨B0,S0,Z0⟩... the paper's example states the roots
        // are ⟨B1,S1,Z0⟩, ⟨B1,S0,Z2⟩, ⟨B0,S1,Z2⟩ with GLB ⟨B0,S0,Z0⟩.
        let roots = c3.roots();
        assert_eq!(roots.len(), 3);
        let glb = c3.family_glb(&roots).unwrap();
        assert_eq!(glb.parts, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn prune_drops_candidates_with_dead_subsets() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive1 = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive1, PruneStrategy::HashSet);
        // Kill every ⟨S, Z⟩ node: no 3-attribute candidate can survive the
        // prune because its ⟨S, Z⟩ subset is gone.
        let mut alive2 = vec![true; c2.num_nodes()];
        for (i, n) in c2.nodes().iter().enumerate() {
            if n.attr_set() == vec![1, 2] {
                alive2[i] = false;
            }
        }
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashSet);
        assert_eq!(c3.num_nodes(), 0);
        // Without the prune, join results (B,S)×(B,Z)-driven candidates remain.
        let c3_unpruned = generate_next(&c2, &alive2, PruneStrategy::None);
        assert!(c3_unpruned.num_nodes() > 0);
    }

    #[test]
    fn strategies_agree() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive1 = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive1, PruneStrategy::HashTree);
        // Arbitrary aliveness pattern.
        let alive2: Vec<bool> = (0..c2.num_nodes()).map(|i| i % 4 != 1).collect();
        let a = generate_next(&c2, &alive2, PruneStrategy::HashTree);
        let b = generate_next(&c2, &alive2, PruneStrategy::HashSet);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn empty_survivors_yield_empty_graph() {
        let schema = bsz_schema();
        let c1 = CandidateGraph::initial(&schema, &[0, 1]);
        let alive = vec![false; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive, PruneStrategy::HashTree);
        assert_eq!(c2.num_nodes(), 0);
        assert_eq!(c2.num_edges(), 0);
        assert!(c2.roots().is_empty());
    }

    use incognito_hierarchy::LevelNo;
}
