//! Multi-attribute generalization lattices and a-priori candidate graphs.
//!
//! Section 3 of the paper organizes the search for k-anonymous full-domain
//! generalizations around *candidate generalization graphs*: at iteration
//! `i`, the nodes `Cᵢ` are the multi-attribute generalizations of the
//! `i`-attribute subsets of the quasi-identifier that could still be
//! k-anonymous, and the edges `Eᵢ` are the direct multi-attribute
//! generalization relationships among them (Figures 3, 5, 6, 7).
//!
//! This crate provides:
//!
//! * [`CandidateGraph`] — the relational nodes/edges representation of
//!   Figure 6, with breadth-first-search helpers (roots, heights,
//!   adjacency, families);
//! * [`CandidateGraph::initial`] — `C₁`/`E₁` straight from the domain
//!   generalization hierarchies;
//! * [`generate_next`] — the a-priori **join**, **prune**, and
//!   **edge-generation** phases of §3.1.2 that build `Cᵢ₊₁`/`Eᵢ₊₁` from the
//!   surviving nodes `Sᵢ`;
//! * [`CandidateGraph::full_lattice`] — the complete (un-pruned)
//!   multi-attribute lattice over the full quasi-identifier, used by the
//!   baseline algorithms (Samarati's binary search and bottom-up BFS);
//! * [`hash_tree`] — the Apriori hash tree of Agrawal & Srikant used as the
//!   prune phase's membership structure, plus a flat hash-set alternative
//!   for the ablation benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
mod graph;
pub mod hash_tree;

pub use candidate::{generate_next, PruneStrategy};
pub use graph::{CandidateGraph, NodeId, NodeSpec};
