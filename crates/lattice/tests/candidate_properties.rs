//! Property tests for the a-priori candidate generation: over random
//! schemas and random survivor patterns, the generated graphs satisfy the
//! structural invariants the Incognito search depends on.
//!
//! Schemas and survivor patterns are drawn from the workspace's seeded
//! PRNG so every run checks the same case set.

use incognito_hierarchy::builders;
use incognito_lattice::{candidate, generate_next, CandidateGraph, PruneStrategy};
use incognito_obs::Rng;
use incognito_table::{Attribute, Schema};
use std::sync::Arc;

/// Random 3-attribute schema with hierarchy heights 1–3.
fn random_schema(rng: &mut Rng) -> Arc<Schema> {
    let attrs = (0..3)
        .map(|i| {
            let h = 1 + rng.below(3) as u8;
            let name = ["A", "B", "C"][i];
            // Fixed-width codes of length h rounded digit by digit give
            // a chain of exactly height h.
            let width = h as usize;
            let values: Vec<String> = (0..4u32).map(|v| format!("{v:0width$}")).collect();
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            Attribute::new(name, builders::round_digits(name, &refs, width).unwrap())
        })
        .collect();
    Schema::new(attrs).unwrap()
}

/// 64 random survivor bits, like proptest's `vec(any::<bool>(), 64)`.
fn random_bits(rng: &mut Rng) -> Vec<bool> {
    (0..64).map(|_| rng.gen_bool(0.5)).collect()
}

fn subsets_of(parts: &[(usize, u8)]) -> Vec<Vec<(usize, u8)>> {
    (0..parts.len())
        .map(|drop| {
            parts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &x)| x)
                .collect()
        })
        .collect()
}

/// Iterating C1 → C2 → C3 under a random aliveness pattern yields
/// graphs whose edges are strict generalization relations with no
/// two-step-implied edges, and whose nodes pass the prune criterion
/// exactly (soundness and completeness of join+prune).
#[test]
fn candidate_graphs_satisfy_invariants() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0xCA4D_0000 + case);
        let schema = random_schema(&mut rng);
        let seed = random_bits(&mut rng);

        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive1 = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive1, PruneStrategy::HashTree);

        // Random survivor pattern over C2, but keep at least the all-zero
        // nodes alive so C3 is non-trivial sometimes.
        let alive2: Vec<bool> = (0..c2.num_nodes())
            .map(|i| c2.node(i as u32).height() == 0 || seed[i % seed.len()])
            .collect();
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashTree);

        // Survivor spec set of C2.
        let s2: std::collections::HashSet<Vec<(usize, u8)>> = (0..c2.num_nodes())
            .filter(|&i| alive2[i])
            .map(|i| c2.node(i as u32).parts.clone())
            .collect();

        // (a) prune soundness: every C3 node's 2-subsets are in S2.
        for n in c3.nodes() {
            for sub in subsets_of(&n.parts) {
                assert!(s2.contains(&sub), "case {case}: unpruned candidate {:?}", n.parts);
            }
        }

        // (b) prune completeness: every 3-spec whose 2-subsets are all in
        // S2 appears in C3.
        let full = CandidateGraph::full_lattice(&schema, &[0, 1, 2]);
        for node in full.nodes() {
            let qualifies = subsets_of(&node.parts).iter().all(|s| s2.contains(s));
            let present = c3.find(&node.parts).is_some();
            assert_eq!(qualifies, present, "case {case}: spec {:?}", node.parts);
        }

        // (c) edges are strict generalizations, deduplicated, and not
        // implied by a two-edge path.
        for graph in [&c2, &c3] {
            let edge_set: std::collections::HashSet<(u32, u32)> =
                graph.edges().iter().copied().collect();
            assert_eq!(edge_set.len(), graph.num_edges(), "case {case}: duplicate edges");
            for &(s, e) in graph.edges() {
                assert!(graph.node(s).is_generalized_by(graph.node(e)), "case {case}");
                for &m in graph.direct_generalizations(s) {
                    if m != e {
                        assert!(
                            !edge_set.contains(&(m, e)),
                            "case {case}: edge ({s},{e}) implied via {m}"
                        );
                    }
                }
            }
        }

        // (d) prune strategies agree.
        let via_set = generate_next(&c2, &alive2, PruneStrategy::HashSet);
        assert_eq!(c3.nodes(), via_set.nodes(), "case {case}");
        assert_eq!(c3.edges(), via_set.edges(), "case {case}");
    }
}

/// With everything alive, generated edges equal the cover relation of
/// the candidate set (the lattice case, where the paper's relational
/// edge construction is exact). The schema space is 3 heights in 1–3, so
/// all 27 are enumerated via seeds.
#[test]
fn full_survivor_edges_equal_cover() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xC0FE_0000 + case);
        let schema = random_schema(&mut rng);
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let mut graph = c1;
        for _ in 0..2 {
            let alive = vec![true; graph.num_nodes()];
            graph = generate_next(&graph, &alive, PruneStrategy::HashTree);
            assert_eq!(
                graph.edges(),
                &candidate::edges_by_cover(graph.nodes())[..],
                "case {case}"
            );
        }
    }
}

/// BFS reachability: every non-root node of a generated graph is
/// reachable from the roots (the search visits or marks every node).
#[test]
fn roots_reach_everything() {
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x2007_0000 + case);
        let schema = random_schema(&mut rng);
        let seed = random_bits(&mut rng);
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let c2 = generate_next(&c1, &vec![true; c1.num_nodes()], PruneStrategy::HashTree);
        let alive2: Vec<bool> = (0..c2.num_nodes()).map(|i| seed[i % seed.len()]).collect();
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashTree);
        let mut seen = vec![false; c3.num_nodes()];
        let mut stack = c3.roots();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            stack.extend_from_slice(c3.direct_generalizations(n));
        }
        assert!(seen.iter().all(|&s| s), "case {case}: unreachable candidate node");
    }
}
