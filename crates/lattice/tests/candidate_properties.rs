//! Property tests for the a-priori candidate generation: over random
//! schemas and random survivor patterns, the generated graphs satisfy the
//! structural invariants the Incognito search depends on.

use proptest::prelude::*;

use incognito_hierarchy::builders;
use incognito_lattice::{candidate, generate_next, CandidateGraph, PruneStrategy};
use incognito_table::{Attribute, Schema};
use std::sync::Arc;

/// Random 3-attribute schema with hierarchy heights 1–3.
fn arb_schema() -> impl Strategy<Value = Arc<Schema>> {
    proptest::collection::vec(1u8..=3, 3).prop_map(|heights| {
        let attrs = heights
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let name = ["A", "B", "C"][i];
                // Fixed-width codes of length h rounded digit by digit give
                // a chain of exactly height h.
                let width = h as usize;
                let values: Vec<String> =
                    (0..4u32).map(|v| format!("{v:0width$}")).collect();
                let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                Attribute::new(name, builders::round_digits(name, &refs, width).unwrap())
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

fn subsets_of(parts: &[(usize, u8)]) -> Vec<Vec<(usize, u8)>> {
    (0..parts.len())
        .map(|drop| {
            parts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &x)| x)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Iterating C1 → C2 → C3 under a random aliveness pattern yields
    /// graphs whose edges are strict generalization relations with no
    /// two-step-implied edges, and whose nodes pass the prune criterion
    /// exactly (soundness and completeness of join+prune).
    #[test]
    fn candidate_graphs_satisfy_invariants(
        schema in arb_schema(),
        seed in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let alive1 = vec![true; c1.num_nodes()];
        let c2 = generate_next(&c1, &alive1, PruneStrategy::HashTree);

        // Random survivor pattern over C2, but keep at least the all-zero
        // nodes alive so C3 is non-trivial sometimes.
        let alive2: Vec<bool> = (0..c2.num_nodes())
            .map(|i| c2.node(i as u32).height() == 0 || seed[i % seed.len()])
            .collect();
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashTree);

        // Survivor spec set of C2.
        let s2: std::collections::HashSet<Vec<(usize, u8)>> = (0..c2.num_nodes())
            .filter(|&i| alive2[i])
            .map(|i| c2.node(i as u32).parts.clone())
            .collect();

        // (a) prune soundness: every C3 node's 2-subsets are in S2.
        for n in c3.nodes() {
            for sub in subsets_of(&n.parts) {
                prop_assert!(s2.contains(&sub), "unpruned candidate {:?}", n.parts);
            }
        }

        // (b) prune completeness: every 3-spec whose 2-subsets are all in
        // S2 appears in C3.
        let full = CandidateGraph::full_lattice(&schema, &[0, 1, 2]);
        for node in full.nodes() {
            let qualifies = subsets_of(&node.parts).iter().all(|s| s2.contains(s));
            let present = c3.find(&node.parts).is_some();
            prop_assert_eq!(qualifies, present, "spec {:?}", node.parts);
        }

        // (c) edges are strict generalizations, deduplicated, and not
        // implied by a two-edge path.
        for graph in [&c2, &c3] {
            let edge_set: std::collections::HashSet<(u32, u32)> =
                graph.edges().iter().copied().collect();
            prop_assert_eq!(edge_set.len(), graph.num_edges(), "duplicate edges");
            for &(s, e) in graph.edges() {
                prop_assert!(graph.node(s).is_generalized_by(graph.node(e)));
                for &m in graph.direct_generalizations(s) {
                    if m != e {
                        prop_assert!(
                            !edge_set.contains(&(m, e)),
                            "edge ({s},{e}) implied via {m}"
                        );
                    }
                }
            }
        }

        // (d) prune strategies agree.
        let via_set = generate_next(&c2, &alive2, PruneStrategy::HashSet);
        prop_assert_eq!(c3.nodes(), via_set.nodes());
        prop_assert_eq!(c3.edges(), via_set.edges());
    }

    /// With everything alive, generated edges equal the cover relation of
    /// the candidate set (the lattice case, where the paper's relational
    /// edge construction is exact).
    #[test]
    fn full_survivor_edges_equal_cover(schema in arb_schema()) {
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let mut graph = c1;
        for _ in 0..2 {
            let alive = vec![true; graph.num_nodes()];
            graph = generate_next(&graph, &alive, PruneStrategy::HashTree);
            prop_assert_eq!(graph.edges(), &candidate::edges_by_cover(graph.nodes())[..]);
        }
    }

    /// BFS reachability: every non-root node of a generated graph is
    /// reachable from the roots (the search visits or marks every node).
    #[test]
    fn roots_reach_everything(schema in arb_schema(), seed in proptest::collection::vec(any::<bool>(), 64)) {
        let c1 = CandidateGraph::initial(&schema, &[0, 1, 2]);
        let c2 = generate_next(&c1, &vec![true; c1.num_nodes()], PruneStrategy::HashTree);
        let alive2: Vec<bool> = (0..c2.num_nodes()).map(|i| seed[i % seed.len()]).collect();
        let c3 = generate_next(&c2, &alive2, PruneStrategy::HashTree);
        let mut seen = vec![false; c3.num_nodes()];
        let mut stack = c3.roots();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            stack.extend_from_slice(c3.direct_generalizations(n));
        }
        prop_assert!(seen.iter().all(|&s| s), "unreachable candidate node");
    }
}
