//! Single-dimension ordered-set partitioning (§5.1.2; the recoding model of
//! Bayardo & Agrawal \[3\] and of Iyengar \[11\] for numeric data).
//!
//! Each attribute's ground domain is a totally-ordered set; the recoding
//! maps it onto disjoint covering intervals. This implementation uses a
//! simple greedy coarsening — repeatedly halve the interval count of the
//! attribute currently contributing the most distinct intervals — which is
//! the partition-based analogue of Datafly's greedy generalization. (The
//! optimal set-enumeration search of \[3\] is out of scope; the *model* is
//! what the taxonomy compares.)

use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, AnonymizedRelease};

/// Greedily coarsen per-attribute interval partitions until the projection
/// over `qi` is k-anonymous (or every attribute has collapsed to a single
/// interval, which is k-anonymous whenever `|T| ≥ k`).
pub fn ordered_partition_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let domains: Vec<usize> = qi.iter().map(|&a| schema.hierarchy(a).ground_size()).collect();

    // boundaries[pos] = ascending start ids of each interval; interval j of
    // attribute pos covers [boundaries[j], boundaries[j+1]).
    let mut boundaries: Vec<Vec<u32>> =
        domains.iter().map(|&d| (0..d as u32).collect()).collect();

    loop {
        // Map every value to its interval index, group rows, test k-anonymity.
        let maps: Vec<Vec<u32>> = boundaries
            .iter()
            .zip(&domains)
            .map(|(b, &d)| interval_map(b, d))
            .collect();
        let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for row in 0..n_rows {
            let key: Vec<u32> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| maps[pos][table.column(a)[row] as usize])
                .collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        if counts.values().all(|&c| c >= k) {
            break;
        }
        // Coarsen the attribute with the most intervals by merging its
        // lightest interval (by marginal row count) into the lighter of
        // its neighbors — this collapses sparse tails instead of blindly
        // halving everything. Stop when every attribute is one interval.
        let victim = (0..qi.len())
            .filter(|&pos| boundaries[pos].len() > 1)
            .max_by_key(|&pos| boundaries[pos].len());
        let Some(pos) = victim else { break };
        let a = qi[pos];
        let mut marginal = vec![0u64; boundaries[pos].len()];
        for row in 0..n_rows {
            marginal[maps[pos][table.column(a)[row] as usize] as usize] += 1;
        }
        let lightest = (0..marginal.len())
            .min_by_key(|&j| marginal[j])
            .expect("at least two intervals");
        // Merge interval `lightest` with its lighter neighbor by deleting
        // the boundary between them: deleting boundary j merges intervals
        // j-1 and j.
        let merge_right = lightest == 0
            || (lightest + 1 < marginal.len()
                && marginal[lightest + 1] < marginal[lightest - 1]);
        let delete = if merge_right { lightest + 1 } else { lightest };
        boundaries[pos].remove(delete);
    }

    // Label rows by their interval ranges and tally losses.
    let maps: Vec<Vec<u32>> = boundaries
        .iter()
        .zip(&domains)
        .map(|(b, &d)| interval_map(b, d))
        .collect();
    let mut precision_loss = 0.0;
    let mut lm_loss = 0.0;
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(n_rows);
    for row in 0..n_rows {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let v = table.column(a)[row];
                let j = maps[pos][v as usize] as usize;
                let lo = boundaries[pos][j];
                let hi = boundaries[pos]
                    .get(j + 1)
                    .map(|&b| b - 1)
                    .unwrap_or(domains[pos] as u32 - 1);
                let frac = if domains[pos] <= 1 {
                    0.0
                } else {
                    (hi - lo) as f64 / (domains[pos] - 1) as f64
                };
                precision_loss += frac;
                lm_loss += frac;
                if lo == hi {
                    h.label(0, lo).to_string()
                } else {
                    format!("[{}-{}]", h.label(0, lo), h.label(0, hi))
                }
            })
            .collect();
        qi_labels.push(labels);
    }

    let kept: Vec<usize> = (0..n_rows).collect();
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed: 0,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

/// value id → interval index, given ascending interval start ids.
fn interval_map(boundaries: &[u32], domain: usize) -> Vec<u32> {
    let mut map = vec![0u32; domain];
    let mut j = 0usize;
    for v in 0..domain as u32 {
        while j + 1 < boundaries.len() && boundaries[j + 1] <= v {
            j += 1;
        }
        map[v as usize] = j as u32;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn interval_map_basics() {
        assert_eq!(interval_map(&[0, 2, 4], 6), vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(interval_map(&[0], 3), vec![0, 0, 0]);
    }

    #[test]
    fn patients_partition_is_2_anonymous() {
        let t = patients();
        let r = ordered_partition_anonymize(&t, &[0, 1, 2], 2).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.view.num_rows(), 6);
    }

    #[test]
    fn adults_age_gender_partition() {
        let t = adults(&AdultsConfig { rows: 3_000, seed: 11 });
        let r = ordered_partition_anonymize(&t, &[0, 1], 25).unwrap();
        assert!(r.is_k_anonymous(25));
        assert!(r.num_classes() > 1);
        let m = r.metrics(25);
        assert!(m.loss < 1.0);
    }

    #[test]
    fn mondrian_at_least_as_good_as_single_dimension() {
        // §5.1's observation: multi-dimension models encompass solutions the
        // single-dimension ones cannot express.
        let t = adults(&AdultsConfig { rows: 2_000, seed: 9 });
        let k = 20u64;
        let single = ordered_partition_anonymize(&t, &[0, 4], k).unwrap().metrics(k);
        let multi = crate::mondrian::mondrian_anonymize(&t, &[0, 4], k).unwrap().metrics(k);
        assert!(multi.discernibility <= single.discernibility);
    }
}
