//! Workload-based utility evaluation: how well does an anonymized release
//! answer aggregate range queries?
//!
//! The §2.1/§5 minimality discussion is about *information loss proxies*
//! (height, LM, discernibility); this module measures the quantity those
//! proxies stand in for — the error of COUNT queries answered from the
//! release under the standard uniformity assumption (each generalized cell
//! spreads its tuples evenly over the ground values it covers). Used by
//! the examples to compare minimal generalizations by what analysts
//! actually experience.
//!
//! Applies to full-domain generalizations, where the released cell of a
//! tuple is determined by `(attribute, level)` and its ground extent is
//! the hierarchy subtree.

use incognito_hierarchy::LevelNo;
use incognito_table::{Table, TableError};

/// A conjunctive COUNT query: for each touched attribute, an inclusive
/// ground-id range (ids are dictionary order; the dataset builders keep
/// numeric attributes numerically sorted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeQuery {
    /// `(attribute, lo_id, hi_id)` conjuncts, attribute-distinct.
    pub conjuncts: Vec<(usize, u32, u32)>,
}

impl RangeQuery {
    /// Exact answer against the raw table.
    pub fn true_count(&self, table: &Table) -> u64 {
        (0..table.num_rows())
            .filter(|&row| {
                self.conjuncts
                    .iter()
                    .all(|&(a, lo, hi)| (lo..=hi).contains(&table.column(a)[row]))
            })
            .count() as u64
    }

    /// Estimated answer from the full-domain generalization `levels` of
    /// `qi` (uniformity within each generalized cell): every tuple
    /// contributes the product over conjuncts of
    /// `|subtree ∩ range| / |subtree|` for its released cell.
    pub fn estimated_count(
        &self,
        table: &Table,
        qi: &[usize],
        levels: &[LevelNo],
    ) -> Result<f64, TableError> {
        let schema = table.schema();
        // Per conjunct: the attribute's released level (0 if not in QI) and
        // per generalized value the overlap fraction.
        let mut fractions: Vec<(usize, Vec<f64>)> = Vec::with_capacity(self.conjuncts.len());
        for &(a, lo, hi) in &self.conjuncts {
            let h = schema.hierarchy(a);
            if lo > hi || hi as usize >= h.ground_size() {
                return Err(TableError::IdOutOfRange {
                    attribute: schema.attribute(a).name().to_string(),
                    id: hi,
                    domain: h.ground_size(),
                });
            }
            let level = qi
                .iter()
                .position(|&q| q == a)
                .map(|p| levels[p])
                .unwrap_or(0);
            let map = h.map_to_level(level);
            let mut total = vec![0u32; h.level_size(level)];
            let mut inside = vec![0u32; h.level_size(level)];
            for (g, &cell) in map.iter().enumerate() {
                total[cell as usize] += 1;
                if (lo..=hi).contains(&(g as u32)) {
                    inside[cell as usize] += 1;
                }
            }
            let frac: Vec<f64> = total
                .iter()
                .zip(&inside)
                .map(|(&t, &i)| if t == 0 { 0.0 } else { i as f64 / t as f64 })
                .collect();
            // Per-ground lookup: fraction of the row's released cell.
            let per_ground: Vec<f64> =
                map.iter().map(|&cell| frac[cell as usize]).collect();
            fractions.push((a, per_ground));
        }

        let mut est = 0.0;
        for row in 0..table.num_rows() {
            let mut p = 1.0;
            for (a, per_ground) in &fractions {
                p *= per_ground[table.column(*a)[row] as usize];
            }
            est += p;
        }
        Ok(est)
    }
}

/// A deterministic pseudo-random workload of `n` range queries over `qi`
/// (1–2 conjuncts each, ranges covering 10–50% of the domain).
pub fn random_workload(table: &Table, qi: &[usize], n: usize, seed: u64) -> Vec<RangeQuery> {
    let schema = table.schema();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n)
        .map(|_| {
            let arity = 1 + (next() % 2) as usize;
            let mut attrs: Vec<usize> = qi.to_vec();
            // Deterministic shuffle-prefix.
            for i in 0..attrs.len() {
                let j = i + (next() as usize) % (attrs.len() - i);
                attrs.swap(i, j);
            }
            let conjuncts = attrs
                .into_iter()
                .take(arity.min(qi.len()))
                .map(|a| {
                    let d = schema.hierarchy(a).ground_size() as u64;
                    let width = (d / 10 + next() % (d * 4 / 10 + 1)).clamp(1, d);
                    let lo = next() % (d - width + 1);
                    (a, lo as u32, (lo + width - 1) as u32)
                })
                .collect();
            RangeQuery { conjuncts }
        })
        .collect()
}

/// Mean relative error of `workload` answered from the generalization
/// `levels` (denominator floored at 1 to keep empty queries meaningful).
pub fn average_relative_error(
    table: &Table,
    qi: &[usize],
    levels: &[LevelNo],
    workload: &[RangeQuery],
) -> Result<f64, TableError> {
    let mut total = 0.0;
    for q in workload {
        let truth = q.true_count(table) as f64;
        let est = q.estimated_count(table, qi, levels)?;
        total += (est - truth).abs() / truth.max(1.0);
    }
    Ok(total / workload.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn ground_level_answers_exactly() {
        let t = adults(&AdultsConfig { rows: 1_000, seed: 90 });
        let qi = [0usize, 1, 3];
        let workload = random_workload(&t, &qi, 20, 7);
        let err = average_relative_error(&t, &qi, &[0, 0, 0], &workload).unwrap();
        assert!(err.abs() < 1e-9, "ground level must be exact, got {err}");
    }

    #[test]
    fn generalization_increases_error_on_average() {
        let t = adults(&AdultsConfig { rows: 2_000, seed: 91 });
        let qi = [0usize, 1, 3];
        let workload = random_workload(&t, &qi, 40, 8);
        let ground = average_relative_error(&t, &qi, &[0, 0, 0], &workload).unwrap();
        let mid = average_relative_error(&t, &qi, &[2, 0, 1], &workload).unwrap();
        let top = average_relative_error(&t, &qi, &[4, 1, 2], &workload).unwrap();
        assert!(ground <= mid + 1e-9);
        assert!(mid <= top + 1e-1, "mid {mid} vs top {top}"); // noisy but ordered
        assert!(top > 0.0);
    }

    #[test]
    fn estimates_conserve_mass() {
        // A query covering the whole domain is answered exactly at any
        // level (every cell's overlap fraction is 1).
        let t = patients();
        let h = t.schema().hierarchy(2);
        let q = RangeQuery { conjuncts: vec![(2, 0, h.ground_size() as u32 - 1)] };
        for level in 0..=h.height() {
            let est = q.estimated_count(&t, &[2], &[level]).unwrap();
            assert!((est - 6.0).abs() < 1e-9, "level {level}");
        }
    }

    #[test]
    fn hand_computed_overlap() {
        // Patients zipcodes: ids sorted by dictionary order of the domain
        // {53715, 53710, 53706, 53703} as inserted. Query for id range
        // [0,0] (53715 only): 2 rows truly match. At level 1, 53715's cell
        // is 5371* covering {53715, 53710}: rows with 53715 (2) and 53710
        // (0) contribute 1/2 each... 53710 doesn't appear, so est = 2×0.5.
        let t = patients();
        let q = RangeQuery { conjuncts: vec![(2, 0, 0)] };
        assert_eq!(q.true_count(&t), 2);
        let est = q.estimated_count(&t, &[2], &[1]).unwrap();
        assert!((est - 1.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn invalid_ranges_error() {
        let t = patients();
        let q = RangeQuery { conjuncts: vec![(2, 0, 99)] };
        assert!(q.estimated_count(&t, &[2], &[0]).is_err());
    }
}
