//! Multi-dimension full-subgraph recoding (§5.1.3).
//!
//! The recoding function operates on the multi-attribute value
//! generalization lattice (Figure 13): it may map a value *vector* to any
//! of its (direct or implied) generalizations, but whenever it maps
//! anything to a node `⟨g₁, ..., gₙ⟩` it must map **every** vector in the
//! sub-graph rooted at that node to it. The paper's example: mapping
//! ⟨Male, 53715⟩ to ⟨Person, 5371*⟩ forces ⟨Female, 53715⟩, ⟨Male, 53710⟩,
//! and ⟨Female, 53710⟩ there too.
//!
//! A used node is identified by a level vector plus the generalized value
//! vector; the subgraph-closure invariant is maintained by a fix-point:
//! whenever two used nodes' subgraphs overlap on any vector present in the
//! table, both are raised to their join until no overlap remains.

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Schema, Table, TableError};

use crate::release::{build_view_from_labels, subtree_sizes, AnonymizedRelease};

/// Greedy multi-dimension full-subgraph recoding to k-anonymity.
pub fn full_subgraph_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();

    // Distinct ground QI vectors and the rows holding each.
    let mut vectors: Vec<Vec<u32>> = Vec::new();
    let mut vec_rows: Vec<Vec<usize>> = Vec::new();
    {
        let mut index: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for row in 0..n_rows {
            let v: Vec<u32> = qi.iter().map(|&a| table.column(a)[row]).collect();
            let slot = *index.entry(v.clone()).or_insert_with(|| {
                vectors.push(v);
                vec_rows.push(Vec::new());
                vectors.len() - 1
            });
            vec_rows[slot].push(row);
        }
    }

    // levels[i] = assigned level vector of ground vector i.
    let mut levels: Vec<Vec<LevelNo>> = vec![vec![0; qi.len()]; vectors.len()];
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();

    let image = |schema: &Schema, v: &[u32], ls: &[LevelNo]| -> Vec<u32> {
        qi.iter()
            .enumerate()
            .map(|(pos, &a)| schema.hierarchy(a).generalize(v[pos], ls[pos]))
            .collect()
    };

    loop {
        // Group vectors by their released node (levels + image).
        let mut groups: FxHashMap<(Vec<LevelNo>, Vec<u32>), Vec<usize>> = FxHashMap::default();
        for (i, v) in vectors.iter().enumerate() {
            let key = (levels[i].clone(), image(&schema, v, &levels[i]));
            groups.entry(key).or_default().push(i);
        }
        let violator = groups
            .iter()
            .map(|(key, members)| {
                let size: usize = members.iter().map(|&i| vec_rows[i].len()).sum();
                (size, key.clone(), members.clone())
            })
            .filter(|(size, _, _)| (*size as u64) < k)
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let Some((_, (node_levels, _node_vals), members)) = violator else { break };

        // Promote the first promotable attribute with the most headroom
        // (deepest remaining chain), preferring wide domains.
        let promote_pos = (0..qi.len())
            .filter(|&pos| node_levels[pos] < heights[pos])
            .max_by_key(|&pos| {
                (heights[pos] - node_levels[pos]) as usize
                    * schema.hierarchy(qi[pos]).ground_size()
            });
        let Some(pos) = promote_pos else { break };
        let mut new_levels = node_levels.clone();
        new_levels[pos] += 1;
        let anchor = image(&schema, &vectors[members[0]], &new_levels);

        // Subgraph closure: every vector whose image at the new levels is
        // the anchor moves to the new node (absorbing members of other
        // nodes as the model requires).
        for (i, v) in vectors.iter().enumerate() {
            if image(&schema, v, &new_levels) == anchor {
                for (pos2, l) in levels[i].iter_mut().enumerate() {
                    *l = (*l).max(new_levels[pos2]);
                }
                // Raising component-wise can overshoot the anchor's levels
                // for vectors previously promoted elsewhere; those keep
                // their higher levels — the fix-point below reconciles.
            }
        }

        // Fix-point: eliminate partial subgraph overlaps by joining nodes.
        resolve_overlaps(&schema, qi, &vectors, &mut levels);
    }

    // Materialize.
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();
    let mut precision_loss = 0.0;
    let mut lm_loss = 0.0;
    let mut qi_labels: Vec<Vec<String>> = vec![Vec::new(); n_rows];
    for (i, v) in vectors.iter().enumerate() {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let l = levels[i][pos];
                let g = h.generalize(v[pos], l);
                h.label(l, g).to_string()
            })
            .collect();
        for &row in &vec_rows[i] {
            for (pos, &a) in qi.iter().enumerate() {
                let h = schema.hierarchy(a);
                let l = levels[i][pos];
                let g = h.generalize(v[pos], l);
                precision_loss += crate::release::precision_fraction(h, l);
                lm_loss +=
                    crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
            }
            qi_labels[row] = labels.clone();
        }
    }
    let kept: Vec<usize> = (0..n_rows).collect();
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed: 0,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

/// Raise nodes until no used node's subgraph contains a vector assigned to
/// a different node — the full-subgraph validity invariant.
fn resolve_overlaps(
    schema: &Schema,
    qi: &[usize],
    vectors: &[Vec<u32>],
    levels: &mut [Vec<LevelNo>],
) {
    let image = |v: &[u32], ls: &[LevelNo]| -> Vec<u32> {
        qi.iter()
            .enumerate()
            .map(|(pos, &a)| schema.hierarchy(a).generalize(v[pos], ls[pos]))
            .collect()
    };
    loop {
        let mut changed = false;
        // Collect used nodes.
        let mut nodes: FxHashMap<(Vec<LevelNo>, Vec<u32>), Vec<usize>> = FxHashMap::default();
        for (i, v) in vectors.iter().enumerate() {
            nodes
                .entry((levels[i].clone(), image(v, &levels[i])))
                .or_default()
                .push(i);
        }
        let node_list: Vec<(Vec<LevelNo>, Vec<u32>)> = nodes.keys().cloned().collect();
        for (nl, nv) in &node_list {
            for (i, v) in vectors.iter().enumerate() {
                // Is vector i inside this node's subgraph but assigned
                // elsewhere?
                if &levels[i] != nl && image(v, nl) == *nv {
                    // Join: component-wise max levels.
                    for (pos, l) in levels[i].iter_mut().enumerate() {
                        *l = (*l).max(nl[pos]);
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Check the full-subgraph validity of an assignment: every vector lying in
/// a used node's subgraph must be assigned exactly that node.
pub fn is_valid_full_subgraph(
    schema: &Schema,
    qi: &[usize],
    vectors: &[Vec<u32>],
    levels: &[Vec<LevelNo>],
) -> bool {
    let image = |v: &[u32], ls: &[LevelNo]| -> Vec<u32> {
        qi.iter()
            .enumerate()
            .map(|(pos, &a)| schema.hierarchy(a).generalize(v[pos], ls[pos]))
            .collect()
    };
    for (i, _) in vectors.iter().enumerate() {
        let (nl, nv) = (&levels[i], image(&vectors[i], &levels[i]));
        for (j, w) in vectors.iter().enumerate() {
            if image(w, nl) == nv && levels[j] != *nl {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn patients_subgraph_is_2_anonymous_and_valid() {
        let t = patients();
        let r = full_subgraph_anonymize(&t, &[1, 2], 2).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.view.num_rows(), 6);
    }

    #[test]
    fn closure_example_from_figure13() {
        // Build the ⟨Sex, Zipcode⟩ vectors of the paper's example and
        // verify the validity checker enforces the Figure 13 closure:
        // mapping ⟨Male, 53715⟩ to ⟨Person, 5371*⟩ (levels [1, 1]) without
        // moving ⟨Female, 53715⟩ is invalid.
        let t = patients();
        let schema = t.schema().clone();
        let qi = [1usize, 2];
        let male = schema.hierarchy(1).ground_id("Male").unwrap();
        let female = schema.hierarchy(1).ground_id("Female").unwrap();
        let z15 = schema.hierarchy(2).ground_id("53715").unwrap();
        let vectors = vec![vec![male, z15], vec![female, z15]];
        let bad = vec![vec![1u8, 1], vec![0u8, 0]];
        assert!(!is_valid_full_subgraph(&schema, &qi, &vectors, &bad));
        let good = vec![vec![1u8, 1], vec![1u8, 1]];
        assert!(is_valid_full_subgraph(&schema, &qi, &vectors, &good));
    }

    #[test]
    fn greedy_result_passes_the_validity_checker() {
        let t = adults(&AdultsConfig { rows: 400, seed: 17 });
        let qi = [1usize, 3];
        let r = full_subgraph_anonymize(&t, &qi, 5).unwrap();
        assert!(r.is_k_anonymous(5));
        // Reconstruct levels from released labels and validate.
        let schema = t.schema().clone();
        let mut index: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        let mut vectors: Vec<Vec<u32>> = Vec::new();
        let mut levels: Vec<Vec<LevelNo>> = Vec::new();
        for row in 0..t.num_rows() {
            let v: Vec<u32> = qi.iter().map(|&a| t.column(a)[row]).collect();
            if index.contains_key(&v) {
                continue;
            }
            let ls: Vec<LevelNo> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| {
                    let h = schema.hierarchy(a);
                    let released = r.view.label(row, a);
                    (0..=h.height())
                        .find(|&l| h.label(l, h.generalize(v[pos], l)) == released)
                        .expect("label on ancestor chain")
                })
                .collect();
            index.insert(v.clone(), vectors.len());
            vectors.push(v);
            levels.push(ls);
        }
        assert!(is_valid_full_subgraph(&schema, &qi, &vectors, &levels));
    }

    #[test]
    fn multi_dim_subgraph_no_worse_than_full_domain() {
        let t = adults(&AdultsConfig { rows: 800, seed: 4 });
        let qi = [1usize, 3];
        let k = 15u64;
        let sg = full_subgraph_anonymize(&t, &qi, k).unwrap();
        assert!(sg.is_k_anonymous(k));
        let full = incognito_core::incognito(&t, &qi, &incognito_core::Config::new(k)).unwrap();
        let best_full = full
            .generalizations()
            .iter()
            .map(|g| {
                crate::release::full_domain_release(&t, &qi, &g.levels, None)
                    .unwrap()
                    .metrics(k)
                    .loss
            })
            .fold(f64::INFINITY, f64::min);
        assert!(sg.metrics(k).loss <= best_full + 1e-9);
    }
}
