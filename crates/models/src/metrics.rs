//! Information-loss metrics for comparing anonymization models — the cost
//! criteria the paper's §2.1/§5 cite for choosing among minimal
//! generalizations (\[11\]'s loss metric and classification context,
//! \[17\]'s precision, and the discernibility metric of \[3\]).

use crate::release::AnonymizedRelease;

/// Comparable quality scores for one release.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Discernibility metric `C_DM` \[3\]: Σ over classes of |class|², plus
    /// |T|·(suppressed count) — each suppressed tuple is indistinguishable
    /// from the whole table.
    pub discernibility: u128,
    /// Normalized average equivalence class size
    /// `C_AVG = (kept / classes) / k` \[12\]: 1.0 is ideal.
    pub avg_class_size: f64,
    /// Precision `Prec` \[17\]: 1 − (mean fraction of each cell's
    /// generalization chain consumed). 1.0 = raw data, 0.0 = fully
    /// suppressed.
    pub precision: f64,
    /// Loss metric `LM` \[11\]: mean fraction of each cell's ground domain
    /// merged by the recoding. 0.0 = raw data, 1.0 = fully generalized.
    pub loss: f64,
    /// Number of equivalence classes in the release.
    pub classes: usize,
    /// Tuples suppressed outright.
    pub suppressed: u64,
}

impl Metrics {
    /// Compute all metrics for `release` under anonymity parameter `k`.
    pub fn for_release(release: &AnonymizedRelease, k: u64) -> Metrics {
        let kept: u64 = release.class_sizes.iter().sum();
        let cells = (release.source_rows as f64) * (release.qi.len() as f64);
        let discernibility: u128 = release
            .class_sizes
            .iter()
            .map(|&c| (c as u128) * (c as u128))
            .sum::<u128>()
            + (release.suppressed as u128) * (release.source_rows as u128);
        let avg_class_size = if release.class_sizes.is_empty() || k == 0 {
            f64::NAN
        } else {
            (kept as f64 / release.class_sizes.len() as f64) / k as f64
        };
        let precision = if cells == 0.0 { 1.0 } else { 1.0 - release.precision_loss / cells };
        let loss = if cells == 0.0 { 0.0 } else { release.lm_loss / cells };
        Metrics {
            discernibility,
            avg_class_size,
            precision,
            loss,
            classes: release.class_sizes.len(),
            suppressed: release.suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    
    use crate::release::full_domain_release;
    use incognito_data::patients;

    #[test]
    fn raw_data_scores_perfectly() {
        let t = patients();
        // k=1 at ground level: every metric at its ideal.
        let r = full_domain_release(&t, &[1, 2], &[0, 0], None).unwrap();
        let m = r.metrics(1);
        assert_eq!(m.suppressed, 0);
        assert!((m.precision - 1.0).abs() < 1e-9);
        assert!((m.loss - 0.0).abs() < 1e-9);
        // Classes: (M,53715) (F,53715) (M,53703)x2 (F,53706)x2 → 4 classes.
        assert_eq!(m.classes, 4);
        assert_eq!(m.discernibility, 1 + 1 + 4 + 4);
    }

    #[test]
    fn full_generalization_scores_worst() {
        let t = patients();
        let r = full_domain_release(&t, &[1, 2], &[1, 2], None).unwrap();
        let m = r.metrics(2);
        assert_eq!(m.classes, 1);
        assert_eq!(m.discernibility, 36);
        assert!((m.precision - 0.0).abs() < 1e-9);
        assert!((m.loss - 1.0).abs() < 1e-9);
        assert!((m.avg_class_size - 3.0).abs() < 1e-9); // (6/1)/2
    }

    #[test]
    fn less_generalization_dominates_metrics() {
        let t = patients();
        let better = full_domain_release(&t, &[1, 2], &[1, 0], None).unwrap().metrics(2);
        let worse = full_domain_release(&t, &[1, 2], &[1, 2], None).unwrap().metrics(2);
        assert!(better.discernibility < worse.discernibility);
        assert!(better.precision > worse.precision);
        assert!(better.loss < worse.loss);
        assert!(better.avg_class_size < worse.avg_class_size);
    }

    #[test]
    fn suppression_counts_against_discernibility() {
        let t = patients();
        let r = full_domain_release(&t, &[1, 2], &[0, 0], Some(2)).unwrap();
        let m = r.metrics(2);
        assert_eq!(m.suppressed, 2);
        // Two kept classes of 2 (4+4) plus 2 suppressed × 6 rows.
        assert_eq!(m.discernibility, 8 + 12);
    }
}
