//! Iyengar's genetic algorithm (\[11\], §6 of the paper) for the
//! single-dimension full-subtree recoding model.
//!
//! The paper positions this as the pre-Incognito state of the art for the
//! flexible hierarchy model: a stochastic search over recoding functions,
//! guided by an information-loss fitness, with **no minimality guarantee**
//! (the gap §4 cites when noting the genetic algorithm "does not guarantee
//! minimality"). Reproduced here so the model_taxonomy comparison can
//! include it.
//!
//! Encoding: a chromosome assigns each quasi-identifier attribute a valid
//! *cut* through its value-generalization tree, represented as the set of
//! cut nodes (per-ground-value levels maintaining the subtree closure).
//! Crossover swaps whole-attribute cuts between parents; mutation promotes
//! or demotes one random cut node. Fitness is the LM loss plus a large
//! penalty per tuple violating k-anonymity (violators would be suppressed,
//! as \[11\] charges them).

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, subtree_sizes, AnonymizedRelease};

/// Tunables for the search.
#[derive(Debug, Clone)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-offspring mutation probability (per mille, 0–1000).
    pub mutation_per_mille: u32,
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig { population: 24, generations: 40, mutation_per_mille: 400, seed: 0xce11 }
    }
}

/// A deterministic xorshift64* generator — enough randomness for a GA
/// without threading a dependency through the crate.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One attribute's cut: per-ground-value levels satisfying the subtree
/// closure.
type Cut = Vec<LevelNo>;

/// Run the GA. The best chromosome's violators (classes below k) are
/// suppressed in the release, so the output is always k-anonymous for
/// `|T| ≥ 1`.
pub fn genetic_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
    cfg: &GeneticConfig,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();
    let mut rng = XorShift(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);

    // --- chromosome helpers -------------------------------------------------
    let uniform_cut = |pos: usize, level: LevelNo| -> Cut {
        vec![level.min(heights[pos]); schema.hierarchy(qi[pos]).ground_size()]
    };
    // Promote one random value's node to its parent (whole-sibling closure),
    // or demote one node to its children.
    let mutate_attr = |cut: &mut Cut, pos: usize, rng: &mut XorShift| {
        let h = schema.hierarchy(qi[pos]);
        let v = rng.below(h.ground_size()) as u32;
        let l = cut[v as usize];
        let promote = rng.next_u64() & 1 == 0;
        if promote && l < heights[pos] {
            let anchor = h.generalize(v, l + 1);
            for w in 0..h.ground_size() as u32 {
                if h.generalize(w, l + 1) == anchor {
                    cut[w as usize] = l + 1;
                }
            }
        } else if !promote && l > 0 {
            let anchor = h.generalize(v, l);
            for w in 0..h.ground_size() as u32 {
                if cut[w as usize] == l && h.generalize(w, l) == anchor {
                    cut[w as usize] = l - 1;
                }
            }
        }
    };

    // Fitness: LM cells lost + |T| penalty per violating tuple (lower is
    // better).
    let fitness = |chrom: &[Cut]| -> f64 {
        let mut groups: FxHashMap<Vec<(LevelNo, u32)>, u64> = FxHashMap::default();
        let mut lm = 0.0;
        for row in 0..n_rows {
            let key: Vec<(LevelNo, u32)> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| {
                    let h = schema.hierarchy(a);
                    let v = table.column(a)[row];
                    let l = chrom[pos][v as usize];
                    let g = h.generalize(v, l);
                    lm += crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
                    (l, g)
                })
                .collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        let violators: u64 = groups.values().filter(|&&c| c < k).sum();
        lm + (violators as f64) * (n_rows as f64)
    };

    // --- initial population --------------------------------------------------
    let mut population: Vec<(f64, Vec<Cut>)> = Vec::with_capacity(cfg.population);
    for p in 0..cfg.population.max(2) {
        let chrom: Vec<Cut> = (0..qi.len())
            .map(|pos| {
                // Mix of uniform levels and random mutations for diversity.
                let base = (p % (heights[pos] as usize + 1)) as LevelNo;
                let mut cut = uniform_cut(pos, base);
                for _ in 0..rng.below(3) {
                    mutate_attr(&mut cut, pos, &mut rng);
                }
                cut
            })
            .collect();
        let f = fitness(&chrom);
        population.push((f, chrom));
    }
    population.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // --- evolution ------------------------------------------------------------
    for _gen in 0..cfg.generations {
        let elite = population.len() / 4 + 1;
        let mut next: Vec<(f64, Vec<Cut>)> = population[..elite].to_vec();
        while next.len() < population.len() {
            // Tournament selection of two parents from the top half.
            let half = population.len() / 2 + 1;
            let pa = &population[rng.below(half)].1;
            let pb = &population[rng.below(half)].1;
            // Attribute-wise crossover.
            let mut child: Vec<Cut> = (0..qi.len())
                .map(|pos| if rng.next_u64() & 1 == 0 { pa[pos].clone() } else { pb[pos].clone() })
                .collect();
            if rng.below(1000) < cfg.mutation_per_mille as usize {
                let pos = rng.below(qi.len());
                mutate_attr(&mut child[pos], pos, &mut rng);
            }
            let f = fitness(&child);
            next.push((f, child));
        }
        next.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        population = next;
    }
    let best = population.remove(0).1;

    // --- materialize: suppress residual violators -----------------------------
    let mut groups: FxHashMap<Vec<(LevelNo, u32)>, Vec<usize>> = FxHashMap::default();
    for row in 0..n_rows {
        let key: Vec<(LevelNo, u32)> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let v = table.column(a)[row];
                let l = best[pos][v as usize];
                (l, h.generalize(v, l))
            })
            .collect();
        groups.entry(key).or_default().push(row);
    }
    let mut dropped = vec![false; n_rows];
    for rows in groups.values() {
        if (rows.len() as u64) < k {
            for &r in rows {
                dropped[r] = true;
            }
        }
    }
    let suppressed = dropped.iter().filter(|&&d| d).count() as u64;
    let kept: Vec<usize> = (0..n_rows).filter(|&r| !dropped[r]).collect();
    let mut precision_loss = suppressed as f64 * qi.len() as f64;
    let mut lm_loss = suppressed as f64 * qi.len() as f64;
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(kept.len());
    for &row in &kept {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let v = table.column(a)[row];
                let l = best[pos][v as usize];
                let g = h.generalize(v, l);
                precision_loss += crate::release::precision_fraction(h, l);
                lm_loss +=
                    crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
                h.label(l, g).to_string()
            })
            .collect();
        qi_labels.push(labels);
    }
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn ga_output_is_k_anonymous() {
        let t = patients();
        let r = genetic_anonymize(&t, &[0, 1, 2], 2, &GeneticConfig::default()).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.view.num_rows() as u64 + r.suppressed, 6);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let t = adults(&AdultsConfig { rows: 600, seed: 80 });
        let cfg = GeneticConfig { generations: 10, ..GeneticConfig::default() };
        let a = genetic_anonymize(&t, &[1, 3], 10, &cfg).unwrap();
        let b = genetic_anonymize(&t, &[1, 3], 10, &cfg).unwrap();
        assert_eq!(a.class_sizes, b.class_sizes);
        assert_eq!(a.suppressed, b.suppressed);
    }

    #[test]
    fn more_generations_do_not_hurt() {
        // Elitism makes best fitness monotone in generations (same seed).
        let t = adults(&AdultsConfig { rows: 800, seed: 81 });
        let k = 10u64;
        let short = genetic_anonymize(
            &t,
            &[0, 1],
            k,
            &GeneticConfig { generations: 2, ..GeneticConfig::default() },
        )
        .unwrap();
        let long = genetic_anonymize(
            &t,
            &[0, 1],
            k,
            &GeneticConfig { generations: 30, ..GeneticConfig::default() },
        )
        .unwrap();
        assert!(long.is_k_anonymous(k));
        // Compare total charge (LM + suppression-as-full-loss), which is
        // what the fitness optimizes.
        let charge = |r: &AnonymizedRelease| r.lm_loss;
        assert!(
            charge(&long) <= charge(&short) + 1e-9,
            "long {} vs short {}",
            charge(&long),
            charge(&short)
        );
    }

    #[test]
    fn ga_finds_something_better_than_full_suppression() {
        let t = adults(&AdultsConfig { rows: 1_000, seed: 82 });
        let r = genetic_anonymize(&t, &[1, 3], 10, &GeneticConfig::default()).unwrap();
        assert!(r.is_k_anonymous(10));
        let m = r.metrics(10);
        assert!(m.loss < 1.0);
    }
}
