//! Top-Down Specialization — Fung, Wang & Yu's greedy algorithm (\[7\],
//! §6 of the paper) adapted to the single-dimension full-subtree model.
//!
//! Where the bottom-up greedies in [`crate::subtree`] start at the ground
//! domain and generalize until k-anonymity holds, TDS starts from the most
//! general state (every attribute at its hierarchy top — trivially
//! k-anonymous for `|T| ≥ k`) and repeatedly *specializes* the most
//! beneficial cut node, refusing any specialization that would break
//! k-anonymity. The result is k-anonymous **by construction** at every
//! step, and the search direction tends to spend its anonymity budget
//! where the data is dense (the reason \[7\] proposed it for
//! classification workloads).
//!
//! The benefit score here is the information-gain proxy `\[7\]` reduces
//! to for unweighted data: how many cell-level LM units a specialization
//! recovers (the original scores specializations by classification
//! information gain over anonymity loss; without class labels the
//! information term degenerates to discernibility/LM improvement).

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, subtree_sizes, AnonymizedRelease};

/// Run TDS over `qi` with parameter `k`. Returns a k-anonymous release
/// whenever `|T| ≥ k`; for smaller tables the fully-generalized single
/// class is returned (and is not k-anonymous, mirroring the other model
/// implementations).
pub fn tds_anonymize(table: &Table, qi: &[usize], k: u64) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();

    // The cut: per attribute, each ground value's released level. Start at
    // the top (most general); the full-subtree invariant holds throughout
    // because specialization always replaces a whole node by all its
    // children.
    let mut assignment: Vec<Vec<LevelNo>> = qi
        .iter()
        .enumerate()
        .map(|(pos, &a)| vec![heights[pos]; schema.hierarchy(a).ground_size()])
        .collect();

    // Group rows under the current cut.
    let group = |assignment: &[Vec<LevelNo>]| -> FxHashMap<Vec<(LevelNo, u32)>, u64> {
        let mut counts: FxHashMap<Vec<(LevelNo, u32)>, u64> = FxHashMap::default();
        for row in 0..n_rows {
            let key: Vec<(LevelNo, u32)> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| {
                    let v = table.column(a)[row];
                    let l = assignment[pos][v as usize];
                    (l, schema.hierarchy(a).generalize(v, l))
                })
                .collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        counts
    };

    loop {
        // Candidate specializations: every (attr, node) currently in the
        // cut with level > 0. Specializing replaces the node by its
        // children (level - 1 for all its ground values).
        let mut candidates: Vec<(usize, LevelNo, u32)> = Vec::new();
        for (pos, &a) in qi.iter().enumerate() {
            let h = schema.hierarchy(a);
            let mut seen: std::collections::BTreeSet<(LevelNo, u32)> =
                std::collections::BTreeSet::new();
            for v in 0..h.ground_size() as u32 {
                let l = assignment[pos][v as usize];
                if l > 0 {
                    seen.insert((l, h.generalize(v, l)));
                }
            }
            for (l, node) in seen {
                candidates.push((pos, l, node));
            }
        }
        if candidates.is_empty() {
            break; // fully specialized
        }

        // Score each valid candidate by LM units recovered; keep the best.
        let mut best: Option<(f64, usize, LevelNo, u32)> = None;
        for &(pos, l, node) in &candidates {
            // Tentatively specialize.
            let mut trial = assignment.clone();
            let h = schema.hierarchy(qi[pos]);
            for v in 0..h.ground_size() as u32 {
                if trial[pos][v as usize] == l && h.generalize(v, l) == node {
                    trial[pos][v as usize] = l - 1;
                }
            }
            let counts = group(&trial);
            if !counts.values().all(|&c| c >= k) {
                continue; // would break k-anonymity
            }
            // LM recovered: affected tuples × (lm(node) − lm(child)).
            let mut gain = 0.0;
            for row in 0..n_rows {
                let v = table.column(qi[pos])[row];
                if assignment[pos][v as usize] == l && h.generalize(v, l) == node {
                    let before = sizes[pos][l as usize][node as usize];
                    let child = h.generalize(v, l - 1);
                    let after = sizes[pos][(l - 1) as usize][child as usize];
                    gain += (before - after) as f64;
                }
            }
            if best.is_none_or(|(g, _, _, _)| gain > g) {
                best = Some((gain, pos, l, node));
            }
        }
        let Some((_, pos, l, node)) = best else { break };
        let h = schema.hierarchy(qi[pos]);
        for v in 0..h.ground_size() as u32 {
            if assignment[pos][v as usize] == l && h.generalize(v, l) == node {
                assignment[pos][v as usize] = l - 1;
            }
        }
    }

    // Materialize (no suppression: k-anonymity held at every accepted step).
    let mut precision_loss = 0.0;
    let mut lm_loss = 0.0;
    let kept: Vec<usize> = (0..n_rows).collect();
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(n_rows);
    for row in 0..n_rows {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let v = table.column(a)[row];
                let l = assignment[pos][v as usize];
                let g = h.generalize(v, l);
                precision_loss += crate::release::precision_fraction(h, l);
                lm_loss +=
                    crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
                h.label(l, g).to_string()
            })
            .collect();
        qi_labels.push(labels);
    }
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed: 0,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtree::{full_subtree_anonymize, is_valid_full_subtree, SubtreeMode};
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn tds_is_k_anonymous_on_patients() {
        let t = patients();
        let r = tds_anonymize(&t, &[0, 1, 2], 2).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.suppressed, 0);
        assert_eq!(r.view.num_rows(), 6);
    }

    #[test]
    fn tds_specializes_below_the_top() {
        // With a loose k the cut should descend — the release must be
        // strictly more informative than full suppression.
        let t = adults(&AdultsConfig { rows: 2_000, seed: 70 });
        let r = tds_anonymize(&t, &[0, 1, 3], 10).unwrap();
        assert!(r.is_k_anonymous(10));
        let m = r.metrics(10);
        assert!(m.loss < 1.0, "must beat full generalization, got LM={}", m.loss);
        assert!(r.num_classes() > 1);
    }

    #[test]
    fn tds_output_is_a_valid_subtree_cut() {
        let t = patients();
        let r = tds_anonymize(&t, &[1, 2], 2).unwrap();
        // Reconstruct the Zipcode assignment from labels and validate the
        // full-subtree closure (values absent from the data inherit their
        // observed siblings' level).
        let h = t.schema().hierarchy(2);
        let mut assignment: Vec<Option<u8>> = vec![None; h.ground_size()];
        for (view_row, &src_row) in r.kept_rows.iter().enumerate() {
            let released = r.view.label(view_row, 2);
            let v = t.column(2)[src_row];
            let level = (0..=h.height())
                .find(|&l| h.label(l, h.generalize(v, l)) == released)
                .expect("label on ancestor chain");
            assignment[v as usize] = Some(level);
        }
        let observed: Vec<(u32, u8)> = assignment
            .iter()
            .enumerate()
            .filter_map(|(v, l)| l.map(|l| (v as u32, l)))
            .collect();
        let assignment: Vec<u8> = assignment
            .iter()
            .enumerate()
            .map(|(w, l)| {
                l.unwrap_or_else(|| {
                    observed
                        .iter()
                        .find(|&&(v, l)| l > 0 && h.generalize(w as u32, l) == h.generalize(v, l))
                        .map(|&(_, l)| l)
                        .unwrap_or(0)
                })
            })
            .collect();
        assert!(is_valid_full_subtree(t.schema(), 2, &assignment));
    }

    #[test]
    fn top_down_competitive_with_bottom_up() {
        // Same model, opposite search directions; neither dominates in
        // general but both must be valid, and on dense data TDS should land
        // at or below the bottom-up greedy's loss most of the time. Assert
        // validity plus a sanity band rather than strict dominance.
        let t = adults(&AdultsConfig { rows: 1_500, seed: 71 });
        let k = 15u64;
        let td = tds_anonymize(&t, &[0, 1], k).unwrap();
        let bu = full_subtree_anonymize(&t, &[0, 1], k, SubtreeMode::FullSubtree).unwrap();
        assert!(td.is_k_anonymous(k));
        assert!(bu.is_k_anonymous(k));
        let (tm, bm) = (td.metrics(k), bu.metrics(k));
        assert!(tm.loss <= 1.0 && bm.loss <= 1.0);
    }

    #[test]
    fn k_larger_than_table_stays_at_top() {
        let t = patients();
        let r = tds_anonymize(&t, &[1, 2], 10).unwrap();
        assert_eq!(r.num_classes(), 1);
        assert!(!r.is_k_anonymous(10));
        let m = r.metrics(10);
        assert!((m.loss - 1.0).abs() < 1e-9);
    }
}
