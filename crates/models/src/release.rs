//! The common output form of every anonymizer in this crate, plus the
//! full-domain and attribute-suppression reference models.

use incognito_hierarchy::{Hierarchy, LevelNo};
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Attribute, GroupSpec, Schema, Table, TableError};

use crate::metrics::Metrics;

/// An anonymized release: the recoded view plus the equivalence-class
/// profile and per-cell information-loss tallies that the [`crate::metrics`]
/// module turns into comparable scores.
#[derive(Debug, Clone)]
pub struct AnonymizedRelease {
    /// The recoded table (quasi-identifier recoded, other attributes
    /// released intact).
    pub view: Table,
    /// Positions of the quasi-identifier attributes within `view`.
    pub qi: Vec<usize>,
    /// Rows of the source table that were suppressed entirely.
    pub suppressed: u64,
    /// Source-row index of each view row (view rows preserve source
    /// order with suppressed rows removed).
    pub kept_rows: Vec<usize>,
    /// Rows in the source table.
    pub source_rows: u64,
    /// Sizes of the equivalence classes of `view` over `qi`.
    pub class_sizes: Vec<u64>,
    /// Σ over released cells of `level / hierarchy height` (fraction of the
    /// generalization chain consumed); suppressed rows contribute 1 per
    /// cell. Basis of the Precision (Prec) metric \[17\].
    pub precision_loss: f64,
    /// Σ over released cells of `(leaves(value) - 1) / (|domain| - 1)`
    /// (fraction of the ground domain indistinguishable after recoding);
    /// suppressed rows contribute 1 per cell. Basis of the loss metric (LM)
    /// of \[11\].
    pub lm_loss: f64,
}

impl AnonymizedRelease {
    /// Whether every equivalence class in the release has at least `k`
    /// members.
    pub fn is_k_anonymous(&self, k: u64) -> bool {
        self.class_sizes.iter().all(|&c| c >= k)
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.class_sizes.len()
    }

    /// Convenience: compute the comparison metrics for this release.
    pub fn metrics(&self, k: u64) -> Metrics {
        Metrics::for_release(self, k)
    }
}

/// Fraction of attribute `h`'s generalization chain consumed at `level`
/// (0 for a height-0 hierarchy, which cannot be generalized).
pub(crate) fn precision_fraction(h: &Hierarchy, level: LevelNo) -> f64 {
    if h.height() == 0 {
        0.0
    } else {
        level as f64 / h.height() as f64
    }
}

/// Fraction of attribute `h`'s ground domain merged into the value `id` at
/// `level` — the per-cell LM / GenILoss term.
pub(crate) fn lm_fraction(h: &Hierarchy, level: LevelNo, leaves_under: usize) -> f64 {
    let _ = level;
    let domain = h.ground_size();
    if domain <= 1 {
        0.0
    } else {
        (leaves_under - 1) as f64 / (domain - 1) as f64
    }
}

/// Per-level histogram of subtree sizes: `result[level][id]` = number of
/// ground values mapping to `id` at `level`.
pub(crate) fn subtree_sizes(h: &Hierarchy) -> Vec<Vec<usize>> {
    (0..=h.height())
        .map(|l| {
            let mut counts = vec![0usize; h.level_size(l)];
            for &v in h.map_to_level(l) {
                counts[v as usize] += 1;
            }
            counts
        })
        .collect()
}

/// Build a release view from per-row QI labels (the shared back end for the
/// local-recoding and multi-dimensional anonymizers).
///
/// `kept` lists surviving row indices of `source`; `qi_labels[i]` gives the
/// recoded QI labels for `kept[i]` (one per QI attribute, in `qi` order).
/// Non-QI attributes are copied through at ground level.
pub(crate) fn build_view_from_labels(
    source: &Table,
    qi: &[usize],
    kept: &[usize],
    qi_labels: &[Vec<String>],
) -> Result<(Table, Vec<u64>), TableError> {
    assert_eq!(kept.len(), qi_labels.len());
    let src_schema = source.schema();
    let is_qi: Vec<bool> = {
        let mut v = vec![false; src_schema.arity()];
        for &a in qi {
            v[a] = true;
        }
        v
    };

    // Build dictionaries: QI attributes from the recoded labels, non-QI
    // attributes reuse the source ground dictionary.
    let mut attrs: Vec<Attribute> = Vec::with_capacity(src_schema.arity());
    let mut qi_dicts: FxHashMap<usize, FxHashMap<String, u32>> = FxHashMap::default();
    for (a, &a_is_qi) in is_qi.iter().enumerate() {
        if a_is_qi {
            let pos = qi.iter().position(|&q| q == a).expect("qi attr");
            let mut labels: Vec<String> = Vec::new();
            let mut index: FxHashMap<String, u32> = FxHashMap::default();
            for row_labels in qi_labels {
                let l = &row_labels[pos];
                if !index.contains_key(l) {
                    index.insert(l.clone(), labels.len() as u32);
                    labels.push(l.clone());
                }
            }
            if labels.is_empty() {
                labels.push("*".to_string()); // empty release still needs a domain
            }
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let hier = incognito_hierarchy::builders::identity(
                src_schema.attribute(a).name(),
                &refs,
            )
            .expect("labels are distinct by construction");
            attrs.push(Attribute::new(src_schema.attribute(a).name(), hier));
            qi_dicts.insert(
                a,
                labels
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (l.clone(), i as u32))
                    .collect(),
            );
        } else {
            attrs.push(Attribute::new(
                src_schema.attribute(a).name(),
                src_schema.hierarchy(a).clone(),
            ));
        }
    }
    let schema = Schema::new(attrs)?;

    let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(kept.len()); src_schema.arity()];
    for (i, &row) in kept.iter().enumerate() {
        for a in 0..src_schema.arity() {
            if is_qi[a] {
                let pos = qi.iter().position(|&q| q == a).expect("qi attr");
                cols[a].push(qi_dicts[&a][&qi_labels[i][pos]]);
            } else {
                cols[a].push(source.column(a)[row]);
            }
        }
    }
    let view = Table::from_columns(schema, cols)?;
    let class_sizes = class_sizes_of(&view, qi)?;
    Ok((view, class_sizes))
}

/// Equivalence-class sizes of `view` over `qi` at the view's ground level.
pub(crate) fn class_sizes_of(view: &Table, qi: &[usize]) -> Result<Vec<u64>, TableError> {
    let freq = view.frequency_set(&GroupSpec::ground(qi)?)?;
    Ok(freq.iter().map(|(_, c)| c).collect())
}

/// Build the release for a **full-domain generalization** (the model the
/// Incognito algorithms search over): `levels[i]` is the level of `qi[i]`.
/// With `suppress = Some(k)`, tuples in groups smaller than `k` are removed
/// (§2.1's suppression threshold).
pub fn full_domain_release(
    table: &Table,
    qi: &[usize],
    levels: &[LevelNo],
    suppress: Option<u64>,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let mut full_levels = vec![0u8; schema.arity()];
    for (&a, &l) in qi.iter().zip(levels) {
        full_levels[a] = l;
    }
    let (view, suppressed) =
        table.generalize_with_suppression(&full_levels, suppress.map(|k| (k, qi)))?;
    let class_sizes = class_sizes_of(&view, qi)?;

    // Tally losses from the source frequency set at the chosen levels: kept
    // groups charge their per-cell generalization cost, suppressed groups
    // (those below k when a threshold is set) charge full loss.
    let spec = GroupSpec::new(qi.iter().zip(levels).map(|(&a, &l)| (a, l)).collect())?;
    let freq = table.frequency_set(&spec)?;
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();
    let mut precision_loss = 0.0;
    let mut lm_loss = 0.0;
    for (key, count) in freq.iter() {
        let n = count as f64;
        if suppress.is_some_and(|k| count < k) {
            precision_loss += n * qi.len() as f64;
            lm_loss += n * qi.len() as f64;
            continue;
        }
        for (pos, (&a, &l)) in qi.iter().zip(levels).enumerate() {
            let h = schema.hierarchy(a);
            let g = key.as_slice()[pos];
            precision_loss += n * precision_fraction(h, l);
            lm_loss += n * lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
        }
    }

    // Reconstruct which source rows survived (view rows preserve order).
    let kept_rows: Vec<usize> = if suppressed == 0 {
        (0..table.num_rows()).collect()
    } else {
        let k = suppress.expect("suppressed rows imply a threshold");
        let maps: Vec<&[u32]> = qi
            .iter()
            .zip(levels)
            .map(|(&a, &l)| schema.hierarchy(a).map_to_level(l))
            .collect();
        (0..table.num_rows())
            .filter(|&row| {
                let mut key = incognito_table::GroupKey::default();
                for (&a, map) in qi.iter().zip(&maps) {
                    key.push(map[table.column(a)[row] as usize]);
                }
                freq.count(&key) >= k
            })
            .collect()
    };
    debug_assert_eq!(kept_rows.len(), view.num_rows());

    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed,
        kept_rows,
        source_rows: table.num_rows() as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

/// **Attribute suppression** (§5.1.1's special case of full-domain
/// generalization): greedily suppress whole attributes (map every value to
/// the hierarchy top) until the table is k-anonymous, preferring to
/// suppress the attribute whose removal from the grouping most reduces
/// violations. Attributes stay intact or vanish entirely.
pub fn attribute_suppression_release(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let mut levels: Vec<LevelNo> = vec![0; qi.len()];
    loop {
        let spec = GroupSpec::new(
            qi.iter().zip(&levels).map(|(&a, &l)| (a, l)).collect(),
        )?;
        let freq = table.frequency_set(&spec)?;
        if freq.is_k_anonymous(k) {
            break;
        }
        // Suppress the not-yet-suppressed attribute with the most distinct
        // ground values (the Datafly-style greedy choice).
        let victim = qi
            .iter()
            .enumerate()
            .filter(|&(i, _)| levels[i] == 0)
            .max_by_key(|&(_, &a)| schema.hierarchy(a).ground_size());
        match victim {
            Some((i, &a)) => levels[i] = schema.hierarchy(a).height(),
            None => break, // everything suppressed: single class of |T| rows
        }
    }
    full_domain_release(table, qi, &levels, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::patients;

    #[test]
    fn full_domain_release_s1z0() {
        let t = patients();
        // ⟨S1, Z0⟩ — the minimal 2-anonymous generalization of ⟨Sex, Zipcode⟩.
        let r = full_domain_release(&t, &[1, 2], &[1, 0], None).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.suppressed, 0);
        assert_eq!(r.view.num_rows(), 6);
        assert_eq!(r.num_classes(), 3);
        // Precision loss: 6 cells of Sex at 1/1 + 6 cells of Zip at 0/2.
        assert!((r.precision_loss - 6.0).abs() < 1e-9);
        // LM: Sex cells merge the whole 2-value domain: (2-1)/(2-1) = 1 each.
        assert!((r.lm_loss - 6.0).abs() < 1e-9);
    }

    #[test]
    fn full_domain_release_with_suppression() {
        let t = patients();
        let r = full_domain_release(&t, &[1, 2], &[0, 0], Some(2)).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.suppressed, 2);
        assert_eq!(r.view.num_rows(), 4);
        // Suppressed rows charge full loss: 2 rows × 2 QI cells.
        assert!((r.precision_loss - 4.0).abs() < 1e-9);
        assert!((r.lm_loss - 4.0).abs() < 1e-9);
    }

    #[test]
    fn attribute_suppression_reaches_anonymity() {
        let t = patients();
        let r = attribute_suppression_release(&t, &[0, 1, 2], 2).unwrap();
        assert!(r.is_k_anonymous(2));
        // Under pure attribute suppression each QI column is either intact
        // or constant `*`.
        for &a in &[0usize, 1, 2] {
            let col = r.view.column(a);
            let distinct: std::collections::HashSet<_> = col.iter().collect();
            let ground = t.schema().hierarchy(a).ground_size();
            assert!(
                distinct.len() == 1 || distinct.len() <= ground,
                "attribute {a} must be constant or intact"
            );
        }
    }

    #[test]
    fn build_view_from_labels_groups_correctly() {
        let t = patients();
        let kept: Vec<usize> = (0..6).collect();
        let labels: Vec<Vec<String>> = (0..6)
            .map(|i| vec![if i < 3 { "A" } else { "B" }.to_string()])
            .collect();
        let (view, classes) = build_view_from_labels(&t, &[1], &kept, &labels).unwrap();
        assert_eq!(view.num_rows(), 6);
        let mut sizes = classes;
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        // Non-QI columns copied through.
        assert_eq!(view.label(0, 0), "1/21/76");
        assert_eq!(view.label(0, 3), "Flu");
    }
}
