//! Local recoding models (§5.2): cell suppression \[1, 13, 20\] and cell
//! generalization \[17\].
//!
//! Local recoding modifies individual tuple instances rather than whole
//! domains: two tuples sharing a ground value may be released at different
//! granularities. The paper notes these models "are likely to be more
//! powerful than global recoding"; the metrics comparison in the
//! `model_taxonomy` example quantifies that on the same data.
//!
//! Both anonymizers share a greedy loop — repeatedly take the smallest
//! violating equivalence class and coarsen one attribute *for the rows of
//! that class only* — differing in the step: cell suppression jumps the
//! cell straight to `*` (the hierarchy top), cell generalization climbs one
//! hierarchy level at a time. Optimal versions are NP-hard (\[13\], \[1\], as
//! the paper's related work records); these are the standard greedy
//! reference implementations.

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, subtree_sizes, AnonymizedRelease};

/// Cell-level step behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalMode {
    Suppress,
    Generalize,
}

/// Local recoding by **cell suppression**: violating cells are replaced by
/// the hierarchy top (`*`) until every equivalence class reaches size k.
pub fn cell_suppression_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    local_anonymize(table, qi, k, LocalMode::Suppress)
}

/// Local recoding by **cell generalization**: violating cells climb their
/// value generalization hierarchy one level at a time.
pub fn cell_generalization_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    local_anonymize(table, qi, k, LocalMode::Generalize)
}

fn local_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
    mode: LocalMode,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
    // cell_level[row][pos): the released level of each QI cell.
    let mut cell_level: Vec<Vec<LevelNo>> = vec![vec![0; qi.len()]; n_rows];
    // Rows suppressed after their class got stuck at every hierarchy top
    // with fewer than k members.
    let mut dropped = vec![false; n_rows];

    loop {
        // Group rows by released labels (level, generalized id) per cell.
        let mut groups: FxHashMap<Vec<(LevelNo, u32)>, Vec<usize>> = FxHashMap::default();
        for row in (0..n_rows).filter(|&r| !dropped[r]) {
            let key: Vec<(LevelNo, u32)> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| {
                    let l = cell_level[row][pos];
                    (l, schema.hierarchy(a).generalize(table.column(a)[row], l))
                })
                .collect();
            groups.entry(key).or_default().push(row);
        }
        let violator = groups
            .iter()
            .filter(|(_, rows)| (rows.len() as u64) < k)
            .min_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(b.0)));
        let Some((key, rows)) = violator else { break };

        // Coarsen, for this class only, the attribute with the most
        // headroom (largest remaining chain, ties to the wider domain).
        let promote = (0..qi.len())
            .filter(|&pos| key[pos].0 < heights[pos])
            .max_by_key(|&pos| {
                ((heights[pos] - key[pos].0) as usize, schema.hierarchy(qi[pos]).ground_size())
            });
        let Some(pos) = promote else {
            // Every cell of this class is at its hierarchy top and the
            // class is still short of k: suppress its rows and continue.
            for &row in rows {
                dropped[row] = true;
            }
            continue;
        };
        let new_level = match mode {
            LocalMode::Suppress => heights[pos],
            LocalMode::Generalize => key[pos].0 + 1,
        };
        for &row in rows {
            cell_level[row][pos] = new_level;
        }
    }

    // Materialize labels and per-cell losses; suppressed rows charge full
    // loss.
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();
    let suppressed = dropped.iter().filter(|&&d| d).count() as u64;
    let mut precision_loss = suppressed as f64 * qi.len() as f64;
    let mut lm_loss = suppressed as f64 * qi.len() as f64;
    let kept: Vec<usize> = (0..n_rows).filter(|&r| !dropped[r]).collect();
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(kept.len());
    for &row in &kept {
        let levels = &cell_level[row];
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let l = levels[pos];
                let g = h.generalize(table.column(a)[row], l);
                precision_loss += crate::release::precision_fraction(h, l);
                lm_loss +=
                    crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
                h.label(l, g).to_string()
            })
            .collect();
        qi_labels.push(labels);
    }
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn both_local_models_reach_k_anonymity() {
        let t = patients();
        for f in [cell_suppression_anonymize, cell_generalization_anonymize] {
            let r = f(&t, &[0, 1, 2], 2).unwrap();
            assert!(r.is_k_anonymous(2));
            assert_eq!(r.view.num_rows(), 6);
            assert_eq!(r.suppressed, 0);
        }
    }

    #[test]
    fn local_recoding_is_heterogeneous() {
        // The defining feature: the same ground value may appear at two
        // granularities in the release. The seed picks a draw where the
        // heterogeneity actually manifests (most do; a few don't).
        let t = adults(&AdultsConfig { rows: 1_000, seed: 32 });
        let r = cell_generalization_anonymize(&t, &[0, 1, 3], 15).unwrap();
        assert!(r.is_k_anonymous(15));
        // Find some Age ground value released both raw and generalized.
        let mut raw = std::collections::HashSet::new();
        let mut gen = std::collections::HashSet::new();
        for (view_row, &src_row) in r.kept_rows.iter().enumerate() {
            let ground = t.label(src_row, 0).to_string();
            let released = r.view.label(view_row, 0).to_string();
            if ground == released {
                raw.insert(ground);
            } else {
                gen.insert(ground);
            }
        }
        assert!(
            raw.intersection(&gen).next().is_some(),
            "expected at least one value released at two granularities"
        );
    }

    #[test]
    fn cell_generalization_loses_less_than_cell_suppression() {
        let t = adults(&AdultsConfig { rows: 1_000, seed: 34 });
        let k = 10;
        let sup = cell_suppression_anonymize(&t, &[0, 1], k).unwrap().metrics(k);
        let gen = cell_generalization_anonymize(&t, &[0, 1], k).unwrap().metrics(k);
        assert!(gen.loss <= sup.loss + 1e-9, "gen {} vs sup {}", gen.loss, sup.loss);
    }

    #[test]
    fn local_beats_global_full_domain() {
        // §5.2's closing note: local recoding is likely more powerful than
        // global. Check on discernibility against the best full-domain.
        let t = adults(&AdultsConfig { rows: 800, seed: 35 });
        let qi = [0usize, 1];
        let k = 10u64;
        let local = cell_generalization_anonymize(&t, &qi, k).unwrap();
        assert!(local.is_k_anonymous(k));
        let full = incognito_core::incognito(&t, &qi, &incognito_core::Config::new(k)).unwrap();
        let best_full = full
            .generalizations()
            .iter()
            .map(|g| {
                crate::release::full_domain_release(&t, &qi, &g.levels, None)
                    .unwrap()
                    .metrics(k)
                    .loss
            })
            .fold(f64::INFINITY, f64::min);
        assert!(local.metrics(k).loss <= best_full + 1e-9);
    }
}
