//! The taxonomy of k-anonymization models from Section 5 of the paper,
//! implemented as working anonymizers over the same table substrate the
//! Incognito algorithms use.
//!
//! The paper categorizes models along three axes:
//!
//! * **generalization vs. suppression** — whether values move through
//!   intermediate domains or straight to `*`;
//! * **global vs. local recoding** — whether a whole domain is recoded with
//!   one function or individual cells are modified;
//! * **hierarchy-based vs. partition-based** — fixed value-generalization
//!   hierarchies vs. intervals over a totally-ordered domain.
//!
//! Every cell of that taxonomy is represented here:
//!
//! | Model (paper §) | Module |
//! |---|---|
//! | Full-domain generalization (§5.1.1) | `incognito-core` + [`release::full_domain_release`] |
//! | Attribute suppression (§5.1.1, special case) | [`release::attribute_suppression_release`] |
//! | Single-dim full-subtree recoding (§5.1.1, \[11\]) | [`subtree`] |
//! | Unrestricted single-dim recoding (§5.1.1) | [`subtree`] (relaxed mode) |
//! | Single-dim ordered-set partitioning (§5.1.2, \[3\]) | [`partition1d`] |
//! | Multi-dim full-subgraph recoding (§5.1.3) | [`subgraph`] |
//! | Multi-dim ordered-set partitioning (§5.1.4, \[12\]) | [`mondrian`] |
//! | Cell suppression (§5.2, \[1, 13, 20\]) | [`local`] |
//! | Cell generalization (§5.2, \[17\]) | [`local`] |
//!
//! All anonymizers produce an [`AnonymizedRelease`] carrying the recoded
//! view, the equivalence-class profile, and information-loss tallies, so
//! the [`metrics`] module can compare models head to head (the
//! "performance vs. flexibility trade-off" the section motivates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genetic;
pub mod koptimize;
pub mod local;
pub mod metrics;
pub mod mondrian;
pub mod partition1d;
pub mod release;
pub mod subgraph;
pub mod tds;
pub mod utility;
pub mod subtree;
mod taxonomy;

pub use metrics::Metrics;
pub use release::AnonymizedRelease;
pub use taxonomy::{Dimensionality, DomainStyle, ModelDescriptor, Recoding, taxonomy};
