//! Single-dimension hierarchy-based recoding beyond full-domain (§5.1.1):
//!
//! * **Full-subtree recoding** (Iyengar \[11\]): a per-attribute recoding
//!   function may generalize *some* values while leaving others intact, but
//!   whenever it maps anything to a generalized value `g` it must map the
//!   entire value-subtree rooted at `g` to `g`.
//! * **Unrestricted recoding**: each ground value independently maps to any
//!   of its ancestors (the paper includes it while noting the inference
//!   caveat of footnote 3).
//!
//! Both are implemented with the same greedy search (promote the values of
//! the smallest violating equivalence class until k-anonymity holds), so
//! the taxonomy comparison isolates the *model's* flexibility: every
//! full-subtree recoding is also a valid unrestricted recoding, hence the
//! unrestricted greedy can only do better or equal.

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, subtree_sizes, AnonymizedRelease};

/// Which single-dimension hierarchy model to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubtreeMode {
    /// Sibling-closure: generalizing a value drags its whole subtree along.
    FullSubtree,
    /// Each ground value recodes independently.
    Unrestricted,
}

/// Greedy single-dimension recoding under `mode`. The result is k-anonymous
/// whenever `|T| ≥ k` (in the worst case every attribute reaches its
/// hierarchy top, a single equivalence class).
pub fn full_subtree_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
    mode: SubtreeMode,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    // assignment[pos][ground_id] = released level of that value.
    let mut assignment: Vec<Vec<LevelNo>> = qi
        .iter()
        .map(|&a| vec![0u8; schema.hierarchy(a).ground_size()])
        .collect();

    // Rows suppressed because their class got stuck at the hierarchy tops
    // with fewer than k members (only possible in unrestricted mode; a
    // full-subtree cut at the tops puts the whole table in one class).
    let mut dropped = vec![false; n_rows];

    loop {
        // Group live rows by released values — keyed by (level, id) pairs,
        // since ids alone collide across levels.
        let mut groups: FxHashMap<Vec<(LevelNo, u32)>, Vec<usize>> = FxHashMap::default();
        for row in (0..n_rows).filter(|&r| !dropped[r]) {
            let key: Vec<(LevelNo, u32)> = qi
                .iter()
                .enumerate()
                .map(|(pos, &a)| {
                    let v = table.column(a)[row];
                    let l = assignment[pos][v as usize];
                    (l, schema.hierarchy(a).generalize(v, l))
                })
                .collect();
            groups.entry(key).or_default().push(row);
        }
        // Find the smallest violating class (deterministically: smallest
        // size, then smallest key).
        let violator = groups
            .iter()
            .filter(|(_, rows)| (rows.len() as u64) < k)
            .min_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(b.0)));
        let Some((_, rows)) = violator else { break };
        let row = rows[0];

        // Promote the attribute with headroom whose released domain is
        // currently the most fragmented (Datafly's greedy choice applied
        // per-value).
        let mut best: Option<(usize, usize)> = None; // (distinct released, pos)
        for (pos, &a) in qi.iter().enumerate() {
            let h = schema.hierarchy(a);
            let v = table.column(a)[row];
            if assignment[pos][v as usize] >= h.height() {
                continue;
            }
            let distinct: std::collections::HashSet<(LevelNo, u32)> = table
                .column(a)
                .iter()
                .map(|&w| {
                    let l = assignment[pos][w as usize];
                    (l, h.generalize(w, l))
                })
                .collect();
            if best.is_none_or(|(d, _)| distinct.len() > d) {
                best = Some((distinct.len(), pos));
            }
        }
        let Some((_, pos)) = best else {
            // The class's values sit at every hierarchy top: suppress its
            // rows (the §2.1 outlier treatment) and continue.
            for &r in rows {
                dropped[r] = true;
            }
            continue;
        };
        let a = qi[pos];
        let h = schema.hierarchy(a);
        let v = table.column(a)[row];
        let new_level = assignment[pos][v as usize] + 1;
        match mode {
            SubtreeMode::Unrestricted => {
                assignment[pos][v as usize] = new_level;
            }
            SubtreeMode::FullSubtree => {
                // Move the whole subtree under the new ancestor to it. The
                // cut invariant guarantees no value under the ancestor sits
                // above `new_level`, so plain assignment preserves it.
                let anchor = h.generalize(v, new_level);
                for w in 0..h.ground_size() as u32 {
                    if h.generalize(w, new_level) == anchor {
                        assignment[pos][w as usize] = new_level;
                    }
                }
            }
        }
    }

    // Materialize labels and losses; suppressed rows charge full loss.
    let sizes: Vec<Vec<Vec<usize>>> =
        qi.iter().map(|&a| subtree_sizes(schema.hierarchy(a))).collect();
    let suppressed = dropped.iter().filter(|&&d| d).count() as u64;
    let mut precision_loss = suppressed as f64 * qi.len() as f64;
    let mut lm_loss = suppressed as f64 * qi.len() as f64;
    let kept: Vec<usize> = (0..n_rows).filter(|&r| !dropped[r]).collect();
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(kept.len());
    for &row in &kept {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let h = schema.hierarchy(a);
                let v = table.column(a)[row];
                let l = assignment[pos][v as usize];
                let g = h.generalize(v, l);
                precision_loss += crate::release::precision_fraction(h, l);
                lm_loss +=
                    crate::release::lm_fraction(h, l, sizes[pos][l as usize][g as usize]);
                h.label(l, g).to_string()
            })
            .collect();
        qi_labels.push(labels);
    }
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

/// Validate the full-subtree property on an assignment (exposed for tests
/// and for checking hand-built recodings): whenever a value is released at
/// level `ℓ > 0` under ancestor `g`, every value under `g` is released at
/// exactly `ℓ`.
pub fn is_valid_full_subtree(
    schema: &incognito_table::Schema,
    attr: usize,
    assignment: &[LevelNo],
) -> bool {
    let h = schema.hierarchy(attr);
    for v in 0..h.ground_size() as u32 {
        let l = assignment[v as usize];
        if l == 0 {
            continue;
        }
        let g = h.generalize(v, l);
        for w in 0..h.ground_size() as u32 {
            if h.generalize(w, l) == g && assignment[w as usize] != l {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn both_modes_reach_k_anonymity() {
        let t = patients();
        for mode in [SubtreeMode::FullSubtree, SubtreeMode::Unrestricted] {
            let r = full_subtree_anonymize(&t, &[0, 1, 2], 2, mode).unwrap();
            assert!(r.is_k_anonymous(2), "{mode:?}");
            assert_eq!(r.view.num_rows(), 6);
        }
    }

    #[test]
    fn unrestricted_mode_valid_on_adults() {
        // The unrestricted *model* subsumes full-subtree recoding, but the
        // greedy search gives no dominance guarantee — only validity.
        let t = adults(&AdultsConfig { rows: 1_500, seed: 21 });
        let k = 10;
        let r = full_subtree_anonymize(&t, &[0, 3, 4], k, SubtreeMode::Unrestricted).unwrap();
        assert!(r.is_k_anonymous(k));
        assert_eq!(r.view.num_rows() as u64 + r.suppressed, 1_500);
        let m = r.metrics(k);
        assert!(m.loss > 0.0 && m.loss <= 1.0);
    }

    #[test]
    fn subtree_beats_full_domain_on_skewed_data() {
        // Full-domain must generalize the *whole* domain to fix one sparse
        // region; full-subtree recoding can leave the dense region intact.
        let t = adults(&AdultsConfig { rows: 1_500, seed: 22 });
        let qi = [0usize, 1];
        let k = 10u64;
        let sub = full_subtree_anonymize(&t, &qi, k, SubtreeMode::FullSubtree).unwrap();
        assert!(sub.is_k_anonymous(k));
        let full = incognito_core::incognito(&t, &qi, &incognito_core::Config::new(k)).unwrap();
        let best_full = full
            .generalizations()
            .iter()
            .map(|g| {
                crate::release::full_domain_release(&t, &qi, &g.levels, None)
                    .unwrap()
                    .metrics(k)
                    .loss
            })
            .fold(f64::INFINITY, f64::min);
        assert!(sub.metrics(k).loss <= best_full + 1e-9);
    }

    #[test]
    fn full_subtree_assignments_stay_valid() {
        // Run the greedy, then re-derive the assignment from the released
        // labels and check the closure property.
        let t = patients();
        let r = full_subtree_anonymize(&t, &[1, 2], 2, SubtreeMode::FullSubtree).unwrap();
        assert_eq!(r.suppressed, 0);
        // Reconstruct per-value levels from the view for the Zipcode attr.
        let h = t.schema().hierarchy(2);
        let mut assignment: Vec<Option<u8>> = vec![None; h.ground_size()];
        for (view_row, &src_row) in r.kept_rows.iter().enumerate() {
            let released = r.view.label(view_row, 2);
            let v = t.column(2)[src_row];
            let level = (0..=h.height())
                .find(|&l| h.label(l, h.generalize(v, l)) == released)
                .expect("released label lies on the value's ancestor chain");
            assignment[v as usize] = Some(level);
        }
        // Values absent from the data are unobservable through the release;
        // the recoding function maps them with their observed subtree
        // siblings, so fill them accordingly before validating.
        let observed: Vec<(u32, u8)> = assignment
            .iter()
            .enumerate()
            .filter_map(|(v, l)| l.map(|l| (v as u32, l)))
            .collect();
        let assignment: Vec<u8> = assignment
            .iter()
            .enumerate()
            .map(|(w, l)| {
                l.unwrap_or_else(|| {
                    observed
                        .iter()
                        .find(|&&(v, l)| l > 0 && h.generalize(w as u32, l) == h.generalize(v, l))
                        .map(|&(_, l)| l)
                        .unwrap_or(0)
                })
            })
            .collect();
        assert!(is_valid_full_subtree(t.schema(), 2, &assignment));
    }

    #[test]
    fn validator_rejects_broken_closure() {
        let t = patients();
        // Zipcode: map 53715 to 5371* but leave 53710 at ground — invalid.
        let h = t.schema().hierarchy(2);
        let mut assignment = vec![0u8; h.ground_size()];
        assignment[h.ground_id("53715").unwrap() as usize] = 1;
        assert!(!is_valid_full_subtree(t.schema(), 2, &assignment));
        assignment[h.ground_id("53710").unwrap() as usize] = 1;
        assert!(is_valid_full_subtree(t.schema(), 2, &assignment));
    }
}
