/// Global vs. local recoding (§5): does one function recode a whole domain,
/// or are individual data-item instances modified?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recoding {
    /// One recoding function per (multi-)domain.
    Global,
    /// Per-cell recoding (a bijection on tuple instances).
    Local,
}

/// Hierarchy-based vs. partition-based generalization (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainStyle {
    /// Fixed value-generalization hierarchies (§2).
    HierarchyBased,
    /// Disjoint intervals over a totally-ordered domain.
    PartitionBased,
}

/// Single- vs. multi-dimension recoding (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimensionality {
    /// One function `φᵢ : D_Qᵢ → D'` per attribute.
    Single,
    /// One function over the cross-product domain of the quasi-identifier.
    Multi,
}

/// A catalog entry describing one anonymization model in the Section 5
/// taxonomy and where this crate implements it.
#[derive(Debug, Clone)]
pub struct ModelDescriptor {
    /// The paper's name for the model.
    pub name: &'static str,
    /// Global or local recoding.
    pub recoding: Recoding,
    /// Hierarchy or ordered-set partitioning.
    pub style: DomainStyle,
    /// Single- or multi-dimension.
    pub dimensionality: Dimensionality,
    /// Paper section and external reference.
    pub reference: &'static str,
    /// Implementing module/function in this workspace.
    pub implementation: &'static str,
}

/// The full Section 5 catalog, in the order the paper presents the models.
pub fn taxonomy() -> Vec<ModelDescriptor> {
    use Dimensionality::*;
    use DomainStyle::*;
    use Recoding::*;
    vec![
        ModelDescriptor {
            name: "Full-domain generalization",
            recoding: Global,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§2.1/§5.1.1 [14, 15]",
            implementation: "incognito_core::incognito + release::full_domain_release",
        },
        ModelDescriptor {
            name: "Attribute suppression",
            recoding: Global,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§5.1.1 [13]",
            implementation: "release::attribute_suppression_release",
        },
        ModelDescriptor {
            name: "Single-dimension full-subtree recoding",
            recoding: Global,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§5.1.1 [11]",
            implementation: "subtree::full_subtree_anonymize",
        },
        ModelDescriptor {
            name: "Unrestricted single-dimension recoding",
            recoding: Global,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§5.1.1",
            implementation: "subtree::full_subtree_anonymize (unrestricted mode)",
        },
        ModelDescriptor {
            name: "Single-dimension ordered-set partitioning",
            recoding: Global,
            style: PartitionBased,
            dimensionality: Single,
            reference: "§5.1.2 [3, 11]",
            implementation: "partition1d::ordered_partition_anonymize",
        },
        ModelDescriptor {
            name: "Multi-dimension full-subgraph recoding",
            recoding: Global,
            style: HierarchyBased,
            dimensionality: Multi,
            reference: "§5.1.3",
            implementation: "subgraph::full_subgraph_anonymize",
        },
        ModelDescriptor {
            name: "Multi-dimension ordered-set partitioning",
            recoding: Global,
            style: PartitionBased,
            dimensionality: Multi,
            reference: "§5.1.4 [12]",
            implementation: "mondrian::mondrian_anonymize",
        },
        ModelDescriptor {
            name: "Cell suppression",
            recoding: Local,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§5.2 [1, 13, 20]",
            implementation: "local::cell_suppression_anonymize",
        },
        ModelDescriptor {
            name: "Cell generalization",
            recoding: Local,
            style: HierarchyBased,
            dimensionality: Single,
            reference: "§5.2 [17]",
            implementation: "local::cell_generalization_anonymize",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_axis_combinations_used_by_the_paper() {
        let cat = taxonomy();
        assert_eq!(cat.len(), 9);
        assert!(cat.iter().any(|m| m.recoding == Recoding::Local));
        assert!(cat
            .iter()
            .any(|m| m.style == DomainStyle::PartitionBased
                && m.dimensionality == Dimensionality::Multi));
        assert!(cat
            .iter()
            .any(|m| m.style == DomainStyle::HierarchyBased
                && m.dimensionality == Dimensionality::Multi));
        // Names are unique.
        let mut names: Vec<_> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
