//! K-Optimize — Bayardo & Agrawal's optimal search for the
//! single-dimension ordered-set partitioning model (\[3\], discussed in
//! §5.1.2/§6 of the paper; building algorithms for the flexible §5 models
//! is the future work §7 calls out).
//!
//! The model: every quasi-identifier attribute's ordered domain is covered
//! by disjoint intervals; an anonymization is a choice of *split points*
//! (an interval starts at each chosen value). K-Optimize explores the
//! power set of split points with a set-enumeration tree — the root is the
//! empty set (every attribute one interval, most general), each child adds
//! one split with a higher canonical index — searching depth-first for the
//! split set minimizing the **discernibility cost**
//!
//! ```text
//! cost = Σ_{classes ≥ k} |class|²  +  Σ_{classes < k} |class| · |T|
//! ```
//!
//! (small classes are suppressed and charged |T| per tuple, as in \[3\]).
//!
//! Pruning uses the model's key monotonicity: adding splits only *refines*
//! equivalence classes, so a class already below k stays below k in every
//! descendant — its suppression cost is committed — and every tuple in a
//! surviving class contributes at least k to the cost. That yields the
//! admissible lower bound
//!
//! ```text
//! LB = Σ_{classes < k} |class| · |T|  +  Σ_{classes ≥ k} |class| · k
//! ```
//!
//! and a subtree is pruned when `LB ≥ best`. This reproduces \[3\]'s
//! algorithmic idea at reproduction scale (the full paper adds further
//! bound tightening and reordering heuristics).

use incognito_table::fxhash::FxHashMap;
use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, AnonymizedRelease};

/// Upper bound on the split alphabet (total split points across the QI)
/// before [`koptimize_anonymize`] refuses: the search is exponential, as
/// the optimal problem is NP-hard.
pub const MAX_ALPHABET: usize = 24;

/// Outcome of the optimal search.
#[derive(Debug, Clone)]
pub struct KOptimizeOutcome {
    /// The release built from the optimal split set.
    pub release: AnonymizedRelease,
    /// The optimal discernibility cost (with the \[3\] suppression charge).
    pub cost: u128,
    /// Set-enumeration nodes evaluated.
    pub nodes_evaluated: usize,
    /// Subtrees pruned by the lower bound.
    pub subtrees_pruned: usize,
}

/// Errors specific to the optimal search.
#[derive(Debug)]
pub enum KOptimizeError {
    /// The combined split alphabet exceeds [`MAX_ALPHABET`].
    AlphabetTooLarge {
        /// The alphabet size of this workload.
        size: usize,
    },
    /// Table-layer failure.
    Table(TableError),
}

impl std::fmt::Display for KOptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KOptimizeError::AlphabetTooLarge { size } => write!(
                f,
                "split alphabet of {size} exceeds the exhaustive-search cap of {MAX_ALPHABET}"
            ),
            KOptimizeError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for KOptimizeError {}

impl From<TableError> for KOptimizeError {
    fn from(e: TableError) -> Self {
        KOptimizeError::Table(e)
    }
}

/// One split point: `(qi position, domain value id)` — an interval begins
/// at this value when the split is included.
type Split = (usize, u32);

/// Run K-Optimize over `qi` with parameter `k`. Suppressed tuples (classes
/// below k at the optimum) are removed from the release, per the model.
pub fn koptimize_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<KOptimizeOutcome, KOptimizeError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let domains: Vec<usize> = qi.iter().map(|&a| schema.hierarchy(a).ground_size()).collect();

    // Canonical split alphabet: for each attribute, a split before every
    // domain value except the first. Restrict to values that actually
    // appear so empty intervals don't inflate the alphabet.
    let mut alphabet: Vec<Split> = Vec::new();
    for (pos, &a) in qi.iter().enumerate() {
        let mut present = vec![false; domains[pos]];
        for &v in table.column(a) {
            present[v as usize] = true;
        }
        for v in 1..domains[pos] as u32 {
            if present[v as usize] {
                alphabet.push((pos, v));
            }
        }
    }
    if alphabet.len() > MAX_ALPHABET {
        return Err(KOptimizeError::AlphabetTooLarge { size: alphabet.len() });
    }

    // DFS over the set-enumeration tree.
    struct Search<'a> {
        table: &'a Table,
        qi: &'a [usize],
        alphabet: &'a [Split],
        k: u64,
        n_rows: u64,
        best_cost: u128,
        best_set: Vec<usize>,
        nodes: usize,
        pruned: usize,
    }

    impl Search<'_> {
        /// Group rows under the split set; return (cost, lower bound).
        fn evaluate(&mut self, set: &[usize]) -> (u128, u128) {
            self.nodes += 1;
            // interval id per attribute = number of included splits ≤ value.
            let mut splits_per_attr: Vec<Vec<u32>> = vec![Vec::new(); self.qi.len()];
            for &s in set {
                let (pos, v) = self.alphabet[s];
                splits_per_attr[pos].push(v);
            }
            for s in &mut splits_per_attr {
                s.sort_unstable();
            }
            let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
            for row in 0..self.table.num_rows() {
                let key: Vec<u32> = self
                    .qi
                    .iter()
                    .enumerate()
                    .map(|(pos, &a)| {
                        let v = self.table.column(a)[row];
                        splits_per_attr[pos].partition_point(|&b| b <= v) as u32
                    })
                    .collect();
                *counts.entry(key).or_insert(0) += 1;
            }
            let mut cost = 0u128;
            let mut lb = 0u128;
            for &c in counts.values() {
                if c >= self.k {
                    cost += (c as u128) * (c as u128);
                    lb += (c as u128) * (self.k as u128);
                } else {
                    let sup = (c as u128) * (self.n_rows as u128);
                    cost += sup;
                    lb += sup;
                }
            }
            (cost, lb)
        }

        fn dfs(&mut self, set: &mut Vec<usize>, next: usize) {
            let (cost, lb) = self.evaluate(set);
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best_set = set.clone();
            }
            if lb >= self.best_cost {
                self.pruned += 1;
                return;
            }
            for s in next..self.alphabet.len() {
                set.push(s);
                self.dfs(set, s + 1);
                set.pop();
            }
        }
    }

    let mut search = Search {
        table,
        qi,
        alphabet: &alphabet,
        k,
        n_rows: n_rows as u64,
        best_cost: u128::MAX,
        best_set: Vec::new(),
        nodes: 0,
        pruned: 0,
    };
    search.dfs(&mut Vec::new(), 0);

    // Materialize the optimal release.
    let mut splits_per_attr: Vec<Vec<u32>> = vec![Vec::new(); qi.len()];
    for &s in &search.best_set {
        let (pos, v) = alphabet[s];
        splits_per_attr[pos].push(v);
    }
    for s in &mut splits_per_attr {
        s.sort_unstable();
    }

    // Interval label per (attr, interval id).
    let interval_label = |pos: usize, a: usize, iv: usize| -> String {
        let h = schema.hierarchy(a);
        let lo = if iv == 0 { 0 } else { splits_per_attr[pos][iv - 1] };
        let hi = splits_per_attr[pos]
            .get(iv)
            .map(|&b| b - 1)
            .unwrap_or(domains[pos] as u32 - 1);
        if lo == hi {
            h.label(0, lo).to_string()
        } else {
            format!("[{}-{}]", h.label(0, lo), h.label(0, hi))
        }
    };

    // Group once more under the optimum to find suppressed classes.
    let mut groups: FxHashMap<Vec<u32>, Vec<usize>> = FxHashMap::default();
    for row in 0..n_rows {
        let key: Vec<u32> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let v = table.column(a)[row];
                splits_per_attr[pos].partition_point(|&b| b <= v) as u32
            })
            .collect();
        groups.entry(key).or_default().push(row);
    }
    let mut dropped = vec![false; n_rows];
    for rows in groups.values() {
        if (rows.len() as u64) < k {
            for &r in rows {
                dropped[r] = true;
            }
        }
    }
    let suppressed = dropped.iter().filter(|&&d| d).count() as u64;
    let kept: Vec<usize> = (0..n_rows).filter(|&r| !dropped[r]).collect();
    let mut precision_loss = suppressed as f64 * qi.len() as f64;
    let mut lm_loss = suppressed as f64 * qi.len() as f64;
    let mut qi_labels: Vec<Vec<String>> = Vec::with_capacity(kept.len());
    for &row in &kept {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let v = table.column(a)[row];
                let iv = splits_per_attr[pos].partition_point(|&b| b <= v);
                let lo = if iv == 0 { 0 } else { splits_per_attr[pos][iv - 1] };
                let hi = splits_per_attr[pos]
                    .get(iv)
                    .map(|&b| b - 1)
                    .unwrap_or(domains[pos] as u32 - 1);
                let frac = if domains[pos] <= 1 {
                    0.0
                } else {
                    (hi - lo) as f64 / (domains[pos] - 1) as f64
                };
                precision_loss += frac;
                lm_loss += frac;
                interval_label(pos, a, iv)
            })
            .collect();
        qi_labels.push(labels);
    }
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    let release = AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    };
    Ok(KOptimizeOutcome {
        release,
        cost: search.best_cost,
        nodes_evaluated: search.nodes,
        subtrees_pruned: search.pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    /// Brute-force reference: evaluate every subset of the alphabet.
    fn brute_force_cost(table: &Table, qi: &[usize], k: u64) -> u128 {
        let schema = table.schema().clone();
        let domains: Vec<usize> =
            qi.iter().map(|&a| schema.hierarchy(a).ground_size()).collect();
        let mut alphabet: Vec<(usize, u32)> = Vec::new();
        for (pos, &a) in qi.iter().enumerate() {
            let mut present = vec![false; domains[pos]];
            for &v in table.column(a) {
                present[v as usize] = true;
            }
            for v in 1..domains[pos] as u32 {
                if present[v as usize] {
                    alphabet.push((pos, v));
                }
            }
        }
        let n = table.num_rows() as u128;
        let mut best = u128::MAX;
        for mask in 0u32..(1 << alphabet.len()) {
            let mut splits: Vec<Vec<u32>> = vec![Vec::new(); qi.len()];
            for (s, &(pos, v)) in alphabet.iter().enumerate() {
                if mask & (1 << s) != 0 {
                    splits[pos].push(v);
                }
            }
            for sp in &mut splits {
                sp.sort_unstable();
            }
            let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
            for row in 0..table.num_rows() {
                let key: Vec<u32> = qi
                    .iter()
                    .enumerate()
                    .map(|(pos, &a)| {
                        let v = table.column(a)[row];
                        splits[pos].partition_point(|&b| b <= v) as u32
                    })
                    .collect();
                *counts.entry(key).or_insert(0) += 1;
            }
            let cost: u128 = counts
                .values()
                .map(|&c| {
                    if c >= k {
                        (c as u128) * (c as u128)
                    } else {
                        (c as u128) * n
                    }
                })
                .sum();
            best = best.min(cost);
        }
        best
    }

    #[test]
    fn optimal_on_patients_matches_brute_force() {
        let t = patients();
        for k in [1u64, 2, 3] {
            let out = koptimize_anonymize(&t, &[1, 2], k).unwrap();
            assert_eq!(out.cost, brute_force_cost(&t, &[1, 2], k), "k={k}");
            // Kept classes are all ≥ k.
            assert!(out.release.is_k_anonymous(k));
        }
    }

    #[test]
    fn pruning_saves_work_but_not_optimality() {
        let t = adults(&AdultsConfig { rows: 400, seed: 60 });
        // Gender + Marital (small domains). A high k makes suppression
        // dominate deep in the tree, which is when the committed-
        // suppression bound bites.
        let out = koptimize_anonymize(&t, &[1, 3], 60).unwrap();
        assert_eq!(out.cost, brute_force_cost(&t, &[1, 3], 60));
        assert!(out.subtrees_pruned > 0, "expected the bound to fire");
        // Strictly fewer nodes than the full power set.
        assert!(out.nodes_evaluated < (1 << 7));
    }

    #[test]
    fn optimal_never_worse_than_greedy_partitioning() {
        let t = adults(&AdultsConfig { rows: 500, seed: 61 });
        let k = 10u64;
        let opt = koptimize_anonymize(&t, &[1, 3], k).unwrap();
        let greedy = crate::partition1d::ordered_partition_anonymize(&t, &[1, 3], k).unwrap();
        let greedy_cost = greedy.metrics(k).discernibility;
        assert!(
            opt.cost <= greedy_cost,
            "optimal {} must not exceed greedy {greedy_cost}",
            opt.cost
        );
    }

    #[test]
    fn alphabet_guard() {
        let t = adults(&AdultsConfig { rows: 200, seed: 62 });
        // Age alone has 73 split points.
        assert!(matches!(
            koptimize_anonymize(&t, &[0], 5),
            Err(KOptimizeError::AlphabetTooLarge { .. })
        ));
    }
}
