//! Multi-dimension ordered-set partitioning (§5.1.4) — the greedy
//! median-split algorithm of the paper's reference \[12\] (LeFevre et al.,
//! "Multidimensional k-anonymity", a.k.a. Mondrian, strict variant).
//!
//! The quasi-identifier's multi-attribute domain is covered by disjoint
//! multi-dimensional intervals; the recoding function maps each tuple to
//! the interval containing it. Splits recurse on the attribute with the
//! widest normalized range, at the median, and only while both halves keep
//! at least k tuples — so the result is k-anonymous whenever the table has
//! at least k rows.

use incognito_table::{Table, TableError};

use crate::release::{build_view_from_labels, AnonymizedRelease};

/// Run strict Mondrian over `qi` (attribute domains are treated as
/// totally-ordered sets in ground-dictionary order, which the dataset
/// builders keep sorted for numeric attributes).
pub fn mondrian_anonymize(
    table: &Table,
    qi: &[usize],
    k: u64,
) -> Result<AnonymizedRelease, TableError> {
    let schema = table.schema().clone();
    let n_rows = table.num_rows();
    let domains: Vec<usize> = qi.iter().map(|&a| schema.hierarchy(a).ground_size()).collect();

    // Recursive splitting over row-index partitions.
    let mut leaves: Vec<Vec<usize>> = Vec::new();
    let mut stack: Vec<Vec<usize>> = vec![(0..n_rows).collect()];
    while let Some(part) = stack.pop() {
        match best_split(table, qi, &domains, &part, k) {
            Some((left, right)) => {
                stack.push(left);
                stack.push(right);
            }
            None => leaves.push(part),
        }
    }

    // Label each leaf by its per-attribute value range.
    let mut qi_labels: Vec<Vec<String>> = vec![Vec::new(); n_rows];
    let mut precision_loss = 0.0;
    let mut lm_loss = 0.0;
    for part in &leaves {
        let labels: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                let (lo, hi) = min_max(table.column(a), part);
                let h = schema.hierarchy(a);
                let width_fraction = if domains[pos] <= 1 {
                    0.0
                } else {
                    (hi - lo) as f64 / (domains[pos] - 1) as f64
                };
                precision_loss += part.len() as f64 * width_fraction;
                lm_loss += part.len() as f64 * width_fraction;
                if lo == hi {
                    h.label(0, lo).to_string()
                } else {
                    format!("[{}-{}]", h.label(0, lo), h.label(0, hi))
                }
            })
            .collect();
        for &row in part {
            qi_labels[row] = labels.clone();
        }
    }

    let kept: Vec<usize> = (0..n_rows).collect();
    let (view, class_sizes) = build_view_from_labels(table, qi, &kept, &qi_labels)?;
    Ok(AnonymizedRelease {
        view,
        qi: qi.to_vec(),
        suppressed: 0,
        kept_rows: kept,
        source_rows: n_rows as u64,
        class_sizes,
        precision_loss,
        lm_loss,
    })
}

fn min_max(col: &[u32], rows: &[usize]) -> (u32, u32) {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for &r in rows {
        lo = lo.min(col[r]);
        hi = hi.max(col[r]);
    }
    (lo, hi)
}

/// Find an allowable median split of `part`: try attributes in decreasing
/// normalized-range order; return the first split leaving ≥ k rows on both
/// sides.
fn best_split(
    table: &Table,
    qi: &[usize],
    domains: &[usize],
    part: &[usize],
    k: u64,
) -> Option<(Vec<usize>, Vec<usize>)> {
    if (part.len() as u64) < 2 * k {
        return None;
    }
    // Rank attributes by normalized range over this partition.
    let mut ranked: Vec<(f64, usize)> = qi
        .iter()
        .enumerate()
        .map(|(pos, &a)| {
            let (lo, hi) = min_max(table.column(a), part);
            let norm = if domains[pos] <= 1 {
                0.0
            } else {
                (hi - lo) as f64 / (domains[pos] - 1) as f64
            };
            (norm, a)
        })
        .collect();
    ranked.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

    for &(range, a) in &ranked {
        if range == 0.0 {
            break; // constant in every remaining attribute
        }
        let col = table.column(a);
        let mut vals: Vec<u32> = part.iter().map(|&r| col[r]).collect();
        vals.sort_unstable();
        let median = vals[vals.len() / 2];
        // Try both conventions — left = (v < median) and left = (v ≤ median)
        // — keeping whichever leaves ≥ k rows on both sides.
        for strict in [true, false] {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &r in part {
                let goes_left = if strict { col[r] < median } else { col[r] <= median };
                if goes_left {
                    left.push(r);
                } else {
                    right.push(r);
                }
            }
            if left.len() as u64 >= k && right.len() as u64 >= k {
                return Some((left, right));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::{adults, patients, AdultsConfig};

    #[test]
    fn patients_mondrian_is_2_anonymous() {
        let t = patients();
        let r = mondrian_anonymize(&t, &[0, 1, 2], 2).unwrap();
        assert!(r.is_k_anonymous(2));
        assert_eq!(r.suppressed, 0);
        assert_eq!(r.view.num_rows(), 6);
        // With 6 rows and k=2 there are at most 3 classes.
        assert!(r.num_classes() <= 3 && r.num_classes() >= 1);
    }

    #[test]
    fn adults_subset_mondrian_k5() {
        let t = adults(&AdultsConfig { rows: 2_000, seed: 42 });
        let r = mondrian_anonymize(&t, &[0, 1, 3], 5).unwrap();
        assert!(r.is_k_anonymous(5));
        // Multidimensional recoding should beat full suppression: several
        // classes, not one.
        assert!(r.num_classes() > 10, "got {}", r.num_classes());
    }

    #[test]
    fn multidimensional_beats_single_dimensional_full_domain() {
        // The result [12] the paper cites: multi-dimension recodings can be
        // strictly better. Compare discernibility against the best
        // full-domain generalization for the same table/k.
        let t = adults(&AdultsConfig { rows: 1_000, seed: 3 });
        let qi = [0usize, 1];
        let k = 10;
        let mond = mondrian_anonymize(&t, &qi, k).unwrap();
        assert!(mond.is_k_anonymous(k));
        let full = incognito_core::incognito(&t, &qi, &incognito_core::Config::new(k))
            .unwrap();
        let best_full = full
            .generalizations()
            .iter()
            .map(|g| {
                crate::release::full_domain_release(&t, &qi, &g.levels, None)
                    .unwrap()
                    .metrics(k)
                    .discernibility
            })
            .min()
            .unwrap();
        let mond_dm = mond.metrics(k).discernibility;
        assert!(
            mond_dm <= best_full,
            "mondrian {mond_dm} should not lose to best full-domain {best_full}"
        );
    }

    #[test]
    fn tiny_table_collapses_to_one_class() {
        let t = patients();
        let r = mondrian_anonymize(&t, &[0, 1, 2], 6).unwrap();
        assert_eq!(r.num_classes(), 1);
        assert!(r.is_k_anonymous(6));
    }

    #[test]
    fn k_larger_than_table_not_anonymous_but_single_class() {
        let t = patients();
        let r = mondrian_anonymize(&t, &[0, 1, 2], 10).unwrap();
        assert_eq!(r.num_classes(), 1);
        assert!(!r.is_k_anonymous(10));
    }
}
