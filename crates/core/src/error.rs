use std::fmt;

use incognito_table::{ExternalError, TableError};

/// Errors raised by the anonymization algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoError {
    /// The quasi-identifier was empty.
    EmptyQuasiIdentifier,
    /// A quasi-identifier attribute index was repeated.
    DuplicateQiAttribute(usize),
    /// k must be at least 1.
    InvalidK(u64),
    /// An underlying table/frequency-set operation failed.
    Table(TableError),
    /// The out-of-core spill path failed (IO error or corrupt spill file).
    /// Carries the rendered [`ExternalError`] — `AlgoError` is `Clone + Eq`
    /// for result comparison, which `std::io::Error` cannot satisfy
    /// structurally.
    Spill(String),
    /// No k-anonymous generalization exists even at the top of the lattice
    /// (only possible with a suppression threshold smaller than the number
    /// of tuples below k at full generalization).
    NoSolution,
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::EmptyQuasiIdentifier => write!(f, "quasi-identifier is empty"),
            AlgoError::DuplicateQiAttribute(a) => {
                write!(f, "attribute {a} appears twice in the quasi-identifier")
            }
            AlgoError::InvalidK(k) => write!(f, "k must be >= 1, got {k}"),
            AlgoError::Table(e) => write!(f, "table error: {e}"),
            AlgoError::Spill(msg) => write!(f, "spill error: {msg}"),
            AlgoError::NoSolution => {
                write!(f, "no k-anonymous full-domain generalization exists under this budget")
            }
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for AlgoError {
    fn from(e: TableError) -> Self {
        AlgoError::Table(e)
    }
}

impl From<ExternalError> for AlgoError {
    fn from(e: ExternalError) -> Self {
        match e {
            // Keep structured table errors structured; only the IO-flavored
            // cases degrade to the rendered form.
            ExternalError::Table(t) => AlgoError::Table(t),
            other => AlgoError::Spill(other.to_string()),
        }
    }
}

/// Validate a quasi-identifier and configuration against a schema. Returns
/// the QI sorted ascending (the canonical dimension order used throughout).
pub(crate) fn validate_qi(
    schema: &incognito_table::Schema,
    qi: &[usize],
    k: u64,
) -> Result<Vec<usize>, AlgoError> {
    if qi.is_empty() {
        return Err(AlgoError::EmptyQuasiIdentifier);
    }
    if k == 0 {
        return Err(AlgoError::InvalidK(k));
    }
    let mut sorted = qi.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(AlgoError::DuplicateQiAttribute(w[0]));
        }
    }
    if let Some(&bad) = sorted.iter().find(|&&a| a >= schema.arity()) {
        return Err(AlgoError::Table(TableError::AttributeOutOfRange {
            index: bad,
            arity: schema.arity(),
        }));
    }
    Ok(sorted)
}
