//! Samarati's distance-vector-matrix k-anonymity check — the alternative
//! the paper's footnote 2 describes and rejects: *"Samarati suggests an
//! alternative approach whereby a matrix of distance vectors is
//! constructed between unique tuples. However, we found constructing this
//! matrix prohibitively expensive for large databases."*
//!
//! Reproduced here so the benchmark suite can regenerate that finding. The
//! distance vector between two tuples is, per attribute, the lowest
//! hierarchy level at which their values coincide; tuple `t` is covered by
//! generalization `G` at distance vector `d(t, u)` ≤ `G` for enough tuples
//! `u`. Building the matrix is Θ(u² · |QI|) in the number of distinct
//! tuples `u` — quadratic where a frequency set is linear, which is
//! exactly why the paper's group-by formulation wins.

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::Table;

use crate::error::validate_qi;
use crate::{AlgoError, Config};

/// The matrix of pairwise distance vectors between the distinct
/// quasi-identifier tuples of a table.
pub struct DistanceMatrix {
    qi: Vec<usize>,
    /// Distinct ground tuples (by QI), with their multiplicities.
    tuples: Vec<(Vec<u32>, u64)>,
    /// Row-major upper-triangular-with-diagonal pairwise vectors:
    /// `matrix[i][j]` for j ≥ i holds `d(tuples[i], tuples[j])`.
    matrix: Vec<Vec<Vec<LevelNo>>>,
}

impl DistanceMatrix {
    /// Build the matrix (footnote 2's expensive step).
    pub fn build(table: &Table, qi: &[usize], k: u64) -> Result<DistanceMatrix, AlgoError> {
        let schema = table.schema().clone();
        let qi = validate_qi(&schema, qi, k)?;

        // Distinct tuples with counts.
        let mut index: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for row in 0..table.num_rows() {
            let t: Vec<u32> = qi.iter().map(|&a| table.column(a)[row]).collect();
            *index.entry(t).or_insert(0) += 1;
        }
        let mut tuples: Vec<(Vec<u32>, u64)> = index.into_iter().collect();
        tuples.sort();

        // Per attribute, the lowest common level of every ground pair can
        // be answered from the composed maps; precompute per level.
        let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
        let lca_level = |attr_pos: usize, x: u32, y: u32| -> LevelNo {
            let h = schema.hierarchy(qi[attr_pos]);
            (0..=heights[attr_pos])
                .find(|&l| h.generalize(x, l) == h.generalize(y, l))
                .unwrap_or(heights[attr_pos])
        };

        let u = tuples.len();
        let mut matrix: Vec<Vec<Vec<LevelNo>>> = Vec::with_capacity(u);
        for i in 0..u {
            let mut row = Vec::with_capacity(u - i);
            for j in i..u {
                let d: Vec<LevelNo> = (0..qi.len())
                    .map(|p| lca_level(p, tuples[i].0[p], tuples[j].0[p]))
                    .collect();
                row.push(d);
            }
            matrix.push(row);
        }
        Ok(DistanceMatrix { qi, tuples, matrix })
    }

    /// Number of distinct quasi-identifier tuples (the matrix dimension).
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The quasi-identifier (sorted).
    pub fn qi(&self) -> &[usize] {
        &self.qi
    }

    /// `d(i, j)` — the component-wise lowest common generalization levels.
    pub fn distance(&self, i: usize, j: usize) -> &[LevelNo] {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        &self.matrix[lo][hi - lo]
    }

    /// Check k-anonymity of a generalization `levels` from the matrix: each
    /// tuple's equivalence class under `levels` is the set of tuples whose
    /// distance vector is component-wise ≤ `levels`; the class weight must
    /// reach k.
    pub fn is_k_anonymous(&self, levels: &[LevelNo], cfg: &Config) -> bool {
        let u = self.tuples.len();
        let mut below = 0u64;
        for i in 0..u {
            let mut class = 0u64;
            for (j, t) in self.tuples.iter().enumerate() {
                let d = self.distance(i, j);
                if d.iter().zip(levels).all(|(&dv, &lv)| dv <= lv) {
                    class += t.1;
                }
            }
            if class < cfg.k {
                below += self.tuples[i].1;
            }
        }
        below <= cfg.max_suppress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exhaustive_truth, patients};
    use incognito_lattice::CandidateGraph;

    #[test]
    fn matrix_distances_match_hierarchies() {
        let t = patients();
        let m = DistanceMatrix::build(&t, &[1, 2], 2).unwrap();
        // Distinct ⟨Sex, Zipcode⟩ tuples: (M,53715) (F,53715) (M,53703)
        // (F,53706) → 4.
        assert_eq!(m.num_tuples(), 4);
        // d(t, t) = 0 vector.
        for i in 0..4 {
            assert!(m.distance(i, i).iter().all(|&l| l == 0));
        }
        // Symmetric.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.distance(i, j), m.distance(j, i));
            }
        }
    }

    #[test]
    fn matrix_check_agrees_with_frequency_sets() {
        let t = patients();
        for k in [1u64, 2, 3, 6] {
            let cfg = Config::new(k);
            let m = DistanceMatrix::build(&t, &[0, 1, 2], k).unwrap();
            let truth = exhaustive_truth(&t, &[0, 1, 2], &cfg);
            let lattice = CandidateGraph::full_lattice(t.schema(), &[0, 1, 2]);
            for node in lattice.nodes() {
                let levels = node.levels();
                assert_eq!(
                    m.is_k_anonymous(&levels, &cfg),
                    truth.contains(&levels),
                    "k={k} levels={levels:?}"
                );
            }
        }
    }

    #[test]
    fn matrix_check_honors_suppression() {
        let t = patients();
        let cfg = Config::new(2).with_suppression(2);
        let m = DistanceMatrix::build(&t, &[1, 2], 2).unwrap();
        // At ground level two singleton tuples exist — within the budget.
        assert!(m.is_k_anonymous(&[0, 0], &cfg));
        assert!(!m.is_k_anonymous(&[0, 0], &Config::new(2)));
    }
}
