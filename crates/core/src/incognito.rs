//! Basic and Super-roots Incognito (Figure 8 and §3.3.1 of the paper).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use incognito_table::fxhash::FxHashMap;
use incognito_table::{GroupSpec, Schema, Table};
use incognito_lattice::{generate_next, CandidateGraph, NodeId};

use crate::error::validate_qi;
use crate::provider::{FreqHandle, FreqProvider};
use crate::trace::{CheckSource, TraceEvent};
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Run Incognito and return **all** k-anonymous full-domain generalizations
/// of the quasi-identifier `qi` (soundness and completeness, §3.2).
///
/// `cfg` selects Basic vs Super-roots behaviour, the prune structure, the
/// suppression allowance, and the rollup ablation switch.
///
/// ```
/// # use incognito_core::{incognito, Config};
/// # use incognito_hierarchy::builders;
/// # use incognito_table::{Attribute, Schema, Table};
/// # let schema = Schema::new(vec![
/// #     Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
/// #     Attribute::new("Zipcode",
/// #         builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2).unwrap()),
/// # ]).unwrap();
/// # let mut t = Table::empty(schema);
/// # for row in [["Male", "53715"], ["Female", "53715"], ["Male", "53703"],
/// #             ["Male", "53703"], ["Female", "53706"], ["Female", "53706"]] {
/// #     t.push_row(&row).unwrap();
/// # }
/// let result = incognito(&t, &[0, 1], &Config::new(2)).unwrap();
/// assert!(result.contains(&[1, 0])); // ⟨S1, Z0⟩ is 2-anonymous
/// assert!(!result.contains(&[0, 0]));
/// ```
pub fn incognito(table: &Table, qi: &[usize], cfg: &Config) -> Result<AnonymizationResult, AlgoError> {
    incognito_impl(table, qi, cfg, &mut |_| {}, AltSource::None)
}

/// Like [`incognito`], but also returns the full [`TraceEvent`] log.
pub fn incognito_traced(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<(AnonymizationResult, Vec<TraceEvent>), AlgoError> {
    let mut events = Vec::new();
    let result = incognito_impl(table, qi, cfg, &mut |e| events.push(e), AltSource::None)?;
    Ok((result, events))
}

/// Zero-generalization frequency sets keyed by QI-position bitmask
/// (bit `j` set ⇔ the `j`-th attribute of the sorted QI is present).
/// Values are provider handles, so an over-budget cube build spills its
/// subsets to disk like any other frequency set.
pub(crate) type ZeroCube = FxHashMap<u32, FreqHandle>;

/// An alternative source of frequency sets consulted before scanning the
/// base table: Cube Incognito's zero-generalization cube, or a
/// [`crate::materialize::FreqStore`] (§7's strategic materialization).
pub(crate) enum AltSource<'a, 't> {
    /// No alternative: roots scan the table (Basic / Super-roots).
    None,
    /// Roll root frequency sets up from the zero-generalization cube.
    Cube(&'a ZeroCube),
    /// Answer from a materialized frequency-set store.
    Store(&'a mut crate::materialize::FreqStore<'t>),
}

/// How one wave candidate will obtain its frequency set. Plans are decided
/// serially against the wave-start cache state; because candidates of
/// equal lattice height share no edges, no same-wave check can insert or
/// evict a frequency set a sibling's plan depends on, so these plans are
/// exactly the ones the serial engine would make one at a time
/// (DESIGN.md §8).
enum FreqPlan<'f> {
    /// Rollup from a cached direct specialization's frequency set.
    Rollup { parent: &'f FreqHandle, target: Vec<u8> },
    /// Rollup from the zero-generalization cube (Cube Incognito).
    Cube { zero: &'f FreqHandle, target: Vec<u8> },
    /// Rollup from this root family's shared super-root frequency set.
    SuperRoot { root: &'f FreqHandle, target: Vec<u8> },
    /// Scan the base table.
    Scan { spec: GroupSpec },
    /// Ask the materialized store. The store caches lazily (`&mut`), so
    /// these plans are always evaluated serially, never on the pool.
    Store { spec: GroupSpec },
}

/// Decide how `node` gets its frequency set, mirroring the serial
/// engine's source preference: cached-parent rollup, then cube / store /
/// super-root, then a table scan.
#[allow(clippy::too_many_arguments)]
fn plan_freq<'f>(
    node: NodeId,
    cfg: &Config,
    graph: &CandidateGraph,
    in_adj: &[Vec<NodeId>],
    cache: &'f FxHashMap<NodeId, FreqHandle>,
    superroot_freq: &'f FxHashMap<Vec<usize>, FreqHandle>,
    cube: Option<&'f ZeroCube>,
    is_store: bool,
    qi_pos: &FxHashMap<usize, usize>,
) -> Result<FreqPlan<'f>, AlgoError> {
    let spec = graph.node(node).to_group_spec()?;
    if !cfg.rollup {
        return Ok(FreqPlan::Scan { spec });
    }
    if let Some(parent) = in_adj[node as usize].iter().find_map(|&p| cache.get(&p)) {
        return Ok(FreqPlan::Rollup { parent, target: graph.node(node).levels() });
    }
    if let Some(cube) = cube {
        let mask =
            graph.node(node).parts.iter().fold(0u32, |m, &(a, _)| m | (1 << qi_pos[&a]));
        let zero = cube.get(&mask).expect("cube covers every QI subset");
        return Ok(FreqPlan::Cube { zero, target: graph.node(node).levels() });
    }
    if is_store {
        return Ok(FreqPlan::Store { spec });
    }
    if let Some(root) = superroot_freq.get(&graph.node(node).attr_set()) {
        return Ok(FreqPlan::SuperRoot { root, target: graph.node(node).levels() });
    }
    Ok(FreqPlan::Scan { spec })
}

/// The outcome of evaluating one wave candidate; verdicts and timings are
/// computed concurrently, then applied to the search state serially in
/// wave order.
struct Checked {
    freq: FreqHandle,
    via: CheckSource,
    anonymous: bool,
    scan_time: Duration,
    rollup_time: Duration,
}

/// Evaluate one non-store plan. Reads only shared state, so it is safe on
/// any pool worker; the `check` trace span opens on the executing thread,
/// which is what makes multi-worker checks visible in Perfetto exports.
fn eval_plan(
    provider: &FreqProvider<'_>,
    schema: &Schema,
    cfg: &Config,
    graph: &CandidateGraph,
    node: NodeId,
    plan: &FreqPlan<'_>,
    scan_threads: usize,
) -> Result<Checked, AlgoError> {
    let mut check_span = incognito_obs::trace::span("check");
    if check_span.is_active() {
        check_span.set_arg("node", crate::trace::spec_label(&graph.node(node).parts));
    }
    let mut scan_time = Duration::ZERO;
    let mut rollup_time = Duration::ZERO;
    let (freq, via) = match plan {
        FreqPlan::Rollup { parent, target } => {
            let t0 = Instant::now();
            let f = provider.rollup(parent, schema, target)?;
            rollup_time = t0.elapsed();
            (f, CheckSource::Rollup)
        }
        FreqPlan::Cube { zero, target } => {
            let t0 = Instant::now();
            let f = provider.rollup(zero, schema, target)?;
            rollup_time = t0.elapsed();
            (f, CheckSource::Cube)
        }
        FreqPlan::SuperRoot { root, target } => {
            let t0 = Instant::now();
            let f = provider.rollup(root, schema, target)?;
            rollup_time = t0.elapsed();
            (f, CheckSource::SuperRoot)
        }
        FreqPlan::Scan { spec } => {
            let t0 = Instant::now();
            let f = provider.scan(spec, scan_threads)?;
            scan_time = t0.elapsed();
            (f, CheckSource::TableScan)
        }
        FreqPlan::Store { .. } => unreachable!("store plans are evaluated serially"),
    };
    let anonymous = cfg.passes_handle(&freq)?;
    check_span.set_arg("via", via.as_str());
    check_span.set_arg("anonymous", anonymous);
    Ok(Checked { freq, via, anonymous, scan_time, rollup_time })
}

/// Evaluate one store-backed plan. Takes the store mutably (it caches the
/// answer), hence serial.
fn eval_store(
    store: &mut crate::materialize::FreqStore<'_>,
    cfg: &Config,
    graph: &CandidateGraph,
    node: NodeId,
    spec: &GroupSpec,
) -> Result<Checked, AlgoError> {
    let mut check_span = incognito_obs::trace::span("check");
    if check_span.is_active() {
        check_span.set_arg("node", crate::trace::spec_label(&graph.node(node).parts));
    }
    let t0 = Instant::now();
    let freq = store.frequency_set(spec)?;
    let rollup_time = t0.elapsed();
    let anonymous = cfg.passes(&freq);
    let via = CheckSource::Cube;
    check_span.set_arg("via", via.as_str());
    check_span.set_arg("anonymous", anonymous);
    Ok(Checked { freq: FreqHandle::Mem(freq), via, anonymous, scan_time: Duration::ZERO, rollup_time })
}

/// Incrementally tracked occupancy of the per-iteration frequency-set
/// cache, published as `core.freq_cache.*` gauges: the current level
/// (`entries`/`bytes`), and process-monotone high-water marks
/// (`peak_entries`/`peak_bytes`). Evictions bump the
/// `core.freq_cache.evictions` counter. Tracking is plain integer
/// arithmetic on the serial apply path, so it cannot perturb the
/// byte-identical-counters contract (DESIGN.md §8).
#[derive(Default)]
struct CacheGauges {
    entries: i64,
    bytes: i64,
    peak_entries: i64,
    peak_bytes: i64,
}

impl CacheGauges {
    fn on_insert(&mut self, freq: &FreqHandle) {
        self.entries += 1;
        self.bytes += freq.resident_bytes() as i64;
        self.peak_entries = self.peak_entries.max(self.entries);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    fn on_evict(&mut self, freq: &FreqHandle) {
        self.entries -= 1;
        self.bytes -= freq.resident_bytes() as i64;
        incognito_obs::incr("core.freq_cache.evictions");
    }

    fn publish(&self) {
        if !incognito_obs::enabled() {
            return;
        }
        let reg = incognito_obs::global();
        reg.gauge("core.freq_cache.entries").set(self.entries);
        reg.gauge("core.freq_cache.bytes").set(self.bytes);
        // Peaks stay monotone across iterations and runs in one process.
        let pe = reg.gauge("core.freq_cache.peak_entries");
        pe.set(pe.get().max(self.peak_entries));
        let pb = reg.gauge("core.freq_cache.peak_bytes");
        pb.set(pb.get().max(self.peak_bytes));
    }
}

/// Shared engine behind Basic, Super-roots, Cube, and store-backed
/// Incognito.
pub(crate) fn incognito_impl(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
    sink: &mut dyn FnMut(TraceEvent),
    mut alt: AltSource<'_, '_>,
) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let n = qi.len();
    // Position of each schema attribute within the sorted QI (for cube masks).
    let qi_pos: FxHashMap<usize, usize> =
        qi.iter().enumerate().map(|(p, &a)| (a, p)).collect();

    let search_start = Instant::now();
    let algo = match (&alt, cfg.superroots) {
        (AltSource::None, false) => "basic",
        (AltSource::None, true) => "superroots",
        (AltSource::Cube(_), _) => "cube",
        (AltSource::Store(_), _) => "store",
    };
    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", algo)
        .arg("k", cfg.k)
        .arg("qi_arity", n as u64);
    let mut stats = SearchStats::default();
    let mut graph = CandidateGraph::initial(&schema, &qi);
    let mut final_alive: Vec<bool> = Vec::new();
    // Every frequency set the search touches comes through the provider,
    // which spills to disk while the process is over the memory budget.
    let provider = FreqProvider::new(table, cfg);

    // Shared work-stealing pool for wave-parallel node checks and family
    // scans. `None` (threads == 1) keeps the engine on the strictly serial
    // path whose counters the committed regression baseline pins.
    let pool = (cfg.threads > 1).then(|| incognito_exec::shared(cfg.threads));
    // The cube is read-only during the search: hold a direct reference so
    // wave plans can borrow zero-generalization frequency sets without
    // touching `alt` (whose store variant needs `&mut`).
    let cube: Option<&ZeroCube> = match &alt {
        AltSource::Cube(c) => Some(c),
        _ => None,
    };
    let is_store = matches!(alt, AltSource::Store(_));

    for i in 1..=n {
        let iter_start = Instant::now();
        let mut iter_span = incognito_obs::trace::span("iteration")
            .arg("arity", i as u64)
            .arg("candidates", graph.num_nodes() as u64)
            .arg("edges", graph.num_edges() as u64);
        sink(TraceEvent::IterationStart {
            arity: i,
            candidates: graph.num_nodes(),
            edges: graph.num_edges(),
        });
        let num = graph.num_nodes();
        let mut alive = vec![true; num];
        let mut marked = vec![false; num];
        let mut processed = vec![false; num];
        let mut it_stats = IterationStats {
            arity: i,
            candidates: num,
            edges: graph.num_edges(),
            ..IterationStats::default()
        };

        // In-adjacency (direct specializations), for rollup sources and
        // frequency-set cache eviction.
        let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        for &(s, e) in graph.edges() {
            in_adj[e as usize].push(s);
        }

        // Super-roots (§3.3.1): scan once per family at the greatest lower
        // bound of that family's roots, then roll up to each root. (The
        // paper's prose says "least upper bound" but its example computes
        // ⟨B0,S0,Z0⟩ from the three roots of Figure 7(a) — the component-
        // wise minimum — which is what rolling *up* to each root requires.)
        let mut superroot_freq: FxHashMap<Vec<usize>, FreqHandle> = FxHashMap::default();
        if cfg.superroots && matches!(alt, AltSource::None) {
            let roots = graph.roots();
            let mut fams: std::collections::BTreeMap<Vec<usize>, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &r in &roots {
                fams.entry(graph.node(r).attr_set()).or_default().push(r);
            }
            // Lone roots scan directly (no sharing to win); each multi-root
            // family is one unit of work.
            let work: Vec<(Vec<usize>, Vec<NodeId>)> =
                fams.into_iter().filter(|(_, fam_roots)| fam_roots.len() >= 2).collect();
            let scan_family = |fam_roots: &[NodeId],
                               scan_threads: usize|
             -> Result<(FreqHandle, Duration), AlgoError> {
                let glb = graph.family_glb(fam_roots).expect("same family");
                let mut sr_span = incognito_obs::trace::span("superroot.scan")
                    .arg("roots", fam_roots.len() as u64);
                if sr_span.is_active() {
                    sr_span.set_arg("glb", crate::trace::spec_label(&glb.parts));
                }
                let scan_start = Instant::now();
                let freq = provider.scan(&glb.to_group_spec()?, scan_threads)?;
                Ok((freq, scan_start.elapsed()))
            };
            let scanned: Vec<Result<(FreqHandle, Duration), AlgoError>> = match &pool {
                // One task per family; each family's scan stays serial —
                // the parallelism is across families. A lone family gets
                // the row-parallel scan instead.
                Some(pool) if work.len() > 1 => {
                    pool.parallel_map(&work, |_, (_, fam_roots)| scan_family(fam_roots, 1))
                }
                _ => work.iter().map(|(_, fam_roots)| scan_family(fam_roots, cfg.threads)).collect(),
            };
            for ((attrs, _), out) in work.into_iter().zip(scanned) {
                let (freq, scan_time) = out?;
                stats.timings.scan += scan_time;
                stats.freq_from_scan += 1;
                stats.table_scans += 1;
                superroot_freq.insert(attrs, freq);
            }
            if incognito_obs::enabled() {
                incognito_obs::gauge_set(
                    "core.superroot.entries",
                    superroot_freq.len() as i64,
                );
                incognito_obs::gauge_set(
                    "core.superroot.bytes",
                    superroot_freq.values().map(FreqHandle::resident_bytes).sum::<u64>() as i64,
                );
            }
        }

        // Frequency-set cache keyed by node id, evicted once every direct
        // generalization of the node has had its status determined.
        let mut cache: FxHashMap<NodeId, FreqHandle> = FxHashMap::default();
        let mut cache_gauges = CacheGauges::default();
        let mut pending_out: Vec<u32> =
            (0..num).map(|id| graph.direct_generalizations(id as NodeId).len() as u32).collect();
        // A node's status becomes determined when it is processed or first
        // marked; that's when its specializations' caches may drain.
        let mut determined = vec![false; num];

        let mut queue: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for r in graph.roots() {
            queue.push(Reverse((graph.node(r).height(), r)));
        }

        // Transitively mark everything reachable from `from` as k-anonymous
        // (generalization property; Example 3.1 marks implied
        // generalizations too).
        let mark_from = |from: NodeId,
                         marked: &mut [bool],
                         processed: &[bool],
                         determined: &mut [bool],
                         pending_out: &mut [u32],
                         cache: &mut FxHashMap<NodeId, FreqHandle>,
                         cache_gauges: &mut CacheGauges,
                         it_stats: &mut IterationStats,
                         sink: &mut dyn FnMut(TraceEvent)| {
            let mut stack: Vec<NodeId> = graph.direct_generalizations(from).to_vec();
            while let Some(y) = stack.pop() {
                if marked[y as usize] {
                    continue;
                }
                marked[y as usize] = true;
                if !processed[y as usize] {
                    it_stats.nodes_marked += 1;
                    sink(TraceEvent::Marked {
                        spec: graph.node(y).parts.clone(),
                        implied_by: graph.node(from).parts.clone(),
                    });
                }
                if !determined[y as usize] {
                    determined[y as usize] = true;
                    for &x in &in_adj[y as usize] {
                        pending_out[x as usize] -= 1;
                        if pending_out[x as usize] == 0 {
                            if let Some(f) = cache.remove(&x) {
                                cache_gauges.on_evict(&f);
                            }
                        }
                    }
                }
                stack.extend_from_slice(graph.direct_generalizations(y));
            }
        };

        while let Some(Reverse((height, first))) = queue.pop() {
            // Wave collection: with a pool, drain every equally-ranked
            // ready candidate so their checks can run concurrently.
            // Candidates of equal height share no lattice edges, so no
            // same-wave check can mark a sibling, change its plan, or
            // evict a cache entry it rolls up from — the wave's plans,
            // verdicts, and counters are exactly the serial engine's
            // (determinism contract, DESIGN.md §8). With threads == 1 a
            // wave is the single popped node: the serial loop verbatim.
            let mut wave: Vec<NodeId> = vec![first];
            if pool.is_some() {
                while let Some(&Reverse((h, id))) = queue.peek() {
                    if h != height {
                        break;
                    }
                    queue.pop();
                    if wave.last() != Some(&id) {
                        wave.push(id); // duplicate entries pop adjacently
                    }
                }
            }
            wave.retain(|&nd| !processed[nd as usize] && !marked[nd as usize]);
            for &nd in &wave {
                processed[nd as usize] = true;
            }

            // Evaluate: plan every node against the wave-start cache, run
            // store-backed plans serially (they mutate the store) and the
            // rest on the pool. Scans inside a multi-node wave stay serial
            // — the parallelism is across nodes; a lone node gets the
            // row-parallel scan instead.
            let scan_threads = if wave.len() > 1 { 1 } else { cfg.threads };
            let results: Vec<Result<Checked, AlgoError>> = {
                let plans = wave
                    .iter()
                    .map(|&nd| {
                        plan_freq(
                            nd,
                            cfg,
                            &graph,
                            &in_adj,
                            &cache,
                            &superroot_freq,
                            cube,
                            is_store,
                            &qi_pos,
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let mut results: Vec<Option<Result<Checked, AlgoError>>> =
                    plans.iter().map(|_| None).collect();
                for ((slot, &nd), plan) in results.iter_mut().zip(&wave).zip(&plans) {
                    if let FreqPlan::Store { spec } = plan {
                        if let AltSource::Store(store) = &mut alt {
                            *slot = Some(eval_store(store, cfg, &graph, nd, spec));
                        }
                    }
                }
                let pending: Vec<usize> =
                    (0..wave.len()).filter(|&i| results[i].is_none()).collect();
                match &pool {
                    Some(pool) if pending.len() > 1 => {
                        let outs = pool.parallel_map(&pending, |_, &i| {
                            eval_plan(&provider, &schema, cfg, &graph, wave[i], &plans[i], scan_threads)
                        });
                        for (&i, out) in pending.iter().zip(outs) {
                            results[i] = Some(out);
                        }
                    }
                    _ => {
                        for &i in &pending {
                            results[i] = Some(eval_plan(
                                &provider,
                                &schema,
                                cfg,
                                &graph,
                                wave[i],
                                &plans[i],
                                scan_threads,
                            ));
                        }
                    }
                }
                results.into_iter().map(|r| r.expect("every wave node evaluated")).collect()
            };

            // Apply phase, strictly serial and in wave (ascending node id)
            // order — the same order the serial heap pops — so marking,
            // pruning, cache seeding, and eviction replay the serial
            // engine's state transitions exactly.
            for (&node, res) in wave.iter().zip(results) {
                let Checked { freq, via, anonymous, scan_time, rollup_time } = res?;
                match via {
                    CheckSource::TableScan => {
                        stats.freq_from_scan += 1;
                        stats.table_scans += 1;
                        stats.timings.scan += scan_time;
                    }
                    _ => {
                        stats.freq_from_rollup += 1;
                        stats.timings.rollup += rollup_time;
                    }
                }
                it_stats.nodes_checked += 1;
                sink(TraceEvent::Checked {
                    spec: graph.node(node).parts.clone(),
                    via,
                    anonymous,
                });

                if anonymous {
                    mark_from(
                        node,
                        &mut marked,
                        &processed,
                        &mut determined,
                        &mut pending_out,
                        &mut cache,
                        &mut cache_gauges,
                        &mut it_stats,
                        sink,
                    );
                } else {
                    alive[node as usize] = false;
                    for &g in graph.direct_generalizations(node) {
                        if !processed[g as usize] && !marked[g as usize] {
                            queue.push(Reverse((graph.node(g).height(), g)));
                        }
                    }
                    // Only failing nodes' frequency sets seed rollups upward —
                    // anonymous nodes' generalizations are marked, not computed.
                    if cfg.rollup && pending_out[node as usize] > 0 {
                        cache_gauges.on_insert(&freq);
                        cache.insert(node, freq);
                    }
                }

                if !determined[node as usize] {
                    determined[node as usize] = true;
                    for &x in &in_adj[node as usize] {
                        pending_out[x as usize] -= 1;
                        if pending_out[x as usize] == 0 {
                            if let Some(f) = cache.remove(&x) {
                                cache_gauges.on_evict(&f);
                            }
                        }
                    }
                }
            }
        }

        it_stats.survivors = alive.iter().filter(|&&a| a).count();
        if i == n {
            final_alive = alive;
        } else {
            let gen_start = Instant::now();
            graph = generate_next(&graph, &alive, cfg.prune);
            stats.timings.candidate_gen += gen_start.elapsed();
        }
        cache_gauges.publish();
        it_stats.wall = iter_start.elapsed();
        sink(TraceEvent::IterationEnd { survivors: it_stats.survivors });
        iter_span.set_arg("checked", it_stats.nodes_checked as u64);
        iter_span.set_arg("marked", it_stats.nodes_marked as u64);
        iter_span.set_arg("survivors", it_stats.survivors as u64);
        iter_span.finish();
        stats.push_iteration(it_stats);
    }
    stats.timings.total = search_start.elapsed();

    let generalizations: Vec<Generalization> = final_alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(id, _)| Generalization { levels: graph.node(id as NodeId).levels() })
        .collect();
    Ok(AnonymizationResult::new(qi, cfg.k, cfg.max_suppress, generalizations, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exhaustive_truth, patients};
    use crate::trace::CheckSource;

    #[test]
    fn patients_2anonymous_sz() {
        // Example 3.1 / Figure 5(a): over ⟨Sex, Zipcode⟩ with k = 2 the
        // anonymous generalizations are ⟨S1,Z0⟩, ⟨S1,Z1⟩, ⟨S1,Z2⟩, ⟨S0,Z2⟩.
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let got: Vec<Vec<u8>> = r.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(got, vec![vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 2]]);
        assert_eq!(r.minimal_height(), Some(1));
    }

    #[test]
    fn patients_full_qi_matches_exhaustive_truth() {
        let t = patients();
        for k in [1, 2, 3, 6, 7] {
            let cfg = Config::new(k);
            let r = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(got, exhaustive_truth(&t, &[0, 1, 2], &cfg), "k={k}");
        }
    }

    #[test]
    fn figure5a_search_narrative() {
        // The ⟨Sex, Zipcode⟩ iteration of Example 3.1: ⟨S0,Z0⟩ fails, its
        // generalizations ⟨S1,Z0⟩ and ⟨S0,Z1⟩ are checked via rollup;
        // ⟨S1,Z0⟩ passes (marking ⟨S1,Z1⟩, ⟨S1,Z2⟩); ⟨S0,Z1⟩ fails; ⟨S0,Z2⟩
        // passes. Exactly 4 checks and 2 marks in iteration 2.
        let t = patients();
        let (_r, events) = incognito_traced(&t, &[1, 2], &Config::new(2)).unwrap();
        let iter2_start = events
            .iter()
            .position(|e| matches!(e, TraceEvent::IterationStart { arity: 2, .. }))
            .unwrap();
        let iter2 = &events[iter2_start..];
        let checks: Vec<_> = iter2
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Checked { spec, anonymous, via } => {
                    Some((spec.clone(), *anonymous, *via))
                }
                _ => None,
            })
            .collect();
        assert_eq!(checks.len(), 4);
        assert_eq!(checks[0].0, vec![(1, 0), (2, 0)]);
        assert!(!checks[0].1);
        assert_eq!(checks[0].2, CheckSource::TableScan);
        // All later checks in the iteration derive from rollup.
        assert!(checks[1..].iter().all(|c| c.2 == CheckSource::Rollup));
        let verdicts: std::collections::HashMap<_, _> =
            checks.iter().map(|(s, a, _)| (s.clone(), *a)).collect();
        assert!(verdicts[&vec![(1, 1), (2, 0)]]);
        assert!(!verdicts[&vec![(1, 0), (2, 1)]]);
        assert!(verdicts[&vec![(1, 0), (2, 2)]]);
        let marks: Vec<_> = iter2
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Marked { spec, .. } => Some(spec.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(marks.len(), 2);
        assert!(marks.contains(&vec![(1, 1), (2, 1)]));
        assert!(marks.contains(&vec![(1, 1), (2, 2)]));
    }

    #[test]
    fn superroots_and_prune_variants_agree_with_basic() {
        let t = patients();
        let base = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        for cfg in [
            Config::new(2).with_superroots(true),
            Config::new(2).with_prune(incognito_lattice::PruneStrategy::HashSet),
            Config::new(2).with_rollup(false),
            Config::new(2).with_superroots(true).with_rollup(false),
        ] {
            let r = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            assert_eq!(r.generalizations(), base.generalizations(), "{cfg:?}");
        }
    }

    #[test]
    fn suppression_threshold_expands_the_result_set() {
        let t = patients();
        // Without suppression ⟨B0,S0,Z0⟩-adjacent nodes fail; allowing 2
        // outliers makes strictly more generalizations pass.
        let strict = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let relaxed = incognito(&t, &[1, 2], &Config::new(2).with_suppression(2)).unwrap();
        assert!(relaxed.len() > strict.len());
        for g in strict.generalizations() {
            assert!(relaxed.contains(&g.levels));
        }
        // ⟨S0,Z0⟩ has two singleton groups — suppressible within budget 2.
        assert!(relaxed.contains(&[0, 0]));
        assert!(!strict.contains(&[0, 0]));
    }

    #[test]
    fn k1_accepts_everything() {
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(1)).unwrap();
        assert_eq!(r.len(), 6); // entire ⟨Sex, Zipcode⟩ lattice
        // Only the roots are ever checked (S0 and Z0 in iteration 1,
        // ⟨S0, Z0⟩ in iteration 2); everything above them is marked.
        assert_eq!(r.stats().nodes_checked(), 3);
        assert_eq!(r.stats().nodes_marked(), 3 + 5);
        assert_eq!(r.stats().table_scans, 3);
    }

    #[test]
    fn unsatisfiable_k_returns_empty() {
        let t = patients();
        let r = incognito(&t, &[0, 1, 2], &Config::new(7)).unwrap();
        assert!(r.is_empty()); // only 6 tuples exist
        let r6 = incognito(&t, &[0, 1, 2], &Config::new(6)).unwrap();
        assert_eq!(
            r6.generalizations().iter().map(|g| g.levels.clone()).collect::<Vec<_>>(),
            vec![vec![1, 1, 2]] // full suppression only
        );
    }

    #[test]
    fn single_attribute_qi() {
        let t = patients();
        let r = incognito(&t, &[2], &Config::new(2)).unwrap();
        // Zipcode alone: Z0 has singletons? Counts: 53715×1? rows:
        // 53715,53715,53703,53703,53706,53706 → Z0 counts (2,2,2) → 2-anon.
        assert!(r.contains(&[0]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.stats().iterations.len(), 1);
    }

    #[test]
    fn qi_order_is_canonicalized() {
        let t = patients();
        let a = incognito(&t, &[2, 1, 0], &Config::new(2)).unwrap();
        let b = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert_eq!(a.qi(), b.qi());
        assert_eq!(a.generalizations(), b.generalizations());
    }

    #[test]
    fn validation_errors() {
        let t = patients();
        assert!(matches!(
            incognito(&t, &[], &Config::new(2)),
            Err(AlgoError::EmptyQuasiIdentifier)
        ));
        assert!(matches!(
            incognito(&t, &[0, 0], &Config::new(2)),
            Err(AlgoError::DuplicateQiAttribute(0))
        ));
        assert!(matches!(
            incognito(&t, &[0], &Config::new(0)),
            Err(AlgoError::InvalidK(0))
        ));
        assert!(matches!(incognito(&t, &[9], &Config::new(2)), Err(AlgoError::Table(_))));
    }

    #[test]
    fn materialize_minimal_view() {
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let min = r.minimal_by_height()[0];
        assert_eq!(min.levels, vec![1, 0]);
        let (view, suppressed) = r.materialize(&t, min).unwrap();
        assert_eq!(suppressed, 0);
        assert_eq!(view.num_rows(), 6);
        assert_eq!(view.label(0, 1), "*"); // Sex generalized away
        assert_eq!(view.label(0, 2), "53715"); // Zipcode intact
        assert_eq!(view.label(0, 0), "1/21/76"); // non-QI Birthdate untouched
        assert_eq!(view.label(0, 3), "Flu"); // sensitive attribute untouched
    }
}
