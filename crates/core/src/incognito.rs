//! Basic and Super-roots Incognito (Figure 8 and §3.3.1 of the paper).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use incognito_table::fxhash::FxHashMap;
use incognito_table::{FrequencySet, Table};
use incognito_lattice::{generate_next, CandidateGraph, NodeId};

use crate::error::validate_qi;
use crate::trace::{CheckSource, TraceEvent};
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Run Incognito and return **all** k-anonymous full-domain generalizations
/// of the quasi-identifier `qi` (soundness and completeness, §3.2).
///
/// `cfg` selects Basic vs Super-roots behaviour, the prune structure, the
/// suppression allowance, and the rollup ablation switch.
///
/// ```
/// # use incognito_core::{incognito, Config};
/// # use incognito_hierarchy::builders;
/// # use incognito_table::{Attribute, Schema, Table};
/// # let schema = Schema::new(vec![
/// #     Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
/// #     Attribute::new("Zipcode",
/// #         builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2).unwrap()),
/// # ]).unwrap();
/// # let mut t = Table::empty(schema);
/// # for row in [["Male", "53715"], ["Female", "53715"], ["Male", "53703"],
/// #             ["Male", "53703"], ["Female", "53706"], ["Female", "53706"]] {
/// #     t.push_row(&row).unwrap();
/// # }
/// let result = incognito(&t, &[0, 1], &Config::new(2)).unwrap();
/// assert!(result.contains(&[1, 0])); // ⟨S1, Z0⟩ is 2-anonymous
/// assert!(!result.contains(&[0, 0]));
/// ```
pub fn incognito(table: &Table, qi: &[usize], cfg: &Config) -> Result<AnonymizationResult, AlgoError> {
    incognito_impl(table, qi, cfg, &mut |_| {}, AltSource::None)
}

/// Like [`incognito`], but also returns the full [`TraceEvent`] log.
pub fn incognito_traced(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<(AnonymizationResult, Vec<TraceEvent>), AlgoError> {
    let mut events = Vec::new();
    let result = incognito_impl(table, qi, cfg, &mut |e| events.push(e), AltSource::None)?;
    Ok((result, events))
}

/// Zero-generalization frequency sets keyed by QI-position bitmask
/// (bit `j` set ⇔ the `j`-th attribute of the sorted QI is present).
pub(crate) type ZeroCube = FxHashMap<u32, FrequencySet>;

/// An alternative source of frequency sets consulted before scanning the
/// base table: Cube Incognito's zero-generalization cube, or a
/// [`crate::materialize::FreqStore`] (§7's strategic materialization).
pub(crate) enum AltSource<'a, 't> {
    /// No alternative: roots scan the table (Basic / Super-roots).
    None,
    /// Roll root frequency sets up from the zero-generalization cube.
    Cube(&'a ZeroCube),
    /// Answer from a materialized frequency-set store.
    Store(&'a mut crate::materialize::FreqStore<'t>),
}

/// Shared engine behind Basic, Super-roots, Cube, and store-backed
/// Incognito.
pub(crate) fn incognito_impl(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
    sink: &mut dyn FnMut(TraceEvent),
    mut alt: AltSource<'_, '_>,
) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let n = qi.len();
    // Position of each schema attribute within the sorted QI (for cube masks).
    let qi_pos: FxHashMap<usize, usize> =
        qi.iter().enumerate().map(|(p, &a)| (a, p)).collect();

    let search_start = Instant::now();
    let algo = match (&alt, cfg.superroots) {
        (AltSource::None, false) => "basic",
        (AltSource::None, true) => "superroots",
        (AltSource::Cube(_), _) => "cube",
        (AltSource::Store(_), _) => "store",
    };
    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", algo)
        .arg("k", cfg.k)
        .arg("qi_arity", n as u64);
    let mut stats = SearchStats::default();
    let mut graph = CandidateGraph::initial(&schema, &qi);
    let mut final_alive: Vec<bool> = Vec::new();

    for i in 1..=n {
        let iter_start = Instant::now();
        let mut iter_span = incognito_obs::trace::span("iteration")
            .arg("arity", i as u64)
            .arg("candidates", graph.num_nodes() as u64)
            .arg("edges", graph.num_edges() as u64);
        sink(TraceEvent::IterationStart {
            arity: i,
            candidates: graph.num_nodes(),
            edges: graph.num_edges(),
        });
        let num = graph.num_nodes();
        let mut alive = vec![true; num];
        let mut marked = vec![false; num];
        let mut processed = vec![false; num];
        let mut it_stats = IterationStats {
            arity: i,
            candidates: num,
            edges: graph.num_edges(),
            ..IterationStats::default()
        };

        // In-adjacency (direct specializations), for rollup sources and
        // frequency-set cache eviction.
        let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        for &(s, e) in graph.edges() {
            in_adj[e as usize].push(s);
        }

        // Super-roots (§3.3.1): scan once per family at the greatest lower
        // bound of that family's roots, then roll up to each root. (The
        // paper's prose says "least upper bound" but its example computes
        // ⟨B0,S0,Z0⟩ from the three roots of Figure 7(a) — the component-
        // wise minimum — which is what rolling *up* to each root requires.)
        let mut superroot_freq: FxHashMap<Vec<usize>, FrequencySet> = FxHashMap::default();
        if cfg.superroots && matches!(alt, AltSource::None) {
            let roots = graph.roots();
            let mut fams: std::collections::BTreeMap<Vec<usize>, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for &r in &roots {
                fams.entry(graph.node(r).attr_set()).or_default().push(r);
            }
            for (attrs, fam_roots) in fams {
                if fam_roots.len() < 2 {
                    continue; // a lone root scans directly; no sharing to win
                }
                let glb = graph.family_glb(&fam_roots).expect("same family");
                let mut sr_span = incognito_obs::trace::span("superroot.scan")
                    .arg("roots", fam_roots.len() as u64);
                if sr_span.is_active() {
                    sr_span.set_arg("glb", crate::trace::spec_label(&glb.parts));
                }
                let scan_start = Instant::now();
                let freq = cfg.scan(table, &glb.to_group_spec()?)?;
                stats.timings.scan += scan_start.elapsed();
                stats.freq_from_scan += 1;
                stats.table_scans += 1;
                superroot_freq.insert(attrs, freq);
            }
        }

        // Frequency-set cache keyed by node id, evicted once every direct
        // generalization of the node has had its status determined.
        let mut cache: FxHashMap<NodeId, FrequencySet> = FxHashMap::default();
        let mut pending_out: Vec<u32> =
            (0..num).map(|id| graph.direct_generalizations(id as NodeId).len() as u32).collect();
        // A node's status becomes determined when it is processed or first
        // marked; that's when its specializations' caches may drain.
        let mut determined = vec![false; num];

        let mut queue: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for r in graph.roots() {
            queue.push(Reverse((graph.node(r).height(), r)));
        }

        // Transitively mark everything reachable from `from` as k-anonymous
        // (generalization property; Example 3.1 marks implied
        // generalizations too).
        let mark_from = |from: NodeId,
                         marked: &mut [bool],
                         processed: &[bool],
                         determined: &mut [bool],
                         pending_out: &mut [u32],
                         cache: &mut FxHashMap<NodeId, FrequencySet>,
                         it_stats: &mut IterationStats,
                         sink: &mut dyn FnMut(TraceEvent)| {
            let mut stack: Vec<NodeId> = graph.direct_generalizations(from).to_vec();
            while let Some(y) = stack.pop() {
                if marked[y as usize] {
                    continue;
                }
                marked[y as usize] = true;
                if !processed[y as usize] {
                    it_stats.nodes_marked += 1;
                    sink(TraceEvent::Marked {
                        spec: graph.node(y).parts.clone(),
                        implied_by: graph.node(from).parts.clone(),
                    });
                }
                if !determined[y as usize] {
                    determined[y as usize] = true;
                    for &x in &in_adj[y as usize] {
                        pending_out[x as usize] -= 1;
                        if pending_out[x as usize] == 0 {
                            cache.remove(&x);
                        }
                    }
                }
                stack.extend_from_slice(graph.direct_generalizations(y));
            }
        };

        while let Some(Reverse((_h, node))) = queue.pop() {
            if processed[node as usize] || marked[node as usize] {
                continue;
            }
            processed[node as usize] = true;
            let mut check_span = incognito_obs::trace::span("check");
            if check_span.is_active() {
                check_span.set_arg("node", crate::trace::spec_label(&graph.node(node).parts));
            }
            let spec = graph.node(node).to_group_spec()?;

            // Obtain the node's frequency set: rollup from a cached direct
            // specialization where possible, else super-root / cube / scan.
            let (freq, via) = if cfg.rollup {
                let parent = in_adj[node as usize]
                    .iter()
                    .find_map(|&p| cache.get(&p).map(|f| (p, f)));
                if let Some((_pid, pfreq)) = parent {
                    let target: Vec<u8> = graph.node(node).levels();
                    stats.freq_from_rollup += 1;
                    let t0 = Instant::now();
                    let f = pfreq.rollup(&schema, &target)?;
                    stats.timings.rollup += t0.elapsed();
                    (f, CheckSource::Rollup)
                } else {
                    match &mut alt {
                        AltSource::Cube(cube) => {
                            let mask = graph.node(node).parts.iter().fold(0u32, |m, &(a, _)| {
                                m | (1 << qi_pos[&a])
                            });
                            let zero = cube.get(&mask).expect("cube covers every QI subset");
                            let target: Vec<u8> = graph.node(node).levels();
                            stats.freq_from_rollup += 1;
                            let t0 = Instant::now();
                            let f = zero.rollup(&schema, &target)?;
                            stats.timings.rollup += t0.elapsed();
                            (f, CheckSource::Cube)
                        }
                        AltSource::Store(store) => {
                            stats.freq_from_rollup += 1;
                            let t0 = Instant::now();
                            let f = store.frequency_set(&spec)?;
                            stats.timings.rollup += t0.elapsed();
                            (f, CheckSource::Cube)
                        }
                        AltSource::None => {
                            if let Some(sr) = superroot_freq.get(&graph.node(node).attr_set()) {
                                let target: Vec<u8> = graph.node(node).levels();
                                stats.freq_from_rollup += 1;
                                let t0 = Instant::now();
                                let f = sr.rollup(&schema, &target)?;
                                stats.timings.rollup += t0.elapsed();
                                (f, CheckSource::SuperRoot)
                            } else {
                                stats.freq_from_scan += 1;
                                stats.table_scans += 1;
                                let t0 = Instant::now();
                                let f = cfg.scan(table, &spec)?;
                                stats.timings.scan += t0.elapsed();
                                (f, CheckSource::TableScan)
                            }
                        }
                    }
                }
            } else {
                stats.freq_from_scan += 1;
                stats.table_scans += 1;
                let t0 = Instant::now();
                let f = cfg.scan(table, &spec)?;
                stats.timings.scan += t0.elapsed();
                (f, CheckSource::TableScan)
            };

            let anonymous = cfg.passes(&freq);
            check_span.set_arg("via", via.as_str());
            check_span.set_arg("anonymous", anonymous);
            it_stats.nodes_checked += 1;
            sink(TraceEvent::Checked {
                spec: graph.node(node).parts.clone(),
                via,
                anonymous,
            });

            if anonymous {
                mark_from(
                    node,
                    &mut marked,
                    &processed,
                    &mut determined,
                    &mut pending_out,
                    &mut cache,
                    &mut it_stats,
                    sink,
                );
            } else {
                alive[node as usize] = false;
                for &g in graph.direct_generalizations(node) {
                    if !processed[g as usize] && !marked[g as usize] {
                        queue.push(Reverse((graph.node(g).height(), g)));
                    }
                }
                // Only failing nodes' frequency sets seed rollups upward —
                // anonymous nodes' generalizations are marked, not computed.
                if cfg.rollup && pending_out[node as usize] > 0 {
                    cache.insert(node, freq);
                }
            }

            if !determined[node as usize] {
                determined[node as usize] = true;
                for &x in &in_adj[node as usize] {
                    pending_out[x as usize] -= 1;
                    if pending_out[x as usize] == 0 {
                        cache.remove(&x);
                    }
                }
            }
        }

        it_stats.survivors = alive.iter().filter(|&&a| a).count();
        if i == n {
            final_alive = alive;
        } else {
            let gen_start = Instant::now();
            graph = generate_next(&graph, &alive, cfg.prune);
            stats.timings.candidate_gen += gen_start.elapsed();
        }
        it_stats.wall = iter_start.elapsed();
        sink(TraceEvent::IterationEnd { survivors: it_stats.survivors });
        iter_span.set_arg("checked", it_stats.nodes_checked as u64);
        iter_span.set_arg("marked", it_stats.nodes_marked as u64);
        iter_span.set_arg("survivors", it_stats.survivors as u64);
        iter_span.finish();
        stats.push_iteration(it_stats);
    }
    stats.timings.total = search_start.elapsed();

    let generalizations: Vec<Generalization> = final_alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(id, _)| Generalization { levels: graph.node(id as NodeId).levels() })
        .collect();
    Ok(AnonymizationResult::new(qi, cfg.k, cfg.max_suppress, generalizations, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exhaustive_truth, patients};
    use crate::trace::CheckSource;

    #[test]
    fn patients_2anonymous_sz() {
        // Example 3.1 / Figure 5(a): over ⟨Sex, Zipcode⟩ with k = 2 the
        // anonymous generalizations are ⟨S1,Z0⟩, ⟨S1,Z1⟩, ⟨S1,Z2⟩, ⟨S0,Z2⟩.
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let got: Vec<Vec<u8>> = r.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(got, vec![vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 2]]);
        assert_eq!(r.minimal_height(), Some(1));
    }

    #[test]
    fn patients_full_qi_matches_exhaustive_truth() {
        let t = patients();
        for k in [1, 2, 3, 6, 7] {
            let cfg = Config::new(k);
            let r = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            let got: Vec<Vec<u8>> =
                r.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(got, exhaustive_truth(&t, &[0, 1, 2], &cfg), "k={k}");
        }
    }

    #[test]
    fn figure5a_search_narrative() {
        // The ⟨Sex, Zipcode⟩ iteration of Example 3.1: ⟨S0,Z0⟩ fails, its
        // generalizations ⟨S1,Z0⟩ and ⟨S0,Z1⟩ are checked via rollup;
        // ⟨S1,Z0⟩ passes (marking ⟨S1,Z1⟩, ⟨S1,Z2⟩); ⟨S0,Z1⟩ fails; ⟨S0,Z2⟩
        // passes. Exactly 4 checks and 2 marks in iteration 2.
        let t = patients();
        let (_r, events) = incognito_traced(&t, &[1, 2], &Config::new(2)).unwrap();
        let iter2_start = events
            .iter()
            .position(|e| matches!(e, TraceEvent::IterationStart { arity: 2, .. }))
            .unwrap();
        let iter2 = &events[iter2_start..];
        let checks: Vec<_> = iter2
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Checked { spec, anonymous, via } => {
                    Some((spec.clone(), *anonymous, *via))
                }
                _ => None,
            })
            .collect();
        assert_eq!(checks.len(), 4);
        assert_eq!(checks[0].0, vec![(1, 0), (2, 0)]);
        assert!(!checks[0].1);
        assert_eq!(checks[0].2, CheckSource::TableScan);
        // All later checks in the iteration derive from rollup.
        assert!(checks[1..].iter().all(|c| c.2 == CheckSource::Rollup));
        let verdicts: std::collections::HashMap<_, _> =
            checks.iter().map(|(s, a, _)| (s.clone(), *a)).collect();
        assert!(verdicts[&vec![(1, 1), (2, 0)]]);
        assert!(!verdicts[&vec![(1, 0), (2, 1)]]);
        assert!(verdicts[&vec![(1, 0), (2, 2)]]);
        let marks: Vec<_> = iter2
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Marked { spec, .. } => Some(spec.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(marks.len(), 2);
        assert!(marks.contains(&vec![(1, 1), (2, 1)]));
        assert!(marks.contains(&vec![(1, 1), (2, 2)]));
    }

    #[test]
    fn superroots_and_prune_variants_agree_with_basic() {
        let t = patients();
        let base = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        for cfg in [
            Config::new(2).with_superroots(true),
            Config::new(2).with_prune(incognito_lattice::PruneStrategy::HashSet),
            Config::new(2).with_rollup(false),
            Config::new(2).with_superroots(true).with_rollup(false),
        ] {
            let r = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            assert_eq!(r.generalizations(), base.generalizations(), "{cfg:?}");
        }
    }

    #[test]
    fn suppression_threshold_expands_the_result_set() {
        let t = patients();
        // Without suppression ⟨B0,S0,Z0⟩-adjacent nodes fail; allowing 2
        // outliers makes strictly more generalizations pass.
        let strict = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let relaxed = incognito(&t, &[1, 2], &Config::new(2).with_suppression(2)).unwrap();
        assert!(relaxed.len() > strict.len());
        for g in strict.generalizations() {
            assert!(relaxed.contains(&g.levels));
        }
        // ⟨S0,Z0⟩ has two singleton groups — suppressible within budget 2.
        assert!(relaxed.contains(&[0, 0]));
        assert!(!strict.contains(&[0, 0]));
    }

    #[test]
    fn k1_accepts_everything() {
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(1)).unwrap();
        assert_eq!(r.len(), 6); // entire ⟨Sex, Zipcode⟩ lattice
        // Only the roots are ever checked (S0 and Z0 in iteration 1,
        // ⟨S0, Z0⟩ in iteration 2); everything above them is marked.
        assert_eq!(r.stats().nodes_checked(), 3);
        assert_eq!(r.stats().nodes_marked(), 3 + 5);
        assert_eq!(r.stats().table_scans, 3);
    }

    #[test]
    fn unsatisfiable_k_returns_empty() {
        let t = patients();
        let r = incognito(&t, &[0, 1, 2], &Config::new(7)).unwrap();
        assert!(r.is_empty()); // only 6 tuples exist
        let r6 = incognito(&t, &[0, 1, 2], &Config::new(6)).unwrap();
        assert_eq!(
            r6.generalizations().iter().map(|g| g.levels.clone()).collect::<Vec<_>>(),
            vec![vec![1, 1, 2]] // full suppression only
        );
    }

    #[test]
    fn single_attribute_qi() {
        let t = patients();
        let r = incognito(&t, &[2], &Config::new(2)).unwrap();
        // Zipcode alone: Z0 has singletons? Counts: 53715×1? rows:
        // 53715,53715,53703,53703,53706,53706 → Z0 counts (2,2,2) → 2-anon.
        assert!(r.contains(&[0]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.stats().iterations.len(), 1);
    }

    #[test]
    fn qi_order_is_canonicalized() {
        let t = patients();
        let a = incognito(&t, &[2, 1, 0], &Config::new(2)).unwrap();
        let b = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert_eq!(a.qi(), b.qi());
        assert_eq!(a.generalizations(), b.generalizations());
    }

    #[test]
    fn validation_errors() {
        let t = patients();
        assert!(matches!(
            incognito(&t, &[], &Config::new(2)),
            Err(AlgoError::EmptyQuasiIdentifier)
        ));
        assert!(matches!(
            incognito(&t, &[0, 0], &Config::new(2)),
            Err(AlgoError::DuplicateQiAttribute(0))
        ));
        assert!(matches!(
            incognito(&t, &[0], &Config::new(0)),
            Err(AlgoError::InvalidK(0))
        ));
        assert!(matches!(incognito(&t, &[9], &Config::new(2)), Err(AlgoError::Table(_))));
    }

    #[test]
    fn materialize_minimal_view() {
        let t = patients();
        let r = incognito(&t, &[1, 2], &Config::new(2)).unwrap();
        let min = r.minimal_by_height()[0];
        assert_eq!(min.levels, vec![1, 0]);
        let (view, suppressed) = r.materialize(&t, min).unwrap();
        assert_eq!(suppressed, 0);
        assert_eq!(view.num_rows(), 6);
        assert_eq!(view.label(0, 1), "*"); // Sex generalized away
        assert_eq!(view.label(0, 2), "53715"); // Zipcode intact
        assert_eq!(view.label(0, 0), "1/21/76"); // non-QI Birthdate untouched
        assert_eq!(view.label(0, 3), "Flu"); // sensitive attribute untouched
    }
}
