use std::time::Duration;

/// Counters describing one subset-size iteration of a search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterationStats {
    /// Subset size `i` of this iteration (1-based).
    pub arity: usize,
    /// Candidate nodes in `Cᵢ`.
    pub candidates: usize,
    /// Edges in `Eᵢ`.
    pub edges: usize,
    /// Nodes whose k-anonymity was determined by computing a frequency set.
    pub nodes_checked: usize,
    /// Nodes skipped because the generalization property marked them.
    pub nodes_marked: usize,
    /// Nodes found k-anonymous in this iteration (size of `Sᵢ`).
    pub survivors: usize,
    /// Wall-clock spent in this iteration (checking plus, for Incognito,
    /// generating the next candidate graph).
    pub wall: Duration,
}

/// Wall-clock breakdown of a completed search by phase. The phases are not
/// exhaustive (bookkeeping between them is unattributed), so the parts sum
/// to less than `total`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// End-to-end wall-clock of the search itself. For Cube Incognito this
    /// excludes the cube pre-computation, which is reported separately in
    /// `cube_build` (matching §4.2.3's build/anonymization split).
    pub total: Duration,
    /// Wall-clock spent pre-computing the zero-generalization cube
    /// (Cube Incognito only; the Figure 12 "cube build time" bar).
    pub cube_build: Option<Duration>,
    /// Time spent computing frequency sets by scanning the base table.
    pub scan: Duration,
    /// Time spent deriving frequency sets without touching the base table
    /// (rollups and cube projections).
    pub rollup: Duration,
    /// Time spent generating candidate graphs (or building the full
    /// lattice, for the baselines).
    pub candidate_gen: Duration,
}

/// Aggregate search statistics — the quantities behind §4.2 of the paper
/// (nodes searched, base-table scans saved by super-roots, frequency sets
/// answered by rollup instead of scans), plus the per-phase wall-clock
/// breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Per-iteration breakdown (one entry per subset size for Incognito;
    /// a single entry for the whole-lattice baselines).
    pub iterations: Vec<IterationStats>,
    /// Frequency sets computed by scanning the base table.
    pub freq_from_scan: usize,
    /// Frequency sets computed by rolling up another frequency set.
    pub freq_from_rollup: usize,
    /// Frequency sets computed by projecting a wider frequency set
    /// (Cube Incognito's zero-generalization pre-computation).
    pub freq_from_projection: usize,
    /// Full passes over the base table.
    pub table_scans: usize,
    /// Per-phase wall-clock breakdown.
    pub timings: PhaseTimings,
}

impl SearchStats {
    /// Total nodes whose k-anonymity status was determined by computing a
    /// frequency set — the "nodes searched" column of the §4.2.1 table.
    pub fn nodes_checked(&self) -> usize {
        self.iterations.iter().map(|i| i.nodes_checked).sum()
    }

    /// Total nodes skipped via the generalization property.
    pub fn nodes_marked(&self) -> usize {
        self.iterations.iter().map(|i| i.nodes_marked).sum()
    }

    /// Total candidate nodes generated across iterations.
    pub fn candidates(&self) -> usize {
        self.iterations.iter().map(|i| i.candidates).sum()
    }

    /// Record an iteration.
    pub(crate) fn push_iteration(&mut self, it: IterationStats) {
        self.iterations.push(it);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_iterations() {
        let mut s = SearchStats::default();
        s.push_iteration(IterationStats {
            arity: 1,
            candidates: 5,
            edges: 3,
            nodes_checked: 4,
            nodes_marked: 1,
            survivors: 5,
            ..IterationStats::default()
        });
        s.push_iteration(IterationStats {
            arity: 2,
            candidates: 8,
            edges: 7,
            nodes_checked: 6,
            nodes_marked: 2,
            survivors: 4,
            ..IterationStats::default()
        });
        assert_eq!(s.nodes_checked(), 10);
        assert_eq!(s.nodes_marked(), 3);
        assert_eq!(s.candidates(), 13);
    }

    #[test]
    fn cube_build_lives_in_timings() {
        let mut s = SearchStats::default();
        s.timings.cube_build = Some(Duration::from_millis(7));
        assert_eq!(s.timings.cube_build, Some(Duration::from_millis(7)));
    }
}
