//! Samarati's binary search on generalization height (§2.2, \[14\]).
//!
//! The algorithm exploits the observation that if no generalization of
//! height `h` satisfies k-anonymity then no generalization of height
//! `h' < h` does either (heights here are w.r.t. the height-minimal
//! definition of §2.1). It binary-searches the height range of the full-QI
//! lattice, at each probe checking *every* node of that height against the
//! table, and returns the k-anonymous generalization(s) at the lowest
//! satisfiable height.
//!
//! The paper notes Samarati's distance-vector-matrix implementation was
//! prohibitively expensive on large tables, so — like the paper — we check
//! each node with a group-by over the star schema (a frequency-set scan).

use incognito_table::Table;
use incognito_lattice::CandidateGraph;

use crate::error::validate_qi;
use crate::provider::FreqProvider;
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Run Samarati's binary search. The result holds every k-anonymous node at
/// the minimal satisfiable height — each is minimal in the §2.1 sense; the
/// original algorithm returns an arbitrary one of them.
///
/// Returns [`AlgoError::NoSolution`] if even the lattice top fails (possible
/// only when a suppression allowance is configured but insufficient, or
/// `k > |T|`).
pub fn samarati_binary_search(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", "binary_search")
        .arg("k", cfg.k)
        .arg("qi_arity", qi.len() as u64);
    let search_start = std::time::Instant::now();
    let lattice = CandidateGraph::full_lattice(&schema, &qi);
    let lattice_build = search_start.elapsed();

    let max_height: u32 =
        qi.iter().map(|&a| schema.hierarchy(a).height() as u32).sum();
    // Group node ids by height once.
    let mut by_height: Vec<Vec<u32>> = vec![Vec::new(); max_height as usize + 1];
    for (id, node) in lattice.nodes().iter().enumerate() {
        by_height[node.height() as usize].push(id as u32);
    }

    let mut stats = SearchStats::default();
    stats.timings.candidate_gen = lattice_build;
    let mut it_stats = IterationStats {
        arity: qi.len(),
        candidates: lattice.num_nodes(),
        edges: lattice.num_edges(),
        ..IterationStats::default()
    };

    // Probe one height: collect the k-anonymous nodes at that height.
    let provider = FreqProvider::new(table, cfg);
    let probe = |h: u32, stats: &mut SearchStats, it: &mut IterationStats| -> Result<Vec<u32>, AlgoError> {
        let mut probe_span = incognito_obs::trace::span("probe")
            .arg("height", h as u64)
            .arg("nodes", by_height[h as usize].len() as u64);
        let mut hits = Vec::new();
        for &id in &by_height[h as usize] {
            let mut check_span = incognito_obs::trace::span("check");
            if check_span.is_active() {
                check_span.set_arg("node", crate::trace::spec_label(&lattice.node(id).parts));
            }
            let t0 = std::time::Instant::now();
            let freq = provider.scan(&lattice.node(id).to_group_spec()?, cfg.threads)?;
            stats.timings.scan += t0.elapsed();
            stats.freq_from_scan += 1;
            stats.table_scans += 1;
            it.nodes_checked += 1;
            let anonymous = cfg.passes_handle(&freq)?;
            check_span.set_arg("anonymous", anonymous);
            if anonymous {
                hits.push(id);
            }
        }
        probe_span.set_arg("hits", hits.len() as u64);
        Ok(hits)
    };

    // Binary search for the lowest height with a satisfying node.
    let (mut lo, mut hi) = (0u32, max_height);
    let mut best: Option<(u32, Vec<u32>)> = None;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let hits = probe(mid, &mut stats, &mut it_stats)?;
        if hits.is_empty() {
            lo = mid + 1;
        } else {
            best = Some((mid, hits));
            hi = mid;
        }
    }
    // `lo == hi`: the candidate minimal height. Re-probe if the loop never
    // landed exactly there (or never ran, when max_height == 0).
    let hits = match best {
        Some((h, hits)) if h == lo => hits,
        _ => probe(lo, &mut stats, &mut it_stats)?,
    };
    if hits.is_empty() {
        return Err(AlgoError::NoSolution);
    }

    it_stats.survivors = hits.len();
    it_stats.wall = search_start.elapsed();
    stats.timings.total = search_start.elapsed();
    stats.push_iteration(it_stats);
    let generalizations: Vec<Generalization> = hits
        .into_iter()
        .map(|id| Generalization { levels: lattice.node(id).levels() })
        .collect();
    Ok(AnonymizationResult::new(qi, cfg.k, cfg.max_suppress, generalizations, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{exhaustive_truth, patients};

    #[test]
    fn finds_the_minimal_height_set() {
        let t = patients();
        let cfg = Config::new(2);
        let r = samarati_binary_search(&t, &[1, 2], &cfg).unwrap();
        // Truth: anonymous gens are {⟨0,2⟩, ⟨1,0⟩, ⟨1,1⟩, ⟨1,2⟩}; minimal
        // height is 1, achieved only by ⟨1,0⟩.
        assert_eq!(r.minimal_height(), Some(1));
        let got: Vec<Vec<u8>> = r.generalizations().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(got, vec![vec![1, 0]]);
    }

    #[test]
    fn height_is_minimal_across_truth() {
        let t = patients();
        for k in [1, 2, 3, 6] {
            let cfg = Config::new(k);
            let truth = exhaustive_truth(&t, &[0, 1, 2], &cfg);
            let min_truth = truth
                .iter()
                .map(|ls| ls.iter().map(|&l| l as u32).sum::<u32>())
                .min()
                .unwrap();
            let r = samarati_binary_search(&t, &[0, 1, 2], &cfg).unwrap();
            assert_eq!(r.minimal_height(), Some(min_truth), "k={k}");
            // Every returned generalization is genuinely k-anonymous.
            for g in r.generalizations() {
                assert!(truth.contains(&g.levels));
                assert_eq!(g.height(), min_truth);
            }
        }
    }

    #[test]
    fn k1_returns_the_bottom_node() {
        let t = patients();
        let r = samarati_binary_search(&t, &[0, 1, 2], &Config::new(1)).unwrap();
        assert_eq!(r.generalizations().len(), 1);
        assert_eq!(r.generalizations()[0].levels, vec![0, 0, 0]);
    }

    #[test]
    fn unsatisfiable_reports_no_solution() {
        let t = patients();
        assert!(matches!(
            samarati_binary_search(&t, &[0, 1, 2], &Config::new(7)),
            Err(AlgoError::NoSolution)
        ));
    }

    #[test]
    fn suppression_lowers_the_minimal_height() {
        let t = patients();
        let strict = samarati_binary_search(&t, &[1, 2], &Config::new(2)).unwrap();
        let relaxed =
            samarati_binary_search(&t, &[1, 2], &Config::new(2).with_suppression(2)).unwrap();
        assert!(relaxed.minimal_height().unwrap() < strict.minimal_height().unwrap());
        assert_eq!(relaxed.minimal_height(), Some(0));
    }
}
