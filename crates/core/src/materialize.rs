//! Strategic materialization of frequency sets — the paper's §7 future-work
//! item: *"the performance of Incognito can be enhanced even more by
//! strategically materializing portions of the data cube, including count
//! aggregates at various points in the dimension hierarchies"* (citing
//! Harinarayan/Rajaraman/Ullman's view-selection work \[9\]).
//!
//! A [`FreqStore`] is a persistent cache of frequency sets keyed by
//! [`GroupSpec`]. Point lookups hit exact materializations; misses fall
//! back to the *cheapest materialized ancestor* — any stored frequency set
//! over a superset of the requested attributes at lower-or-equal levels can
//! answer the request by projection + rollup (Subset and Rollup
//! properties), at a cost proportional to its group count rather than the
//! base table's row count. [`MaterializationPolicy`] selects what to
//! pre-compute, trading memory for repeated-anonymization speed (the
//! "anonymize the same table for many k / many quasi-identifiers" workflow
//! of the retail example).

use incognito_hierarchy::LevelNo;
use incognito_table::fxhash::FxHashMap;
use incognito_table::{FrequencySet, GroupSpec, Table, TableError};

/// What to pre-materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaterializationPolicy {
    /// Nothing up front; the store fills lazily as queries arrive.
    Lazy,
    /// The zero-generalization frequency set of every subset of the
    /// quasi-identifier (Cube Incognito's choice, §3.3.2).
    ZeroCube,
    /// Every subset at *every* level combination whose group count does not
    /// exceed `max_groups` — the §7 idea of materializing counts at various
    /// points in the dimension hierarchies, with a size budget standing in
    /// for \[9\]'s benefit metric.
    LeveledCube {
        /// Upper bound on the group count of any stored frequency set.
        max_groups: usize,
    },
}

/// Counters describing how the store answered queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Queries answered from an exact materialization.
    pub exact_hits: usize,
    /// Queries answered by projecting/rolling up a materialized ancestor.
    pub derived_hits: usize,
    /// Queries that had to scan the base table.
    pub misses: usize,
    /// Frequency sets materialized (pre-computation plus lazily cached).
    pub materialized: usize,
}

/// A cache of materialized frequency sets over one table.
pub struct FreqStore<'t> {
    table: &'t Table,
    qi: Vec<usize>,
    store: FxHashMap<Vec<(usize, LevelNo)>, FrequencySet>,
    stats: StoreStats,
}

impl<'t> FreqStore<'t> {
    /// Build a store over `table` restricted to the quasi-identifier `qi`
    /// (sorted internally), pre-materializing per `policy`.
    pub fn build(
        table: &'t Table,
        qi: &[usize],
        policy: MaterializationPolicy,
    ) -> Result<Self, TableError> {
        let mut sorted = qi.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut store = FreqStore {
            table,
            qi: sorted,
            store: FxHashMap::default(),
            stats: StoreStats::default(),
        };
        match policy {
            MaterializationPolicy::Lazy => {}
            MaterializationPolicy::ZeroCube => store.materialize_zero_cube()?,
            MaterializationPolicy::LeveledCube { max_groups } => {
                store.materialize_zero_cube()?;
                store.materialize_levels(max_groups)?;
            }
        }
        store.publish_gauges();
        Ok(store)
    }

    /// The store's accounting.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Number of materialized frequency sets.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is materialized yet.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total groups across all materialized sets (a memory proxy).
    pub fn total_groups(&self) -> usize {
        self.store.values().map(FrequencySet::num_groups).sum()
    }

    /// Estimated heap bytes held by the materialized sets (see
    /// [`FrequencySet::resident_bytes`]).
    pub fn resident_bytes(&self) -> u64 {
        self.store.values().map(FrequencySet::resident_bytes).sum()
    }

    /// Publish store occupancy as `core.store.*` gauges. Called after
    /// every mutation batch; a no-op while observation is disabled.
    fn publish_gauges(&self) {
        if !incognito_obs::enabled() {
            return;
        }
        incognito_obs::gauge_set("core.store.entries", self.store.len() as i64);
        incognito_obs::gauge_set("core.store.groups", self.total_groups() as i64);
        incognito_obs::gauge_set("core.store.bytes", self.resident_bytes() as i64);
    }

    fn materialize_zero_cube(&mut self) -> Result<(), TableError> {
        let n = self.qi.len();
        let full: Vec<(usize, LevelNo)> = self.qi.iter().map(|&a| (a, 0)).collect();
        let freq = self.table.frequency_set(&GroupSpec::new(full.clone())?)?;
        self.store.insert(full, freq);
        self.stats.materialized += 1;
        // Derive narrower subsets by projection, wider first.
        let full_mask = (1u32 << n) - 1;
        let mut masks: Vec<u32> = (1..full_mask).collect();
        masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
        for mask in masks {
            let add = (0..n as u32).find(|b| mask & (1 << b) == 0).expect("not full");
            let parent_mask = mask | (1 << add);
            let parent_key: Vec<(usize, LevelNo)> = (0..n)
                .filter(|&b| parent_mask & (1 << b) != 0)
                .map(|b| (self.qi[b], 0))
                .collect();
            let keep: Vec<usize> = (0..n)
                .filter(|&b| parent_mask & (1 << b) != 0)
                .enumerate()
                .filter(|&(_, b)| mask & (1 << b) != 0)
                .map(|(pos, _)| pos)
                .collect();
            let parent = self.store.get(&parent_key).expect("built widest-first");
            let derived = parent.project(&keep)?;
            let key: Vec<(usize, LevelNo)> = (0..n)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| (self.qi[b], 0))
                .collect();
            self.store.insert(key, derived);
            self.stats.materialized += 1;
        }
        Ok(())
    }

    /// Roll every zero-level materialization up through all level
    /// combinations, keeping those within the group budget.
    fn materialize_levels(&mut self, max_groups: usize) -> Result<(), TableError> {
        let schema = self.table.schema().clone();
        let zero_keys: Vec<Vec<(usize, LevelNo)>> = self.store.keys().cloned().collect();
        for key in zero_keys {
            let attrs: Vec<usize> = key.iter().map(|&(a, _)| a).collect();
            let heights: Vec<LevelNo> =
                attrs.iter().map(|&a| schema.hierarchy(a).height()).collect();
            // Enumerate level vectors in mixed-radix order, skipping all-zeros.
            let mut levels = vec![0u8; attrs.len()];
            loop {
                // Advance.
                let mut i = 0;
                loop {
                    if i == attrs.len() {
                        break;
                    }
                    if levels[i] < heights[i] {
                        levels[i] += 1;
                        break;
                    }
                    levels[i] = 0;
                    i += 1;
                }
                if i == attrs.len() {
                    break; // wrapped: done
                }
                let zero = self.store.get(&key).expect("zero level present");
                let rolled = zero.rollup(&schema, &levels)?;
                if rolled.num_groups() <= max_groups {
                    let lk: Vec<(usize, LevelNo)> =
                        attrs.iter().zip(&levels).map(|(&a, &l)| (a, l)).collect();
                    self.store.insert(lk, rolled);
                    self.stats.materialized += 1;
                }
            }
        }
        Ok(())
    }

    /// Answer a frequency-set query, preferring (1) an exact
    /// materialization, (2) derivation from the best materialized ancestor,
    /// (3) a base-table scan (which is then cached).
    pub fn frequency_set(&mut self, spec: &GroupSpec) -> Result<FrequencySet, TableError> {
        spec.validate(self.table.schema())?;
        let key: Vec<(usize, LevelNo)> = spec.parts().to_vec();
        if let Some(f) = self.store.get(&key) {
            self.stats.exact_hits += 1;
            return Ok(f.clone());
        }

        // Best ancestor: a stored spec whose attrs ⊇ ours with levels ≤
        // ours on the shared attributes, minimizing group count.
        let mut best: Option<(&Vec<(usize, LevelNo)>, &FrequencySet)> = None;
        'candidates: for (ck, cf) in &self.store {
            let mut positions = Vec::with_capacity(key.len());
            for &(a, l) in &key {
                match ck.iter().position(|&(ca, cl)| ca == a && cl <= l) {
                    Some(p) => positions.push(p),
                    None => continue 'candidates,
                }
            }
            let _ = positions;
            if best.is_none_or(|(_, bf)| cf.num_groups() < bf.num_groups()) {
                best = Some((ck, cf));
            }
        }
        if let Some((ck, cf)) = best {
            // Project to our attributes (positions must be increasing: both
            // key and ck are attribute-sorted, so they are), then roll up.
            let keep: Vec<usize> = key
                .iter()
                .map(|&(a, _)| ck.iter().position(|&(ca, _)| ca == a).expect("ancestor"))
                .collect();
            let projected = cf.project(&keep)?;
            let target: Vec<LevelNo> = key.iter().map(|&(_, l)| l).collect();
            let rolled = projected.rollup(self.table.schema(), &target)?;
            self.stats.derived_hits += 1;
            return Ok(rolled);
        }

        let scanned = self.table.frequency_set(spec)?;
        self.stats.misses += 1;
        self.stats.materialized += 1;
        self.store.insert(key, scanned.clone());
        self.publish_gauges();
        Ok(scanned)
    }
}

/// Run the Incognito search answering every root frequency set from
/// `store` instead of scanning the base table — the §7 "strategic
/// materialization" variant. With a [`MaterializationPolicy::LeveledCube`]
/// store, repeated anonymizations (different k, different quasi-identifier
/// subsets of the store's QI) never rescan the table.
///
/// The store must cover the requested `qi` (i.e. `qi ⊆ store.qi`).
pub fn incognito_with_store(
    table: &Table,
    qi: &[usize],
    cfg: &crate::Config,
    store: &mut FreqStore<'_>,
) -> Result<crate::AnonymizationResult, crate::AlgoError> {
    crate::incognito::incognito_impl(
        table,
        qi,
        cfg,
        &mut |_| {},
        crate::incognito::AltSource::Store(store),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::patients;

    #[test]
    fn lazy_store_caches_scans() {
        let t = patients();
        let mut store = FreqStore::build(&t, &[0, 1, 2], MaterializationPolicy::Lazy).unwrap();
        assert!(store.is_empty());
        let spec = GroupSpec::ground(&[1, 2]).unwrap();
        let a = store.frequency_set(&spec).unwrap();
        assert_eq!(store.stats().misses, 1);
        let b = store.frequency_set(&spec).unwrap();
        assert_eq!(store.stats().exact_hits, 1);
        assert_eq!(a.to_labeled_rows(t.schema()), b.to_labeled_rows(t.schema()));
    }

    #[test]
    fn zero_cube_answers_everything_without_scans() {
        let t = patients();
        let mut store = FreqStore::build(&t, &[0, 1, 2], MaterializationPolicy::ZeroCube).unwrap();
        assert_eq!(store.len(), 7); // 2³ − 1 subsets
        // Any spec over the QI is answerable without touching the table.
        for spec in [
            GroupSpec::new(vec![(0, 1), (1, 0)]).unwrap(),
            GroupSpec::new(vec![(2, 2)]).unwrap(),
            GroupSpec::new(vec![(0, 0), (1, 1), (2, 1)]).unwrap(),
        ] {
            let via_store = store.frequency_set(&spec).unwrap();
            let direct = t.frequency_set(&spec).unwrap();
            assert_eq!(
                via_store.to_labeled_rows(t.schema()),
                direct.to_labeled_rows(t.schema())
            );
        }
        assert_eq!(store.stats().misses, 0);
        assert!(store.stats().derived_hits >= 2);
    }

    #[test]
    fn leveled_cube_respects_budget_and_serves_exact_hits() {
        let t = patients();
        let mut store = FreqStore::build(
            &t,
            &[1, 2],
            MaterializationPolicy::LeveledCube { max_groups: 100 },
        )
        .unwrap();
        // ⟨Sex⟩ chain (2 levels) + ⟨Zip⟩ chain (3) + ⟨Sex, Zip⟩ grid (6):
        // 11 specs total, all within budget.
        assert_eq!(store.len(), 11);
        let spec = GroupSpec::new(vec![(1, 1), (2, 1)]).unwrap();
        let f = store.frequency_set(&spec).unwrap();
        assert_eq!(store.stats().exact_hits, 1);
        assert_eq!(f.total(), 6);
        // Tight budget stores only the small generalized sets.
        let tight = FreqStore::build(
            &t,
            &[1, 2],
            MaterializationPolicy::LeveledCube { max_groups: 2 },
        )
        .unwrap();
        assert!(tight.len() < 11);
        assert!(tight.len() >= 3); // zero cube always kept
    }

    #[test]
    fn store_backed_incognito_matches_basic() {
        let t = patients();
        let mut store =
            FreqStore::build(&t, &[0, 1, 2], MaterializationPolicy::ZeroCube).unwrap();
        for k in [1u64, 2, 3, 6] {
            let cfg = crate::Config::new(k);
            let via_store = incognito_with_store(&t, &[0, 1, 2], &cfg, &mut store).unwrap();
            let basic = crate::incognito(&t, &[0, 1, 2], &cfg).unwrap();
            assert_eq!(via_store.generalizations(), basic.generalizations(), "k={k}");
        }
        // Every root answer came from the store, never a fresh table scan.
        assert_eq!(store.stats().misses, 0);
        // The store also serves narrower quasi-identifiers.
        let narrow = incognito_with_store(&t, &[1, 2], &crate::Config::new(2), &mut store)
            .unwrap();
        assert_eq!(
            narrow.generalizations(),
            crate::incognito(&t, &[1, 2], &crate::Config::new(2)).unwrap().generalizations()
        );
        assert_eq!(store.stats().misses, 0);
    }

    #[test]
    fn leveled_store_turns_repeat_runs_into_exact_hits() {
        let t = patients();
        let mut store = FreqStore::build(
            &t,
            &[1, 2],
            MaterializationPolicy::LeveledCube { max_groups: usize::MAX },
        )
        .unwrap();
        let before = store.stats().clone();
        let _ = incognito_with_store(&t, &[1, 2], &crate::Config::new(2), &mut store).unwrap();
        let after = store.stats();
        assert_eq!(after.misses, before.misses);
        assert!(after.exact_hits > before.exact_hits);
    }

    #[test]
    fn derived_answers_match_scans_across_the_lattice() {
        let t = patients();
        let mut store = FreqStore::build(&t, &[0, 1, 2], MaterializationPolicy::ZeroCube).unwrap();
        let schema = t.schema().clone();
        for a in 0..=1u8 {
            for s in 0..=1u8 {
                for z in 0..=2u8 {
                    let spec = GroupSpec::new(vec![(0, a), (1, s), (2, z)]).unwrap();
                    assert_eq!(
                        store.frequency_set(&spec).unwrap().to_labeled_rows(&schema),
                        t.frequency_set(&spec).unwrap().to_labeled_rows(&schema),
                        "levels ({a},{s},{z})"
                    );
                }
            }
        }
        assert_eq!(store.stats().misses, 0);
    }
}
