use incognito_hierarchy::LevelNo;
use incognito_table::{Schema, Table};

use crate::{AlgoError, SearchStats};

/// One full-domain generalization of the quasi-identifier: a level per QI
/// attribute, aligned with [`AnonymizationResult::qi`] (ascending attribute
/// order). This is a point of the Figure 3 lattice, and equivalently the
/// distance vector from the all-zeros node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Generalization {
    /// Generalization level per QI attribute.
    pub levels: Vec<LevelNo>,
}

impl Generalization {
    /// Height: the sum of the levels (§2's height of a multi-attribute
    /// generalization).
    pub fn height(&self) -> u32 {
        self.levels.iter().map(|&l| l as u32).sum()
    }

    /// True if `other` dominates `self` component-wise with at least one
    /// strict inequality (i.e. `other` is a generalization of `self`).
    pub fn is_generalized_by(&self, other: &Generalization) -> bool {
        self.levels.len() == other.levels.len()
            && self.levels.iter().zip(&other.levels).all(|(&a, &b)| a <= b)
            && self.levels != other.levels
    }

    /// Render as e.g. `⟨Sex:1, Zipcode:0⟩` for reporting.
    pub fn describe(&self, schema: &Schema, qi: &[usize]) -> String {
        let parts: Vec<String> = qi
            .iter()
            .zip(&self.levels)
            .map(|(&a, &l)| format!("{}:{}", schema.attribute(a).name(), l))
            .collect();
        format!("⟨{}⟩", parts.join(", "))
    }
}

/// The outcome of a full-domain anonymization search.
///
/// For the sound-and-complete algorithms (Incognito and exhaustive
/// bottom-up), `generalizations` is the set of **all** k-anonymous
/// full-domain generalizations of the quasi-identifier; "minimal" ones can
/// then be selected under any criterion (§3.2). For single-solution
/// algorithms (binary search, Datafly) it holds the generalizations found.
#[derive(Debug, Clone)]
pub struct AnonymizationResult {
    /// The quasi-identifier, sorted ascending.
    qi: Vec<usize>,
    /// The anonymity parameter.
    k: u64,
    /// The suppression allowance used.
    max_suppress: u64,
    /// K-anonymous generalizations, sorted lexicographically by levels.
    generalizations: Vec<Generalization>,
    /// Search counters.
    stats: SearchStats,
}

impl AnonymizationResult {
    pub(crate) fn new(
        qi: Vec<usize>,
        k: u64,
        max_suppress: u64,
        mut generalizations: Vec<Generalization>,
        stats: SearchStats,
    ) -> Self {
        generalizations.sort();
        generalizations.dedup();
        AnonymizationResult { qi, k, max_suppress, generalizations, stats }
    }

    /// The quasi-identifier attribute indices, ascending.
    pub fn qi(&self) -> &[usize] {
        &self.qi
    }

    /// The anonymity parameter k.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The suppression allowance.
    pub fn max_suppress(&self) -> u64 {
        self.max_suppress
    }

    /// All generalizations found, sorted lexicographically.
    pub fn generalizations(&self) -> &[Generalization] {
        &self.generalizations
    }

    /// Search statistics.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut SearchStats {
        &mut self.stats
    }

    /// Number of generalizations found.
    pub fn len(&self) -> usize {
        self.generalizations.len()
    }

    /// True if no k-anonymous generalization was found.
    pub fn is_empty(&self) -> bool {
        self.generalizations.is_empty()
    }

    /// True if `levels` is among the found generalizations.
    pub fn contains(&self, levels: &[LevelNo]) -> bool {
        self.generalizations.iter().any(|g| g.levels == levels)
    }

    /// The minimum height over all found generalizations.
    pub fn minimal_height(&self) -> Option<u32> {
        self.generalizations.iter().map(Generalization::height).min()
    }

    /// Generalizations of minimal height — minimal in the Samarati/Sweeney
    /// sense of §2.1.
    pub fn minimal_by_height(&self) -> Vec<&Generalization> {
        let Some(min) = self.minimal_height() else { return Vec::new() };
        self.generalizations.iter().filter(|g| g.height() == min).collect()
    }

    /// The minimal frontier: generalizations with no other found
    /// generalization strictly below them. Any user-defined notion of
    /// minimality picks from this antichain.
    pub fn minimal_frontier(&self) -> Vec<&Generalization> {
        self.generalizations
            .iter()
            .filter(|g| {
                !self
                    .generalizations
                    .iter()
                    .any(|other| other.is_generalized_by(g))
            })
            .collect()
    }

    /// The generalization minimizing an arbitrary cost function — the
    /// "users introduce their own notions of minimality" flexibility the
    /// paper contrasts against binary search (§3.2). Ties break toward the
    /// lexicographically smaller level vector.
    pub fn min_by_cost<F, C>(&self, mut cost: F) -> Option<&Generalization>
    where
        F: FnMut(&Generalization) -> C,
        C: PartialOrd,
    {
        let mut best: Option<(&Generalization, C)> = None;
        for g in &self.generalizations {
            let c = cost(g);
            match &best {
                Some((_, bc)) if *bc <= c => {}
                _ => best = Some((g, c)),
            }
        }
        best.map(|(g, _)| g)
    }

    /// Materialize the anonymized view of `table` under `gen`: QI attributes
    /// are generalized to their levels, non-QI attributes released intact,
    /// and (if a suppression allowance was configured) tuples in groups
    /// smaller than k removed. Returns the view and the suppressed count.
    pub fn materialize(
        &self,
        table: &Table,
        gen: &Generalization,
    ) -> Result<(Table, u64), AlgoError> {
        let mut levels = vec![0u8; table.schema().arity()];
        for (&a, &l) in self.qi.iter().zip(&gen.levels) {
            levels[a] = l;
        }
        let suppress = (self.max_suppress > 0).then_some((self.k, self.qi.as_slice()));
        Ok(table.generalize_with_suppression(&levels, suppress)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(gens: Vec<Vec<LevelNo>>) -> AnonymizationResult {
        AnonymizationResult::new(
            vec![0, 1],
            2,
            0,
            gens.into_iter().map(|levels| Generalization { levels }).collect(),
            SearchStats::default(),
        )
    }

    #[test]
    fn ordering_and_dedup() {
        let r = result(vec![vec![1, 1], vec![0, 2], vec![1, 1], vec![1, 2]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.generalizations()[0].levels, vec![0, 2]);
        assert!(r.contains(&[1, 1]));
        assert!(!r.contains(&[0, 0]));
    }

    #[test]
    fn minimality_selectors() {
        // Found set: {⟨0,2⟩, ⟨1,0⟩, ⟨1,1⟩, ⟨1,2⟩} (the Patients S/Z answer).
        let r = result(vec![vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 2]]);
        assert_eq!(r.minimal_height(), Some(1));
        let by_height: Vec<_> = r.minimal_by_height().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(by_height, vec![vec![1, 0]]);
        let frontier: Vec<_> = r.minimal_frontier().iter().map(|g| g.levels.clone()).collect();
        assert_eq!(frontier, vec![vec![0, 2], vec![1, 0]]);
        // A cost function preferring to keep attribute 0 intact flips the choice.
        let pick = r.min_by_cost(|g| (g.levels[0], g.height())).unwrap();
        assert_eq!(pick.levels, vec![0, 2]);
    }

    #[test]
    fn generalization_partial_order() {
        let a = Generalization { levels: vec![0, 1] };
        let b = Generalization { levels: vec![1, 1] };
        let c = Generalization { levels: vec![1, 0] };
        assert!(a.is_generalized_by(&b));
        assert!(!b.is_generalized_by(&a));
        assert!(!a.is_generalized_by(&c));
        assert!(!a.is_generalized_by(&a));
        assert_eq!(b.height(), 2);
    }

    #[test]
    fn empty_result() {
        let r = result(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.minimal_height(), None);
        assert!(r.minimal_by_height().is_empty());
        assert!(r.minimal_frontier().is_empty());
        assert!(r.min_by_cost(|g| g.height()).is_none());
    }
}
