//! Structured trace of an Incognito run, used by the quickstart example to
//! reproduce the paper's Example 3.1 narrative and by tests that assert on
//! search behaviour (what was scanned, rolled up, marked).

use incognito_hierarchy::LevelNo;

/// How a node's frequency set was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSource {
    /// Scanned the base table.
    TableScan,
    /// Rolled up from a direct specialization's frequency set.
    Rollup,
    /// Rolled up from the family's super-root frequency set (§3.3.1).
    SuperRoot,
    /// Rolled up from a pre-computed zero-generalization frequency set
    /// (Cube Incognito, §3.3.2).
    Cube,
}

/// One event in a search trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A subset-size iteration began on a candidate graph.
    IterationStart {
        /// Subset size `i`.
        arity: usize,
        /// Number of candidate nodes.
        candidates: usize,
        /// Number of edges.
        edges: usize,
    },
    /// A node's k-anonymity was checked by computing a frequency set.
    Checked {
        /// The node's `(attribute, level)` parts.
        spec: Vec<(usize, LevelNo)>,
        /// Where its frequency set came from.
        via: CheckSource,
        /// The verdict.
        anonymous: bool,
    },
    /// A node was marked k-anonymous via the generalization property
    /// without computing its frequency set.
    Marked {
        /// The marked node.
        spec: Vec<(usize, LevelNo)>,
        /// The anonymous node that implied it.
        implied_by: Vec<(usize, LevelNo)>,
    },
    /// An iteration finished.
    IterationEnd {
        /// Number of nodes that survived (`|Sᵢ|`).
        survivors: usize,
    },
}
