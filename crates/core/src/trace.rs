//! Structured trace of an Incognito run, used by the quickstart example to
//! reproduce the paper's Example 3.1 narrative and by tests that assert on
//! search behaviour (what was scanned, rolled up, marked).

use incognito_hierarchy::LevelNo;

/// How a node's frequency set was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSource {
    /// Scanned the base table.
    TableScan,
    /// Rolled up from a direct specialization's frequency set.
    Rollup,
    /// Rolled up from the family's super-root frequency set (§3.3.1).
    SuperRoot,
    /// Rolled up from a pre-computed zero-generalization frequency set
    /// (Cube Incognito, §3.3.2).
    Cube,
}

impl CheckSource {
    /// Stable lowercase label, used by trace-span args and the explain
    /// renderer's column headers.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckSource::TableScan => "scan",
            CheckSource::Rollup => "rollup",
            CheckSource::SuperRoot => "superroot",
            CheckSource::Cube => "cube",
        }
    }
}

/// Render a node's `(attribute, level)` parts as the compact `a<i>L<l>`
/// notation used in span args and explain output, e.g. `a1L0,a2L2`.
pub fn spec_label(spec: &[(usize, LevelNo)]) -> String {
    let mut s = String::new();
    for (i, &(a, l)) in spec.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("a{a}L{l}"));
    }
    s
}

/// One event in a search trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A subset-size iteration began on a candidate graph.
    IterationStart {
        /// Subset size `i`.
        arity: usize,
        /// Number of candidate nodes.
        candidates: usize,
        /// Number of edges.
        edges: usize,
    },
    /// A node's k-anonymity was checked by computing a frequency set.
    Checked {
        /// The node's `(attribute, level)` parts.
        spec: Vec<(usize, LevelNo)>,
        /// Where its frequency set came from.
        via: CheckSource,
        /// The verdict.
        anonymous: bool,
    },
    /// A node was marked k-anonymous via the generalization property
    /// without computing its frequency set.
    Marked {
        /// The marked node.
        spec: Vec<(usize, LevelNo)>,
        /// The anonymous node that implied it.
        implied_by: Vec<(usize, LevelNo)>,
    },
    /// An iteration finished.
    IterationEnd {
        /// Number of nodes that survived (`|Sᵢ|`).
        survivors: usize,
    },
}
