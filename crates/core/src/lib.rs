//! The Incognito full-domain k-anonymization algorithm suite.
//!
//! This crate implements every search algorithm of *Incognito: Efficient
//! Full-Domain K-Anonymity* (SIGMOD 2005):
//!
//! * [`incognito`] — **Basic Incognito** (Figure 8): iterate over
//!   quasi-identifier subset sizes, breadth-first-search each candidate
//!   graph bottom-up with rollup from parents and generalization-property
//!   marking, and a-priori-generate the next candidate graph;
//! * **Super-roots Incognito** (§3.3.1) — enabled with
//!   [`Config::superroots`]: group each iteration's roots by family and
//!   scan the table once per family at the group's greatest lower bound;
//! * [`cube::cube_incognito`] — **Cube Incognito** (§3.3.2): pre-compute
//!   the zero-generalization frequency sets of every quasi-identifier
//!   subset bottom-up (data-cube style) and answer all root frequency sets
//!   from them;
//! * [`bottom_up::bottom_up_search`] — the exhaustive bottom-up
//!   breadth-first baseline of §2.2, with or without rollup;
//! * [`binary_search::samarati_binary_search`] — Samarati's binary search
//!   on generalization height (§2.2);
//! * [`datafly::datafly`] — Sweeney's greedy Datafly heuristic (§6), for
//!   comparison: k-anonymous output but no minimality guarantee.
//!
//! All algorithms share [`Config`] (k, the §2.1 tuple-suppression
//! threshold, and search options), produce an [`AnonymizationResult`]
//! whose generalizations can be materialized with
//! [`AnonymizationResult::materialize`], and record [`SearchStats`] —
//! the node/scan/rollup counters behind the paper's §4.2.1 analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_search;
pub mod bottom_up;
pub mod cube;
pub mod datafly;
pub mod distance_matrix;
mod error;
pub mod explain;
pub mod incognito;
pub mod materialize;
pub mod muargus;
pub mod provider;
mod result;
mod stats;
#[cfg(test)]
pub(crate) mod testutil;
pub mod trace;
pub mod verify;

pub use error::AlgoError;
pub use explain::{render_dot, ExplainPlan};
pub use incognito::incognito;
pub use provider::{FreqHandle, FreqProvider};
pub use result::{AnonymizationResult, Generalization};
pub use stats::{IterationStats, PhaseTimings, SearchStats};

use incognito_lattice::PruneStrategy;

/// Shared algorithm configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// The anonymity parameter k (≥ 1).
    pub k: u64,
    /// Maximum number of outlier tuples that may be suppressed (§2.1);
    /// 0 disables suppression.
    pub max_suppress: u64,
    /// Prune-phase membership structure (Incognito only).
    pub prune: PruneStrategy,
    /// Enable the super-roots optimization (Incognito only).
    pub superroots: bool,
    /// Enable rollup from parent frequency sets. Incognito always benefits;
    /// exposed so the rollup ablation can switch it off.
    pub rollup: bool,
    /// Worker threads (1 = serial). With more than one thread the search
    /// evaluates each wave of equally-ranked candidates concurrently on the
    /// shared [`incognito_exec`] pool, super-root family scans and zero-cube
    /// projections fan out one task per family/subset, and lone-node scans
    /// split by row. The result set and every counter are identical to a
    /// serial run (DESIGN.md §8).
    pub threads: usize,
    /// Memory budget in bytes, or `None` for unlimited. While the
    /// process's live bytes (from `incognito_obs::mem`) exceed the budget,
    /// every frequency set the engines request through [`FreqProvider`]
    /// degrades to the disk-backed
    /// [`incognito_table::ExternalFrequencySet`] — the paper's §7
    /// out-of-core case. Results are byte-identical at every budget; only
    /// the representation (and peak memory) changes.
    pub memory_budget: Option<u64>,
    /// Directory spilled frequency sets are written under, or `None` for
    /// the OS temp directory. On Linux the temp directory is frequently a
    /// RAM-backed tmpfs, where "spilling to disk" still consumes physical
    /// memory and defeats the budget — point this at a real filesystem
    /// when the budget matters. Each spilled set creates (and on drop
    /// removes) its own collision-free subdirectory here.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Config {
    /// Configuration for a plain k with no suppression: Basic Incognito
    /// defaults (hash-tree prune, no super-roots, rollup on). The thread
    /// count comes from [`Config::default_threads`].
    pub fn new(k: u64) -> Self {
        Config {
            k,
            max_suppress: 0,
            prune: PruneStrategy::HashTree,
            superroots: false,
            rollup: true,
            threads: Self::default_threads(),
            memory_budget: Self::default_memory_budget(),
            spill_dir: Self::default_spill_dir(),
        }
    }

    /// The process-wide default thread count: `INCOGNITO_THREADS` when set
    /// to a positive integer, else 1 (serial). Read once and cached so a
    /// mid-run environment change can't split engines across thread counts.
    pub fn default_threads() -> usize {
        static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| {
            std::env::var("INCOGNITO_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1)
        })
    }

    /// Set the suppression threshold.
    pub fn with_suppression(mut self, max_suppress: u64) -> Self {
        self.max_suppress = max_suppress;
        self
    }

    /// Enable/disable super-roots.
    pub fn with_superroots(mut self, on: bool) -> Self {
        self.superroots = on;
        self
    }

    /// Enable/disable rollup.
    pub fn with_rollup(mut self, on: bool) -> Self {
        self.rollup = on;
        self
    }

    /// Choose the prune strategy.
    pub fn with_prune(mut self, prune: PruneStrategy) -> Self {
        self.prune = prune;
        self
    }

    /// Set the scan worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The process-wide default memory budget: `INCOGNITO_MEM_BUDGET`
    /// (bytes) when set to a non-negative integer, else unlimited. Read
    /// once and cached, like [`Config::default_threads`].
    pub fn default_memory_budget() -> Option<u64> {
        static DEFAULT: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| {
            std::env::var("INCOGNITO_MEM_BUDGET")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        })
    }

    /// Cap live bytes: frequency sets spill to disk while the process is
    /// over `bytes` (see [`Config::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Remove any memory budget (including one inherited from
    /// `INCOGNITO_MEM_BUDGET`): every frequency set stays in memory.
    pub fn with_unlimited_memory(mut self) -> Self {
        self.memory_budget = None;
        self
    }

    /// The process-wide default spill directory: `INCOGNITO_SPILL_DIR`
    /// when set to a non-empty path, else `None` (the OS temp directory —
    /// see [`Config::spill_dir`] for the tmpfs caveat). Read once and
    /// cached, like [`Config::default_threads`].
    pub fn default_spill_dir() -> Option<std::path::PathBuf> {
        static DEFAULT: std::sync::OnceLock<Option<std::path::PathBuf>> =
            std::sync::OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                std::env::var_os("INCOGNITO_SPILL_DIR")
                    .filter(|v| !v.is_empty())
                    .map(std::path::PathBuf::from)
            })
            .clone()
    }

    /// Direct spilled frequency sets under `dir` instead of the OS temp
    /// directory (see [`Config::spill_dir`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// The k-anonymity predicate on a provider handle — in-memory or
    /// spilled — including the suppression allowance.
    pub(crate) fn passes_handle(&self, freq: &provider::FreqHandle) -> Result<bool, AlgoError> {
        if self.max_suppress == 0 {
            freq.is_k_anonymous(self.k)
        } else {
            freq.is_k_anonymous_with_suppression(self.k, self.max_suppress)
        }
    }

    /// The k-anonymity predicate including the suppression allowance.
    pub(crate) fn passes(&self, freq: &incognito_table::FrequencySet) -> bool {
        if self.max_suppress == 0 {
            freq.is_k_anonymous(self.k)
        } else {
            freq.is_k_anonymous_with_suppression(self.k, self.max_suppress)
        }
    }
}
