//! Independent verification of anonymization results — a downstream user's
//! due-diligence API: confirm that a claimed result set really is sound
//! (every reported generalization is k-anonymous) and, for lattices small
//! enough to brute-force, complete (nothing k-anonymous was missed) —
//! the §3.2 theorem, checked at runtime.

use incognito_lattice::CandidateGraph;
use incognito_table::{GroupSpec, Table};

use crate::{AlgoError, AnonymizationResult, Config};

/// How a verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A reported generalization is not actually k-anonymous.
    Unsound {
        /// The offending level vector.
        levels: Vec<u8>,
    },
    /// A k-anonymous generalization is missing from the result
    /// (completeness check only).
    Incomplete {
        /// The missing level vector.
        levels: Vec<u8>,
    },
    /// The completeness check was requested but the lattice exceeds
    /// `max_lattice` nodes.
    LatticeTooLarge {
        /// Actual lattice size.
        size: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Underlying computation failed.
    Algo(AlgoError),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Unsound { levels } => {
                write!(f, "reported generalization {levels:?} is not k-anonymous")
            }
            VerifyError::Incomplete { levels } => {
                write!(f, "k-anonymous generalization {levels:?} missing from the result")
            }
            VerifyError::LatticeTooLarge { size, cap } => {
                write!(f, "lattice of {size} nodes exceeds the verification cap of {cap}")
            }
            VerifyError::Algo(e) => write!(f, "verification computation failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<AlgoError> for VerifyError {
    fn from(e: AlgoError) -> Self {
        VerifyError::Algo(e)
    }
}

/// Soundness: every generalization in `result` passes the k-anonymity
/// predicate (with `result`'s suppression allowance) against `table`.
pub fn verify_soundness(table: &Table, result: &AnonymizationResult) -> Result<(), VerifyError> {
    let cfg = Config::new(result.k()).with_suppression(result.max_suppress());
    for g in result.generalizations() {
        let spec = GroupSpec::new(
            result.qi().iter().zip(&g.levels).map(|(&a, &l)| (a, l)).collect(),
        )
        .map_err(AlgoError::from)?;
        let freq = table.frequency_set(&spec).map_err(AlgoError::from)?;
        if !cfg.passes(&freq) {
            return Err(VerifyError::Unsound { levels: g.levels.clone() });
        }
    }
    Ok(())
}

/// Soundness **and** completeness by exhaustive lattice enumeration.
/// Refuses lattices above `max_lattice` nodes (the check is a full
/// brute-force pass; Adults QI 9 is ~13k nodes and fine, but the cap keeps
/// accidental Lands-End-sized requests from running for hours).
pub fn verify_complete(
    table: &Table,
    result: &AnonymizationResult,
    max_lattice: usize,
) -> Result<(), VerifyError> {
    let lattice = CandidateGraph::full_lattice(table.schema(), result.qi());
    if lattice.num_nodes() > max_lattice {
        return Err(VerifyError::LatticeTooLarge { size: lattice.num_nodes(), cap: max_lattice });
    }
    let cfg = Config::new(result.k()).with_suppression(result.max_suppress());
    for node in lattice.nodes() {
        let freq = table
            .frequency_set(&node.to_group_spec().map_err(AlgoError::from)?)
            .map_err(AlgoError::from)?;
        let anonymous = cfg.passes(&freq);
        let reported = result.contains(&node.levels());
        match (anonymous, reported) {
            (true, false) => return Err(VerifyError::Incomplete { levels: node.levels() }),
            (false, true) => return Err(VerifyError::Unsound { levels: node.levels() }),
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::patients;
    use crate::{incognito, Generalization, SearchStats};

    #[test]
    fn real_results_verify() {
        let t = patients();
        for k in [1, 2, 3] {
            let r = incognito(&t, &[0, 1, 2], &Config::new(k)).unwrap();
            verify_soundness(&t, &r).unwrap();
            verify_complete(&t, &r, 1_000).unwrap();
        }
        let sup = incognito(&t, &[1, 2], &Config::new(2).with_suppression(2)).unwrap();
        verify_complete(&t, &sup, 1_000).unwrap();
    }

    #[test]
    fn tampered_results_are_caught() {
        let t = patients();
        let real = incognito(&t, &[1, 2], &Config::new(2)).unwrap();

        // Inject a bogus generalization (⟨S0, Z0⟩ is not 2-anonymous).
        let mut padded: Vec<Generalization> = real.generalizations().to_vec();
        padded.push(Generalization { levels: vec![0, 0] });
        let unsound = AnonymizationResult::new(
            vec![1, 2],
            2,
            0,
            padded,
            SearchStats::default(),
        );
        assert!(matches!(
            verify_soundness(&t, &unsound),
            Err(VerifyError::Unsound { .. })
        ));

        // Drop a genuine one (⟨S1, Z0⟩).
        let trimmed: Vec<Generalization> = real
            .generalizations()
            .iter()
            .filter(|g| g.levels != vec![1, 0])
            .cloned()
            .collect();
        let incomplete =
            AnonymizationResult::new(vec![1, 2], 2, 0, trimmed, SearchStats::default());
        assert!(matches!(
            verify_complete(&t, &incomplete, 1_000),
            Err(VerifyError::Incomplete { .. })
        ));
    }

    #[test]
    fn lattice_cap_is_enforced() {
        let t = patients();
        let r = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert!(matches!(
            verify_complete(&t, &r, 3),
            Err(VerifyError::LatticeTooLarge { size: 12, cap: 3 })
        ));
    }
}
