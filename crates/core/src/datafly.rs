//! Sweeney's Datafly greedy heuristic (\[17\], discussed in §6 of the
//! paper): repeatedly generalize the quasi-identifier attribute with the
//! most distinct values until the table is k-anonymous modulo at most k
//! suppressible outlier tuples, then suppress those outliers.
//!
//! The output is guaranteed k-anonymous but carries **no minimality
//! guarantee** — the paper cites exactly this gap as motivation for sound
//! and complete search. It is included as the natural greedy baseline for
//! the model-quality comparisons.

use incognito_hierarchy::LevelNo;
use incognito_table::{GroupSpec, Table};

use crate::error::validate_qi;
use crate::provider::FreqProvider;
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Run Datafly. The result holds exactly one generalization; materialize it
/// with [`AnonymizationResult::materialize`]. Datafly's classic stopping
/// rule allows up to `max(k, cfg.max_suppress)` outliers to be suppressed
/// in the released view.
pub fn datafly(table: &Table, qi: &[usize], cfg: &Config) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let allowance = cfg.max_suppress.max(cfg.k);

    let mut levels: Vec<LevelNo> = vec![0; qi.len()];
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();

    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", "datafly")
        .arg("k", cfg.k)
        .arg("qi_arity", qi.len() as u64);
    let search_start = std::time::Instant::now();
    let mut stats = SearchStats::default();
    let mut it_stats = IterationStats { arity: qi.len(), ..IterationStats::default() };
    let provider = FreqProvider::new(table, cfg);

    loop {
        let spec = GroupSpec::new(qi.iter().copied().zip(levels.iter().copied()).collect())?;
        let mut check_span = incognito_obs::trace::span("check");
        if check_span.is_active() {
            check_span.set_arg(
                "node",
                crate::trace::spec_label(
                    &qi.iter().copied().zip(levels.iter().copied()).collect::<Vec<_>>(),
                ),
            );
        }
        let t0 = std::time::Instant::now();
        let freq = provider.scan(&spec, cfg.threads)?;
        stats.timings.scan += t0.elapsed();
        stats.freq_from_scan += 1;
        stats.table_scans += 1;
        it_stats.nodes_checked += 1;

        let anonymous = freq.is_k_anonymous_with_suppression(cfg.k, allowance)?;
        check_span.set_arg("anonymous", anonymous);
        if anonymous {
            break;
        }

        // Generalize the attribute with the most distinct values in the
        // current (generalized) projection, among those not yet at the top.
        let victim = (0..qi.len())
            .filter(|&i| levels[i] < heights[i])
            .max_by_key(|&i| {
                let single = GroupSpec::new(vec![(qi[i], levels[i])]).expect("valid spec");
                table
                    .frequency_set(&single)
                    .map(|f| f.num_groups())
                    .unwrap_or(0)
            });
        match victim {
            Some(i) => levels[i] += 1,
            // Everything is at the top and still not k-anonymous within the
            // allowance: impossible to fix by full-domain generalization.
            None => return Err(AlgoError::NoSolution),
        }
    }

    it_stats.survivors = 1;
    it_stats.wall = search_start.elapsed();
    stats.timings.total = search_start.elapsed();
    stats.push_iteration(it_stats);
    Ok(AnonymizationResult::new(
        qi,
        cfg.k,
        // Datafly always suppresses its outliers in the released view.
        allowance,
        vec![Generalization { levels }],
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::patients;

    #[test]
    fn output_is_k_anonymous_after_suppression() {
        let t = patients();
        let cfg = Config::new(2);
        let r = datafly(&t, &[0, 1, 2], &cfg).unwrap();
        assert_eq!(r.len(), 1);
        let g = &r.generalizations()[0];
        let (view, suppressed) = r.materialize(&t, g).unwrap();
        assert!(suppressed <= 2);
        let spec = GroupSpec::ground(&[0, 1, 2]).unwrap();
        assert!(view.is_k_anonymous(&spec, 2).unwrap());
    }

    #[test]
    fn greedy_picks_widest_attribute_first() {
        // Zipcode has 4 distinct values vs Sex's 2 and Birthdate's 3, so the
        // first generalization step must hit Zipcode.
        let t = patients();
        let r = datafly(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        let g = &r.generalizations()[0];
        // QI sorted: [Birthdate, Sex, Zipcode]; Zipcode level must be > 0
        // unless the table was already anonymous (it is not).
        assert!(g.levels[2] > 0);
    }

    #[test]
    fn no_minimality_guarantee_but_valid() {
        // Compare against the complete result set: Datafly's answer must be
        // *in* it (validity) though not necessarily minimal.
        let t = patients();
        let cfg = Config::new(2).with_suppression(2);
        let complete = crate::incognito(&t, &[1, 2], &cfg).unwrap();
        let d = datafly(&t, &[1, 2], &cfg).unwrap();
        assert!(complete.contains(&d.generalizations()[0].levels));
    }

    #[test]
    fn already_anonymous_table_needs_no_generalization() {
        let t = patients();
        // k=1 is trivially satisfied at ground level.
        let r = datafly(&t, &[0, 1, 2], &Config::new(1)).unwrap();
        assert_eq!(r.generalizations()[0].levels, vec![0, 0, 0]);
        assert_eq!(r.stats().table_scans, 1);
    }
}
