//! A μ-Argus-style baseline (\[10\], §6 of the paper): *"The μ-Argus system
//! was also implemented to anonymize microdata, but considered attribute
//! combinations of only a limited size, so the results were not always
//! guaranteed to be k-anonymous."*
//!
//! Reproduced so the test suite can regenerate that caveat: the checker
//! examines quasi-identifier subsets only up to `max_combination_size`
//! attributes, and the greedy anonymizer generalizes until those limited
//! checks pass. Tables accepted by the limited check can still violate
//! k-anonymity over the full quasi-identifier — which Incognito's subset
//! property makes precise: passing all m-subsets is necessary, not
//! sufficient, for the full set.

use incognito_hierarchy::LevelNo;
use incognito_table::{GroupSpec, Table};

use crate::error::validate_qi;
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Check k-anonymity of all quasi-identifier subsets of size at most
/// `max_combination_size` under the generalization `levels` (aligned with
/// the *sorted* `qi`). This is the μ-Argus acceptance criterion.
pub fn limited_combination_check(
    table: &Table,
    qi: &[usize],
    levels: &[LevelNo],
    k: u64,
    max_combination_size: usize,
) -> Result<bool, AlgoError> {
    let qi = validate_qi(table.schema(), qi, k)?;
    let m = max_combination_size.clamp(1, qi.len());
    // Enumerate subsets by bitmask, filtered by popcount.
    for mask in 1u32..(1 << qi.len()) {
        let size = mask.count_ones() as usize;
        if size > m {
            continue;
        }
        let parts: Vec<(usize, LevelNo)> = (0..qi.len())
            .filter(|&b| mask & (1 << b) != 0)
            .map(|b| (qi[b], levels[b]))
            .collect();
        let freq = table.frequency_set(&GroupSpec::new(parts)?)?;
        if !freq.is_k_anonymous(k) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Greedy μ-Argus-style anonymizer: Datafly's generalization rule, but
/// stopping as soon as the **limited** check passes. The result is *not*
/// guaranteed k-anonymous over the full quasi-identifier — that's the
/// point of the baseline.
pub fn muargus_anonymize(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
    max_combination_size: usize,
) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let heights: Vec<LevelNo> = qi.iter().map(|&a| schema.hierarchy(a).height()).collect();
    let mut levels: Vec<LevelNo> = vec![0; qi.len()];

    let search_start = std::time::Instant::now();
    let mut stats = SearchStats::default();
    let mut it_stats = IterationStats { arity: qi.len(), ..IterationStats::default() };

    loop {
        it_stats.nodes_checked += 1;
        if limited_combination_check(table, &qi, &levels, cfg.k, max_combination_size)? {
            break;
        }
        // Generalize the attribute with the most distinct released values.
        let victim = (0..qi.len())
            .filter(|&i| levels[i] < heights[i])
            .max_by_key(|&i| {
                let spec = GroupSpec::new(vec![(qi[i], levels[i])]).expect("valid spec");
                table.frequency_set(&spec).map(|f| f.num_groups()).unwrap_or(0)
            });
        match victim {
            Some(i) => levels[i] += 1,
            None => break, // everything at the top; limited check may still fail for k > |T|
        }
    }

    it_stats.survivors = 1;
    it_stats.wall = search_start.elapsed();
    stats.timings.total = search_start.elapsed();
    stats.push_iteration(it_stats);
    Ok(AnonymizationResult::new(
        qi,
        cfg.k,
        cfg.max_suppress,
        vec![Generalization { levels }],
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::patients;
    use incognito_data::{adults, AdultsConfig};

    #[test]
    fn limited_check_is_necessary_but_not_sufficient() {
        // Patients at ground level: every single attribute is 2-anonymous
        // (Example 3.1's first iteration), yet the full 3-attribute QI is
        // not — exactly the μ-Argus failure mode with m = 1.
        let t = patients();
        let ok1 =
            limited_combination_check(&t, &[0, 1, 2], &[0, 0, 0], 2, 1).unwrap();
        assert!(ok1, "all singleton subsets are 2-anonymous");
        let ok3 =
            limited_combination_check(&t, &[0, 1, 2], &[0, 0, 0], 2, 3).unwrap();
        assert!(!ok3, "the full QI is not 2-anonymous");
    }

    #[test]
    fn muargus_output_can_violate_full_k_anonymity() {
        // The related-work claim, regenerated: a μ-Argus release that
        // passes its own limited check but fails the real property.
        let t = patients();
        let cfg = Config::new(2);
        let r = muargus_anonymize(&t, &[0, 1, 2], &cfg, 1).unwrap();
        let g = &r.generalizations()[0];
        assert!(limited_combination_check(&t, &[0, 1, 2], &g.levels, 2, 1).unwrap());
        let full_spec = GroupSpec::new(
            vec![(0usize, g.levels[0]), (1, g.levels[1]), (2, g.levels[2])],
        )
        .unwrap();
        let fully_anonymous = t.frequency_set(&full_spec).unwrap().is_k_anonymous(2);
        assert!(
            !fully_anonymous,
            "the m=1 μ-Argus release must leak on the full QI here"
        );
    }

    #[test]
    fn full_size_muargus_equals_real_k_anonymity() {
        // With m = |QI| the limited check becomes the real one, so the
        // greedy output is genuinely k-anonymous.
        let t = adults(&AdultsConfig { rows: 1_000, seed: 95 });
        let cfg = Config::new(10);
        let qi = [0usize, 1, 3];
        let r = muargus_anonymize(&t, &qi, &cfg, 3).unwrap();
        let g = &r.generalizations()[0];
        let spec = GroupSpec::new(
            qi.iter().zip(&g.levels).map(|(&a, &l)| (a, l)).collect(),
        )
        .unwrap();
        assert!(t.frequency_set(&spec).unwrap().is_k_anonymous(10));
    }

    #[test]
    fn limited_check_monotone_in_m() {
        // Passing at m implies passing at every m' < m (subset property:
        // the size-m check includes all smaller subsets).
        let t = adults(&AdultsConfig { rows: 1_000, seed: 96 });
        let qi = [0usize, 1, 3];
        for levels in [[1u8, 0, 1], [2, 1, 1], [4, 1, 2]] {
            let oks: Vec<bool> = (1..=3)
                .map(|m| limited_combination_check(&t, &qi, &levels, 10, m).unwrap())
                .collect();
            for m in 1..3 {
                assert!(
                    !oks[m] || oks[m - 1],
                    "levels {levels:?}: pass at m={} must imply pass at m={m}",
                    m + 1
                );
            }
        }
    }
}
