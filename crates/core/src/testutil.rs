//! Shared fixtures for the crate's unit tests.

use incognito_hierarchy::builders;
use incognito_lattice::CandidateGraph;
use incognito_table::{Attribute, Schema, Table};

use crate::Config;

/// The full Patients table of Figure 1 with the Figure 2 hierarchies
/// (QI ⟨Birthdate, Sex, Zipcode⟩ plus the sensitive Disease attribute).
pub(crate) fn patients() -> Table {
    let schema = Schema::new(vec![
        Attribute::new(
            "Birthdate",
            builders::suppression("Birthdate", &["1/21/76", "2/28/76", "4/13/86"]).unwrap(),
        ),
        Attribute::new("Sex", builders::suppression("Sex", &["Male", "Female"]).unwrap()),
        Attribute::new(
            "Zipcode",
            builders::round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 2).unwrap(),
        ),
        Attribute::new(
            "Disease",
            builders::identity(
                "Disease",
                &["Flu", "Hepatitis", "Brochitis", "Broken Arm", "Sprained Ankle", "Hang Nail"],
            )
            .unwrap(),
        ),
    ])
    .unwrap();
    let mut t = Table::empty(schema);
    for row in [
        ["1/21/76", "Male", "53715", "Flu"],
        ["4/13/86", "Female", "53715", "Hepatitis"],
        ["2/28/76", "Male", "53703", "Brochitis"],
        ["1/21/76", "Male", "53703", "Broken Arm"],
        ["4/13/86", "Female", "53706", "Sprained Ankle"],
        ["2/28/76", "Female", "53706", "Hang Nail"],
    ] {
        t.push_row(&row).unwrap();
    }
    t
}

/// Brute-force ground truth: every full-QI level combination of the
/// complete lattice, checked directly against the table.
pub(crate) fn exhaustive_truth(table: &Table, qi: &[usize], cfg: &Config) -> Vec<Vec<u8>> {
    let schema = table.schema().clone();
    let mut sorted = qi.to_vec();
    sorted.sort_unstable();
    let lattice = CandidateGraph::full_lattice(&schema, &sorted);
    let mut out = Vec::new();
    for node in lattice.nodes() {
        let freq = table.frequency_set(&node.to_group_spec().unwrap()).unwrap();
        if cfg.passes(&freq) {
            out.push(node.levels());
        }
    }
    out.sort();
    out
}
