//! Cube Incognito (§3.3.2): pre-compute the zero-generalization frequency
//! sets of every quasi-identifier subset bottom-up, data-cube style, then
//! run Incognito answering every root frequency set from the cube instead
//! of scanning the base table.
//!
//! The cube is built exactly as the paper describes the data-cube ordering
//! \[8\]: one scan computes the frequency set of the full quasi-identifier at
//! ground level; every narrower subset's frequency set is then derived by
//! projecting a one-attribute-wider superset (the Subset Property), never
//! touching the base table again.

use std::time::Instant;

use incognito_table::{GroupSpec, Table};

use crate::error::validate_qi;
use crate::incognito::{incognito_impl, AltSource, ZeroCube};
use crate::provider::{FreqHandle, FreqProvider};
use crate::trace::TraceEvent;
use crate::{AlgoError, AnonymizationResult, Config};

/// The pre-computed zero-generalization cube plus its build cost, kept
/// separate so callers (and the Figure 12 harness) can measure build and
/// anonymization phases independently.
pub struct Cube {
    qi: Vec<usize>,
    freq: ZeroCube,
    /// Wall-clock cost of building the cube.
    pub build_time: std::time::Duration,
    /// Number of frequency sets derived by projection (all but the first).
    pub projections: usize,
}

impl Cube {
    /// Build the zero-generalization frequency sets of every non-empty
    /// subset of `qi` with a single base-table scan.
    pub fn build(table: &Table, qi: &[usize], k: u64) -> Result<Cube, AlgoError> {
        Self::build_with_threads(table, qi, k, 1)
    }

    /// [`Cube::build`] with a worker-thread count (see
    /// [`Cube::build_with_config`] for the full knob set).
    pub fn build_with_threads(
        table: &Table,
        qi: &[usize],
        k: u64,
        threads: usize,
    ) -> Result<Cube, AlgoError> {
        Self::build_with_config(table, qi, &Config::new(k).with_threads(threads))
    }

    /// Build the cube under a [`Config`]. With `cfg.threads > 1` the
    /// seeding scan splits by row and every popcount level of subsets
    /// projects concurrently (one task per subset) — subsets of equal
    /// arity derive from disjoint one-wider parents already in the cube,
    /// so a level has no intra-level dependencies and the resulting cube
    /// is identical to a serial build. With `cfg.memory_budget` set, the
    /// seed scan and every projection go through the [`FreqProvider`]:
    /// an over-budget cube spills its subsets to disk and derives
    /// narrower subsets partition-by-partition (the Subset Property,
    /// out-of-core).
    pub fn build_with_config(
        table: &Table,
        qi: &[usize],
        cfg: &Config,
    ) -> Result<Cube, AlgoError> {
        let schema = table.schema().clone();
        let qi = validate_qi(&schema, qi, cfg.k)?;
        let threads = cfg.threads;
        let n = qi.len();
        let mut cube_span = incognito_obs::trace::span("cube.build")
            .arg("qi_arity", n as u64);
        let start = Instant::now();
        let pool = (threads > 1).then(|| incognito_exec::shared(threads));
        let provider = FreqProvider::new(table, cfg);

        let mut freq: ZeroCube = ZeroCube::default();
        let full_mask: u32 = (1u32 << n) - 1;
        let spec = GroupSpec::ground(&qi)?;
        let full = provider.scan(&spec, threads)?;
        freq.insert(full_mask, full);

        let mut projections = 0usize;
        // Subsets level by level in decreasing popcount order; each derived
        // from the superset adding the lowest absent attribute position,
        // which sits one level up and is therefore already materialized.
        for pc in (1..n as u32).rev() {
            let masks: Vec<u32> =
                (1..full_mask).filter(|m| m.count_ones() == pc).collect();
            let project_one = |mask: u32| -> Result<FreqHandle, AlgoError> {
                let add =
                    (0..n as u32).find(|b| mask & (1 << b) == 0).expect("not full");
                let parent_mask = mask | (1 << add);
                let parent =
                    freq.get(&parent_mask).expect("wider subsets built first");
                // Positions (within the parent's spec) of the attributes kept.
                let keep: Vec<usize> = (0..n)
                    .filter(|&b| parent_mask & (1 << b) != 0)
                    .enumerate()
                    .filter(|&(_, b)| mask & (1 << b) != 0)
                    .map(|(pos, _)| pos)
                    .collect();
                provider.project(parent, &keep)
            };
            let projected: Vec<Result<FreqHandle, AlgoError>> = match &pool {
                Some(pool) if masks.len() > 1 => {
                    pool.parallel_map(&masks, |_, &m| project_one(m))
                }
                _ => masks.iter().map(|&m| project_one(m)).collect(),
            };
            for (&mask, f) in masks.iter().zip(projected) {
                projections += 1;
                freq.insert(mask, f?);
            }
        }

        cube_span.set_arg("projections", projections as u64);
        Ok(Cube { qi, freq, build_time: start.elapsed(), projections })
    }

    /// The (sorted) quasi-identifier the cube covers.
    pub fn qi(&self) -> &[usize] {
        &self.qi
    }

    /// The zero-generalization frequency set for the subset encoded by
    /// `mask` (bit `j` ⇔ `qi()[j]` present), in whichever representation
    /// the memory budget allowed at build time.
    pub fn frequency_set(&self, mask: u32) -> Option<&FreqHandle> {
        self.freq.get(&mask)
    }

    /// Number of frequency sets materialized.
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    /// True if the cube is empty (never the case after a successful build).
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }
}

/// Cube Incognito: build the cube, then run the Incognito search against it.
/// The returned stats carry the cube build time
/// (`stats().timings.cube_build`) and count cube-answered root frequency
/// sets as rollups, matching how §4.2.3 splits "cube build time" from
/// "anonymization time".
pub fn cube_incognito(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<AnonymizationResult, AlgoError> {
    cube_incognito_traced(table, qi, cfg, &mut |_| {})
}

/// [`cube_incognito`] with a trace sink.
pub fn cube_incognito_traced(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
    sink: &mut dyn FnMut(TraceEvent),
) -> Result<AnonymizationResult, AlgoError> {
    let cube = Cube::build_with_config(table, qi, cfg)?;
    anonymize_with_cube(table, &cube, cfg, sink)
}

/// Run the Incognito search against a pre-built cube (the "marginal cost of
/// anonymization ... once the zero-generalization frequency sets have been
/// materialized" measurement of §4.2.3).
pub fn anonymize_with_cube(
    table: &Table,
    cube: &Cube,
    cfg: &Config,
    sink: &mut dyn FnMut(TraceEvent),
) -> Result<AnonymizationResult, AlgoError> {
    let mut result = incognito_impl(table, &cube.qi, cfg, sink, AltSource::Cube(&cube.freq))?;
    let stats = result.stats_mut();
    stats.timings.cube_build = Some(cube.build_time);
    stats.freq_from_projection = cube.projections;
    // The single scan that seeded the cube.
    stats.table_scans += 1;
    stats.freq_from_scan += 1;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incognito;
    use crate::testutil::{exhaustive_truth, patients};

    #[test]
    fn cube_covers_every_subset() {
        let t = patients();
        // Pinned in memory: the test reads each entry through `as_mem`,
        // which an environment budget (e.g. CI's INCOGNITO_MEM_BUDGET)
        // would otherwise spill. The spilled cube is covered by
        // `tests/out_of_core_equivalence.rs`.
        let cfg = Config::new(2).with_unlimited_memory();
        let cube = Cube::build_with_config(&t, &[0, 1, 2], &cfg).unwrap();
        assert_eq!(cube.len(), 7); // 2³ - 1 subsets
        assert_eq!(cube.projections, 6);
        // Each cube entry equals a direct scan.
        let schema = t.schema().clone();
        for mask in 1u32..8 {
            let attrs: Vec<usize> = (0..3).filter(|&b| mask & (1 << b) != 0).collect();
            let direct = t
                .frequency_set(&GroupSpec::ground(&attrs).unwrap())
                .unwrap();
            let cubed = cube.frequency_set(mask).unwrap().as_mem().unwrap();
            assert_eq!(
                cubed.to_labeled_rows(&schema),
                direct.to_labeled_rows(&schema),
                "mask={mask:#b}"
            );
        }
    }

    #[test]
    fn cube_incognito_matches_basic_and_truth() {
        let t = patients();
        for k in [1, 2, 3, 6] {
            let cfg = Config::new(k);
            let c = cube_incognito(&t, &[0, 1, 2], &cfg).unwrap();
            let b = incognito(&t, &[0, 1, 2], &cfg).unwrap();
            assert_eq!(c.generalizations(), b.generalizations(), "k={k}");
            let got: Vec<Vec<u8>> =
                c.generalizations().iter().map(|g| g.levels.clone()).collect();
            assert_eq!(got, exhaustive_truth(&t, &[0, 1, 2], &cfg));
        }
    }

    #[test]
    fn cube_variant_scans_once() {
        let t = patients();
        let r = cube_incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert_eq!(r.stats().table_scans, 1);
        assert!(r.stats().timings.cube_build.is_some());
        assert_eq!(r.stats().freq_from_projection, 6);
        // Basic scans once per root family instead.
        let basic = incognito(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert!(basic.stats().table_scans > 1);
    }

    #[test]
    fn prebuilt_cube_reuse() {
        let t = patients();
        let cube = Cube::build(&t, &[0, 1, 2], 2).unwrap();
        for k in [2, 3] {
            let cfg = Config::new(k);
            let r = anonymize_with_cube(&t, &cube, &cfg, &mut |_| {}).unwrap();
            assert_eq!(
                r.generalizations(),
                incognito(&t, &[0, 1, 2], &cfg).unwrap().generalizations()
            );
        }
    }
}
