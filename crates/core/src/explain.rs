//! Explain plans for lattice searches: fold a [`TraceEvent`] log into the
//! per-iteration accounting table of the paper's §4.2 (candidates, checks
//! by [`CheckSource`], marks, survivors, wall time) and render the searched
//! portion of the generalization lattice as Graphviz DOT, nodes colored by
//! verdict and shaped by frequency-set source.
//!
//! The text renderer is what `incognito-report explain` and the bench bins
//! print; the DOT output reproduces the paper's Figure 5/7 search diagrams
//! for any run.

use std::fmt::Write as _;
use std::time::Duration;

use incognito_hierarchy::LevelNo;

use crate::trace::{spec_label, CheckSource, TraceEvent};
use crate::SearchStats;

/// Per-source check counts of one iteration, indexed by [`CheckSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounts {
    /// Checks answered by scanning the base table.
    pub scan: usize,
    /// Checks answered by rolling up a parent's frequency set.
    pub rollup: usize,
    /// Checks answered from a family super-root scan (§3.3.1).
    pub superroot: usize,
    /// Checks answered from the zero-generalization cube (§3.3.2).
    pub cube: usize,
}

impl CheckCounts {
    fn bump(&mut self, via: CheckSource) {
        match via {
            CheckSource::TableScan => self.scan += 1,
            CheckSource::Rollup => self.rollup += 1,
            CheckSource::SuperRoot => self.superroot += 1,
            CheckSource::Cube => self.cube += 1,
        }
    }

    /// Total checks across all sources.
    pub fn total(&self) -> usize {
        self.scan + self.rollup + self.superroot + self.cube
    }

    fn add(&mut self, o: &CheckCounts) {
        self.scan += o.scan;
        self.rollup += o.rollup;
        self.superroot += o.superroot;
        self.cube += o.cube;
    }
}

/// One subset-size iteration of the folded search plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IterationRow {
    /// Subset size `i`.
    pub arity: usize,
    /// Candidate nodes in `Cᵢ`.
    pub candidates: usize,
    /// Edges in `Eᵢ`.
    pub edges: usize,
    /// Checks by frequency-set source.
    pub checks: CheckCounts,
    /// Nodes marked via the generalization property.
    pub marked: usize,
    /// Nodes that survived (`|Sᵢ|`).
    pub survivors: usize,
    /// Iteration wall time, when [`ExplainPlan::with_timings`] supplied it.
    pub wall: Option<Duration>,
}

/// A search plan folded from a [`TraceEvent`] log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplainPlan {
    /// One row per iteration, in search order.
    pub rows: Vec<IterationRow>,
}

impl ExplainPlan {
    /// Fold an event log into per-iteration rows. Events before the first
    /// `IterationStart` (there are none in well-formed logs) are ignored.
    pub fn from_events(events: &[TraceEvent]) -> ExplainPlan {
        let mut rows: Vec<IterationRow> = Vec::new();
        for e in events {
            match e {
                TraceEvent::IterationStart { arity, candidates, edges } => {
                    rows.push(IterationRow {
                        arity: *arity,
                        candidates: *candidates,
                        edges: *edges,
                        ..IterationRow::default()
                    });
                }
                TraceEvent::Checked { via, .. } => {
                    if let Some(row) = rows.last_mut() {
                        row.checks.bump(*via);
                    }
                }
                TraceEvent::Marked { .. } => {
                    if let Some(row) = rows.last_mut() {
                        row.marked += 1;
                    }
                }
                TraceEvent::IterationEnd { survivors } => {
                    if let Some(row) = rows.last_mut() {
                        row.survivors = *survivors;
                    }
                }
            }
        }
        ExplainPlan { rows }
    }

    /// Attach per-iteration wall times from `stats` (matched by position).
    pub fn with_timings(mut self, stats: &SearchStats) -> ExplainPlan {
        for (row, it) in self.rows.iter_mut().zip(&stats.iterations) {
            row.wall = Some(it.wall);
        }
        self
    }

    /// Render the plan as an aligned text table with a totals row — the
    /// paper's per-phase accounting as a terminal-friendly explain plan.
    pub fn render_text(&self) -> String {
        let headers = [
            "iter", "cands", "edges", "scan", "rollup", "sroot", "cube", "marked", "surv",
            "wall",
        ];
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len() + 1);
        let mut totals = IterationRow::default();
        for row in &self.rows {
            cells.push(vec![
                row.arity.to_string(),
                row.candidates.to_string(),
                row.edges.to_string(),
                row.checks.scan.to_string(),
                row.checks.rollup.to_string(),
                row.checks.superroot.to_string(),
                row.checks.cube.to_string(),
                row.marked.to_string(),
                row.survivors.to_string(),
                row.wall.map_or_else(|| "-".to_owned(), fmt_duration),
            ]);
            totals.candidates += row.candidates;
            totals.edges += row.edges;
            totals.checks.add(&row.checks);
            totals.marked += row.marked;
            if let Some(w) = row.wall {
                totals.wall = Some(totals.wall.unwrap_or_default() + w);
            }
        }
        cells.push(vec![
            "total".to_owned(),
            totals.candidates.to_string(),
            totals.edges.to_string(),
            totals.checks.scan.to_string(),
            totals.checks.rollup.to_string(),
            totals.checks.superroot.to_string(),
            totals.checks.cube.to_string(),
            totals.marked.to_string(),
            self.rows.last().map_or(0, |r| r.survivors).to_string(),
            totals.wall.map_or_else(|| "-".to_owned(), fmt_duration),
        ]);

        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in headers.iter().enumerate() {
            let _ = write!(out, "{}{:>w$}", if i == 0 { "" } else { "  " }, h, w = widths[i]);
        }
        out.push('\n');
        for (ri, row) in cells.iter().enumerate() {
            if ri + 1 == cells.len() {
                let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(rule));
                out.push('\n');
            }
            for (i, c) in row.iter().enumerate() {
                let _ =
                    write!(out, "{}{:>w$}", if i == 0 { "" } else { "  " }, c, w = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Render the searched lattice as Graphviz DOT: one cluster per iteration,
/// checked nodes colored by verdict (green = anonymous, salmon = failed),
/// marked nodes light blue, shapes by [`CheckSource`], and dashed edges
/// from each marked node back to the node that implied it.
pub fn render_dot(events: &[TraceEvent]) -> String {
    let mut out = String::from("digraph search {\n  rankdir=BT;\n  node [fontsize=10];\n");
    let mut iter = 0usize;
    let mut open = false;
    // DOT ids must be stable across iterations: prefix with the iteration.
    let node_id = |iter: usize, spec: &[(usize, LevelNo)]| -> String {
        format!("\"i{}_{}\"", iter, spec_label(spec))
    };
    for e in events {
        match e {
            TraceEvent::IterationStart { arity, .. } => {
                if open {
                    out.push_str("  }\n");
                }
                iter = *arity;
                open = true;
                let _ = write!(
                    out,
                    "  subgraph cluster_{iter} {{\n    label=\"iteration {iter}\";\n"
                );
            }
            TraceEvent::Checked { spec, via, anonymous } => {
                let color = if *anonymous { "palegreen" } else { "lightsalmon" };
                let shape = match via {
                    CheckSource::TableScan => "box",
                    CheckSource::Rollup => "ellipse",
                    CheckSource::SuperRoot => "hexagon",
                    CheckSource::Cube => "diamond",
                };
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\\n{}\", style=filled, fillcolor={}, shape={}];",
                    node_id(iter, spec),
                    spec_label(spec),
                    via.as_str(),
                    color,
                    shape,
                );
            }
            TraceEvent::Marked { spec, implied_by } => {
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\\nmarked\", style=filled, fillcolor=lightblue];",
                    node_id(iter, spec),
                    spec_label(spec),
                );
                let _ = writeln!(
                    out,
                    "    {} -> {} [style=dashed];",
                    node_id(iter, implied_by),
                    node_id(iter, spec),
                );
            }
            TraceEvent::IterationEnd { .. } => {}
        }
    }
    if open {
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incognito::incognito_traced;
    use crate::testutil::patients;
    use crate::Config;

    #[test]
    fn plan_matches_stats() {
        let t = patients();
        let (r, events) = incognito_traced(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        let plan = ExplainPlan::from_events(&events).with_timings(r.stats());
        assert_eq!(plan.rows.len(), r.stats().iterations.len());
        for (row, it) in plan.rows.iter().zip(&r.stats().iterations) {
            assert_eq!(row.arity, it.arity);
            assert_eq!(row.candidates, it.candidates);
            assert_eq!(row.checks.total(), it.nodes_checked);
            assert_eq!(row.marked, it.nodes_marked);
            assert_eq!(row.survivors, it.survivors);
            assert_eq!(row.wall, Some(it.wall));
        }
        let total_scans: usize = plan.rows.iter().map(|r| r.checks.scan).sum();
        assert_eq!(total_scans, r.stats().freq_from_scan);
    }

    #[test]
    fn text_table_is_aligned_and_totals() {
        let t = patients();
        let (r, events) = incognito_traced(&t, &[1, 2], &Config::new(2)).unwrap();
        let text = ExplainPlan::from_events(&events).with_timings(r.stats()).render_text();
        let lines: Vec<&str> = text.lines().collect();
        // header + 2 iterations + rule + total
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("iter"));
        assert!(lines[3].starts_with('-'));
        assert!(lines[4].starts_with("total"));
        // Every row is equally wide (alignment; char count — µs is multibyte).
        let width = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == width));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let t = patients();
        let (_r, events) = incognito_traced(&t, &[1, 2], &Config::new(2)).unwrap();
        let dot = render_dot(&events);
        assert!(dot.starts_with("digraph search {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("subgraph cluster_").count(), 2);
        assert!(dot.contains("fillcolor=palegreen"));
        assert!(dot.contains("fillcolor=lightsalmon"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("style=dashed"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
