//! The frequency-set provider: bounded-memory Incognito.
//!
//! Every engine in this crate (Basic, Super-roots, Cube, and the
//! bottom-up baselines) obtains its frequency sets through a
//! [`FreqProvider`], which transparently degrades to the disk-backed
//! [`ExternalFrequencySet`] whenever the process's live bytes — measured
//! by the `incognito_obs::mem` tracking allocator — exceed the
//! [`Config::memory_budget`]. This is the paper's §7 future work
//! ("the case where … the intermediate frequency tables do not fit in
//! main memory") made concrete: the search is unchanged, the *plans* are
//! unchanged (so counters stay byte-identical to the in-memory run), and
//! only the representation behind each [`FreqHandle`] differs.
//!
//! The key property preserved out-of-core is the paper's §3 Rollup: a
//! spilled parent's child is derived partition-by-partition on disk
//! ([`ExternalFrequencySet::rollup`]) instead of falling back to a base
//! table rescan. When the budget regains headroom for a derived set's
//! estimated materialized size, the set upgrades to the in-memory form
//! (`table.spill.upgrades` counts these), so a transient spike doesn't
//! pin the rest of the search on disk.
//!
//! Spill files go under [`Config::spill_dir`] (builder
//! [`Config::with_spill_dir`], environment default
//! `INCOGNITO_SPILL_DIR`), falling back to the OS temp directory — which
//! on Linux is frequently a RAM-backed tmpfs, where spilling still
//! consumes physical memory; redirect it when the budget matters.

use std::path::PathBuf;

use incognito_hierarchy::LevelNo;
use incognito_table::{ExternalFrequencySet, FrequencySet, GroupSpec, Schema, Table};

use crate::{AlgoError, Config};

/// Spill fan-out for provider-built external sets: enough partitions that
/// one partition's distinct groups stay small, few enough that the
/// per-partition write buffers stay useful.
const SPILL_PARTITIONS: usize = 64;

/// A frequency set in whichever representation the memory budget allowed:
/// fully in memory, or spilled to hash partitions on disk.
///
/// All predicates answer identically in both representations (the spilled
/// form streams one partition at a time); the `Result` on the accessors
/// carries the spill path's IO errors, which the in-memory form can never
/// produce.
pub enum FreqHandle {
    /// The ordinary in-memory frequency set.
    Mem(FrequencySet),
    /// A disk-backed frequency set (over budget at creation time).
    Ext(ExternalFrequencySet),
}

impl FreqHandle {
    /// The grouping spec.
    pub fn spec(&self) -> &GroupSpec {
        match self {
            FreqHandle::Mem(f) => f.spec(),
            FreqHandle::Ext(e) => e.spec(),
        }
    }

    /// Total tuples counted.
    pub fn total(&self) -> u64 {
        match self {
            FreqHandle::Mem(f) => f.total(),
            FreqHandle::Ext(e) => e.total(),
        }
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> Result<usize, AlgoError> {
        match self {
            FreqHandle::Mem(f) => Ok(f.num_groups()),
            FreqHandle::Ext(e) => Ok(e.num_groups()?),
        }
    }

    /// The K-Anonymity Property.
    pub fn is_k_anonymous(&self, k: u64) -> Result<bool, AlgoError> {
        match self {
            FreqHandle::Mem(f) => Ok(f.is_k_anonymous(k)),
            FreqHandle::Ext(e) => Ok(e.is_k_anonymous(k)?),
        }
    }

    /// K-anonymity modulo at most `max_suppress` suppressed tuples (§2.1).
    pub fn is_k_anonymous_with_suppression(
        &self,
        k: u64,
        max_suppress: u64,
    ) -> Result<bool, AlgoError> {
        match self {
            FreqHandle::Mem(f) => Ok(f.is_k_anonymous_with_suppression(k, max_suppress)),
            FreqHandle::Ext(e) => Ok(e.is_k_anonymous_with_suppression(k, max_suppress)?),
        }
    }

    /// Tuples in groups smaller than `k` (the suppression tally).
    pub fn tuples_below(&self, k: u64) -> Result<u64, AlgoError> {
        match self {
            FreqHandle::Mem(f) => Ok(f.tuples_below(k)),
            FreqHandle::Ext(e) => Ok(e.tuples_below(k)?),
        }
    }

    /// Approximate heap bytes held by this handle. A spilled set's groups
    /// live on disk, so only its bookkeeping counts (reported as zero —
    /// it is negligible next to any in-memory set).
    pub fn resident_bytes(&self) -> u64 {
        match self {
            FreqHandle::Mem(f) => f.resident_bytes(),
            FreqHandle::Ext(_) => 0,
        }
    }

    /// True when the set lives on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self, FreqHandle::Ext(_))
    }

    /// Borrow the in-memory representation, if that is what this is.
    pub fn as_mem(&self) -> Option<&FrequencySet> {
        match self {
            FreqHandle::Mem(f) => Some(f),
            FreqHandle::Ext(_) => None,
        }
    }
}

/// The provider every engine routes frequency-set construction through.
///
/// Holds the base table, the memory budget, and the spill location; it is
/// `Sync`, so wave-parallel engines can call it from pool workers (each
/// call builds an independent set — the provider itself carries no
/// mutable state).
pub struct FreqProvider<'t> {
    table: &'t Table,
    budget: Option<u64>,
    spill_root: PathBuf,
}

impl<'t> FreqProvider<'t> {
    /// A provider over `table` honoring `cfg.memory_budget`. Spill files
    /// go under `cfg.spill_dir` — falling back to the OS temp directory,
    /// which on Linux is frequently a RAM-backed tmpfs; point
    /// [`Config::with_spill_dir`] (or `INCOGNITO_SPILL_DIR`) at a real
    /// filesystem when the budget matters. Each set spills into its own
    /// collision-free subdirectory, removed when the set drops.
    pub fn new(table: &'t Table, cfg: &Config) -> Self {
        FreqProvider {
            table,
            budget: cfg.memory_budget,
            spill_root: cfg.spill_dir.clone().unwrap_or_else(std::env::temp_dir),
        }
    }

    /// The base table this provider scans.
    pub fn table(&self) -> &'t Table {
        self.table
    }

    /// True while the process's live bytes exceed the budget — the next
    /// set built through this provider will spill.
    pub fn over_budget(&self) -> bool {
        self.budget
            .is_some_and(|b| incognito_obs::mem::live_bytes() > b)
    }

    /// Scan the base table for `spec`'s frequency set, spilling when over
    /// budget. `threads > 1` engages the row-split parallel scan (only
    /// meaningful for the in-memory representation).
    pub fn scan(&self, spec: &GroupSpec, threads: usize) -> Result<FreqHandle, AlgoError> {
        if self.over_budget() {
            let ext =
                ExternalFrequencySet::build(self.table, spec, SPILL_PARTITIONS, &self.spill_root)?;
            Ok(FreqHandle::Ext(ext))
        } else if threads > 1 {
            Ok(FreqHandle::Mem(self.table.frequency_set_parallel(spec, threads)?))
        } else {
            Ok(FreqHandle::Mem(self.table.frequency_set(spec)?))
        }
    }

    /// The Rollup Property through the budget: an in-memory parent rolls
    /// up in memory; a spilled parent rolls up partition-by-partition on
    /// disk, then upgrades to the in-memory form if the budget has
    /// headroom for the child's estimated materialized size.
    pub fn rollup(
        &self,
        parent: &FreqHandle,
        schema: &Schema,
        target: &[LevelNo],
    ) -> Result<FreqHandle, AlgoError> {
        match parent {
            FreqHandle::Mem(f) => Ok(FreqHandle::Mem(f.rollup(schema, target)?)),
            FreqHandle::Ext(e) => {
                let child = e.rollup(schema, target, &self.spill_root)?;
                self.maybe_upgrade(child)
            }
        }
    }

    /// The Subset Property through the budget (Cube Incognito's
    /// projections), same upgrade policy as [`FreqProvider::rollup`].
    pub fn project(&self, parent: &FreqHandle, keep: &[usize]) -> Result<FreqHandle, AlgoError> {
        match parent {
            FreqHandle::Mem(f) => Ok(FreqHandle::Mem(f.project(keep)?)),
            FreqHandle::Ext(e) => {
                let child = e.project(keep, &self.spill_root)?;
                self.maybe_upgrade(child)
            }
        }
    }

    /// Upgrade a derived spilled child to the in-memory form only when
    /// the budget has headroom for its *materialized* size, estimated
    /// from the child's spilled footprint. A bare [`Self::over_budget`]
    /// sample is not enough: it is a point-in-time reading that says
    /// nothing about how large the child will be once materialized, so a
    /// big child could blow far past the budget right after the check
    /// passed. The estimate is an upper bound, so admission errs toward
    /// keeping the child on disk.
    fn maybe_upgrade(&self, child: ExternalFrequencySet) -> Result<FreqHandle, AlgoError> {
        let fits = match self.budget {
            None => true,
            Some(b) => incognito_obs::mem::live_bytes()
                .saturating_add(child.estimated_resident_bytes())
                <= b,
        };
        if fits {
            Ok(FreqHandle::Mem(child.into_frequency_set()?))
        } else {
            Ok(FreqHandle::Ext(child))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::patients;

    fn handle_rows(h: &FreqHandle, schema: &std::sync::Arc<Schema>) -> Vec<(Vec<String>, u64)> {
        match h {
            FreqHandle::Mem(f) => f.to_labeled_rows(schema),
            FreqHandle::Ext(_) => panic!("expected in-memory handle"),
        }
    }

    #[test]
    fn unlimited_budget_stays_in_memory() {
        let t = patients();
        let cfg = Config::new(2).with_unlimited_memory();
        let p = FreqProvider::new(&t, &cfg);
        assert!(!p.over_budget());
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let h = p.scan(&spec, 1).unwrap();
        assert!(!h.is_spilled());
    }

    #[test]
    fn zero_budget_spills_everything_with_identical_answers() {
        let t = patients();
        let cfg = Config::new(2).with_memory_budget(0);
        let p = FreqProvider::new(&t, &cfg);
        assert!(p.over_budget(), "live bytes are always above a zero budget");
        let spec = GroupSpec::ground(&[0, 1, 2]).unwrap();
        let h = p.scan(&spec, 1).unwrap();
        assert!(h.is_spilled());
        let mem = t.frequency_set(&spec).unwrap();
        assert_eq!(h.total(), mem.total());
        assert_eq!(h.num_groups().unwrap(), mem.num_groups());
        for k in [1, 2, 3, 10] {
            assert_eq!(h.is_k_anonymous(k).unwrap(), mem.is_k_anonymous(k));
            assert_eq!(h.tuples_below(k).unwrap(), mem.tuples_below(k));
        }

        // Spilled rollup agrees with the in-memory rollup.
        let schema = t.schema();
        let target: Vec<_> = spec
            .parts()
            .iter()
            .map(|&(a, _)| schema.hierarchy(a).height())
            .collect();
        let rolled = p.rollup(&h, schema, &target).unwrap();
        assert!(rolled.is_spilled(), "still over budget, child stays on disk");
        let mem_rolled = mem.rollup(schema, &target).unwrap();
        assert_eq!(rolled.num_groups().unwrap(), mem_rolled.num_groups());
        assert_eq!(rolled.tuples_below(5).unwrap(), mem_rolled.tuples_below(5));
    }

    #[test]
    fn spill_dir_config_redirects_spill_files() {
        let t = patients();
        let root = std::env::temp_dir()
            .join(format!("incognito-spill-dir-test-{}", std::process::id()));
        let cfg = Config::new(2).with_memory_budget(0).with_spill_dir(&root);
        let p = FreqProvider::new(&t, &cfg);
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        let h = p.scan(&spec, 1).unwrap();
        assert!(h.is_spilled());
        let subdirs = std::fs::read_dir(&root)
            .expect("configured spill root was created")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("incognito-spill-"))
            .count();
        assert_eq!(subdirs, 1, "the set spills under the configured root");
        drop(h);
        assert_eq!(
            std::fs::read_dir(&root).unwrap().count(),
            0,
            "dropping the set removes its spill subdirectory"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn upgrade_requires_headroom_for_materialized_size_not_just_budget() {
        use incognito_data::{adults, AdultsConfig};
        // A wide ground spec keeps the group count near the row count, so
        // the same-level rollup below produces a child whose estimated
        // in-memory footprint (megabytes) dwarfs the headroom granted.
        let t = adults(&AdultsConfig { rows: 20_000, seed: 13 });
        let spec = GroupSpec::ground(&[0, 1, 2, 3]).unwrap();
        let ext = ExternalFrequencySet::build(&t, &spec, 8, &std::env::temp_dir()).unwrap();
        let parent = FreqHandle::Ext(ext);
        // Live bytes sit under this budget (the pre-fix point-in-time
        // check would admit the upgrade), but the headroom is far below
        // the child's estimated materialized size.
        let budget = incognito_obs::mem::live_bytes() + (256 << 10);
        let cfg = Config::new(2).with_memory_budget(budget);
        let p = FreqProvider::new(&t, &cfg);
        assert!(!p.over_budget(), "precondition: the sample alone says 'under budget'");
        let child = p.rollup(&parent, t.schema(), &[0, 0, 0, 0]).unwrap();
        assert!(
            child.is_spilled(),
            "a child too big for the remaining headroom must stay on disk"
        );
    }

    #[test]
    fn rollup_of_spilled_parent_upgrades_when_back_under_budget() {
        let t = patients();
        let spec = GroupSpec::ground(&[0, 1]).unwrap();
        // Build the spilled parent directly, then hand it to a provider
        // with a budget far above current usage: the derived child must
        // come back in memory, identical to the in-memory rollup.
        let ext = ExternalFrequencySet::build(&t, &spec, 4, &std::env::temp_dir()).unwrap();
        let parent = FreqHandle::Ext(ext);
        let generous = incognito_obs::mem::live_bytes() + (1 << 30);
        let cfg = Config::new(2).with_memory_budget(generous);
        let p = FreqProvider::new(&t, &cfg);
        let child = p.rollup(&parent, t.schema(), &[1, 1]).unwrap();
        assert!(!child.is_spilled(), "under budget, rollup upgrades to memory");
        let mem_child = t.frequency_set(&spec).unwrap().rollup(t.schema(), &[1, 1]).unwrap();
        assert_eq!(
            handle_rows(&child, t.schema()),
            mem_child.to_labeled_rows(t.schema())
        );
    }
}
