//! The exhaustive bottom-up breadth-first baseline of §2.2, with and
//! without rollup aggregation.
//!
//! This is the algorithm Incognito is benchmarked against in Figure 10: a
//! breadth-first traversal of the complete multi-attribute generalization
//! lattice over the *full* quasi-identifier, checking k-anonymity at every
//! node (no a-priori subset pruning, no generalization-property marking —
//! it is run exhaustively to produce all k-anonymous generalizations, as in
//! the paper's experiments). The `rollup` flag chooses between scanning the
//! table per node and rolling up "the frequency set of (one of) the
//! generalization(s) of which the node is a direct generalization".

use std::collections::VecDeque;

use incognito_table::fxhash::FxHashMap;
use incognito_table::Table;
use incognito_lattice::{CandidateGraph, NodeId};

use crate::error::validate_qi;
use crate::provider::{FreqHandle, FreqProvider};
use crate::{AlgoError, AnonymizationResult, Config, Generalization, IterationStats, SearchStats};

/// Exhaustive bottom-up BFS over the full-QI lattice. Returns all
/// k-anonymous full-domain generalizations. `cfg.rollup` selects the
/// "with rollup" refinement of §2.2.
pub fn bottom_up_search(
    table: &Table,
    qi: &[usize],
    cfg: &Config,
) -> Result<AnonymizationResult, AlgoError> {
    let schema = table.schema().clone();
    let qi = validate_qi(&schema, qi, cfg.k)?;
    let _search_span = incognito_obs::trace::span("search")
        .arg("algo", if cfg.rollup { "bottom_up_rollup" } else { "bottom_up" })
        .arg("k", cfg.k)
        .arg("qi_arity", qi.len() as u64);
    let search_start = std::time::Instant::now();
    let lattice = CandidateGraph::full_lattice(&schema, &qi);
    let num = lattice.num_nodes();

    let mut stats = SearchStats::default();
    stats.timings.candidate_gen = search_start.elapsed();
    let mut it_stats = IterationStats {
        arity: qi.len(),
        candidates: num,
        edges: lattice.num_edges(),
        ..IterationStats::default()
    };

    let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); num];
    for &(s, e) in lattice.edges() {
        in_adj[e as usize].push(s);
    }
    // BFS from the bottom node in height order; a full lattice has exactly
    // one root (the all-zeros node), and BFS order guarantees every
    // non-root is visited after at least one direct specialization.
    let mut order: VecDeque<NodeId> = VecDeque::new();
    let mut seen = vec![false; num];
    for r in lattice.roots() {
        order.push_back(r);
        seen[r as usize] = true;
    }

    let mut anonymous = vec![false; num];
    let provider = FreqProvider::new(table, cfg);
    // Cache for rollup: freed once all direct generalizations are computed.
    let mut cache: FxHashMap<NodeId, FreqHandle> = FxHashMap::default();
    let mut pending_out: Vec<u32> =
        (0..num).map(|id| lattice.direct_generalizations(id as NodeId).len() as u32).collect();

    while let Some(node) = order.pop_front() {
        let mut check_span = incognito_obs::trace::span("check");
        if check_span.is_active() {
            check_span.set_arg("node", crate::trace::spec_label(&lattice.node(node).parts));
        }
        let spec = lattice.node(node).to_group_spec()?;
        let freq = if cfg.rollup {
            match in_adj[node as usize].iter().find_map(|&p| cache.get(&p)) {
                Some(pfreq) => {
                    stats.freq_from_rollup += 1;
                    let t0 = std::time::Instant::now();
                    let f = provider.rollup(pfreq, &schema, &lattice.node(node).levels())?;
                    stats.timings.rollup += t0.elapsed();
                    f
                }
                None => {
                    stats.freq_from_scan += 1;
                    stats.table_scans += 1;
                    let t0 = std::time::Instant::now();
                    let f = provider.scan(&spec, cfg.threads)?;
                    stats.timings.scan += t0.elapsed();
                    f
                }
            }
        } else {
            stats.freq_from_scan += 1;
            stats.table_scans += 1;
            let t0 = std::time::Instant::now();
            let f = provider.scan(&spec, cfg.threads)?;
            stats.timings.scan += t0.elapsed();
            f
        };
        it_stats.nodes_checked += 1;
        anonymous[node as usize] = cfg.passes_handle(&freq)?;
        check_span.set_arg("anonymous", anonymous[node as usize]);

        for &g in lattice.direct_generalizations(node) {
            if !seen[g as usize] {
                seen[g as usize] = true;
                order.push_back(g);
            }
        }
        if cfg.rollup {
            if pending_out[node as usize] > 0 {
                cache.insert(node, freq);
            }
            for &p in &in_adj[node as usize] {
                pending_out[p as usize] -= 1;
                if pending_out[p as usize] == 0 {
                    cache.remove(&p);
                }
            }
        }
    }

    it_stats.survivors = anonymous.iter().filter(|&&a| a).count();
    it_stats.wall = search_start.elapsed();
    stats.timings.total = search_start.elapsed();
    stats.push_iteration(it_stats);

    let generalizations: Vec<Generalization> = anonymous
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(id, _)| Generalization { levels: lattice.node(id as NodeId).levels() })
        .collect();
    Ok(AnonymizationResult::new(qi, cfg.k, cfg.max_suppress, generalizations, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incognito;
    use crate::testutil::{exhaustive_truth, patients};

    #[test]
    fn matches_exhaustive_truth_with_and_without_rollup() {
        let t = patients();
        for k in [1, 2, 3, 6] {
            for rollup in [true, false] {
                let cfg = Config::new(k).with_rollup(rollup);
                let r = bottom_up_search(&t, &[0, 1, 2], &cfg).unwrap();
                let got: Vec<Vec<u8>> =
                    r.generalizations().iter().map(|g| g.levels.clone()).collect();
                assert_eq!(got, exhaustive_truth(&t, &[0, 1, 2], &cfg), "k={k} rollup={rollup}");
            }
        }
    }

    #[test]
    fn checks_every_lattice_node() {
        // Bottom-up is exhaustive: 2 × 2 × 3 = 12 nodes for ⟨B, S, Z⟩.
        let t = patients();
        let r = bottom_up_search(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        assert_eq!(r.stats().nodes_checked(), 12);
        assert_eq!(r.stats().iterations[0].candidates, 12);
    }

    #[test]
    fn rollup_reduces_scans_to_one() {
        let t = patients();
        let with = bottom_up_search(&t, &[0, 1, 2], &Config::new(2)).unwrap();
        let without =
            bottom_up_search(&t, &[0, 1, 2], &Config::new(2).with_rollup(false)).unwrap();
        assert_eq!(with.stats().table_scans, 1);
        assert_eq!(without.stats().table_scans, 12);
        assert_eq!(with.generalizations(), without.generalizations());
    }

    #[test]
    fn agrees_with_incognito() {
        let t = patients();
        for k in [2, 3] {
            let cfg = Config::new(k);
            let a = bottom_up_search(&t, &[1, 2], &cfg).unwrap();
            let b = incognito(&t, &[1, 2], &cfg).unwrap();
            assert_eq!(a.generalizations(), b.generalizations());
        }
    }

    #[test]
    fn suppression_is_honored() {
        let t = patients();
        let cfg = Config::new(2).with_suppression(2);
        let r = bottom_up_search(&t, &[1, 2], &cfg).unwrap();
        assert!(r.contains(&[0, 0]));
        assert_eq!(
            r.generalizations(),
            incognito(&t, &[1, 2], &cfg).unwrap().generalizations()
        );
    }
}
