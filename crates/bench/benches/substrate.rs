//! Microbenchmarks of the table substrate: the operations whose costs
//! drive the Figure 10 curves — base-table frequency-set scans, rollup
//! (the §3 Rollup Property), and subset projection (Cube Incognito's
//! building block). Rollup and projection should beat rescanning by a wide
//! margin, which is exactly why the paper's optimizations pay off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use incognito_data::{adults, AdultsConfig};
use incognito_table::GroupSpec;

fn bench_frequency_scan(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let mut group = c.benchmark_group("freq_scan");
    for n in [2usize, 4, 6] {
        let spec = GroupSpec::ground(&(0..n).collect::<Vec<_>>()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| black_box(table.frequency_set(spec).unwrap()));
        });
    }
    group.finish();
}

fn bench_rollup_vs_rescan(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let schema = table.schema().clone();
    // Ground frequency set over ⟨Age, Gender, Marital⟩; target one level up
    // on Age.
    let ground = table
        .frequency_set(&GroupSpec::ground(&[0, 1, 3]).unwrap())
        .unwrap();
    let target = [1u8, 0, 0];

    let mut group = c.benchmark_group("rollup_vs_rescan");
    group.bench_function("rollup", |b| {
        b.iter(|| black_box(ground.rollup(&schema, &target).unwrap()));
    });
    let rescan_spec = GroupSpec::new(vec![(0, 1), (1, 0), (3, 0)]).unwrap();
    group.bench_function("rescan", |b| {
        b.iter(|| black_box(table.frequency_set(&rescan_spec).unwrap()));
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let wide = table
        .frequency_set(&GroupSpec::ground(&[0, 1, 2, 3, 4]).unwrap())
        .unwrap();
    let mut group = c.benchmark_group("cube_projection");
    group.bench_function("project_5_to_3", |b| {
        b.iter(|| black_box(wide.project(&[0, 1, 3]).unwrap()));
    });
    let narrow_spec = GroupSpec::ground(&[0, 1, 3]).unwrap();
    group.bench_function("scan_3_direct", |b| {
        b.iter(|| black_box(table.frequency_set(&narrow_spec).unwrap()));
    });
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let table = incognito_data::lands_end(&incognito_data::LandsEndConfig {
        rows: 300_000,
        seed: 1,
    });
    let spec = GroupSpec::ground(&[0, 1, 2, 3]).unwrap();
    let mut group = c.benchmark_group("parallel_scan_300k");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(table.frequency_set_parallel(&spec, t).unwrap()));
        });
    }
    group.finish();
}

fn bench_external_vs_in_memory(c: &mut Criterion) {
    // The §7 out-of-core pipeline vs the in-memory scan: the spill costs a
    // constant factor; its payoff is bounded peak memory, not speed.
    use incognito_table::ExternalFrequencySet;
    let table = incognito_data::lands_end(&incognito_data::LandsEndConfig {
        rows: 100_000,
        seed: 1,
    });
    let spec = GroupSpec::ground(&[0, 2, 3]).unwrap();
    let spill = std::env::temp_dir();
    let mut group = c.benchmark_group("external_freq_100k");
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| black_box(table.frequency_set(&spec).unwrap().is_k_anonymous(10)));
    });
    group.bench_function("spill_16_partitions", |b| {
        b.iter(|| {
            let ext = ExternalFrequencySet::build(&table, &spec, 16, &spill).unwrap();
            black_box(ext.is_k_anonymous(10).unwrap())
        });
    });
    group.finish();
}

fn bench_generalize_view(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let levels = [2u8, 1, 0, 1, 1, 0, 0, 0, 0];
    c.bench_function("materialize_generalized_view", |b| {
        b.iter(|| black_box(table.generalize(&levels).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frequency_scan, bench_rollup_vs_rescan, bench_projection,
        bench_parallel_scan, bench_external_vs_in_memory, bench_generalize_view
}
criterion_main!(benches);
