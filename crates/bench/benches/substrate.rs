//! Microbenchmarks of the table substrate: the operations whose costs
//! drive the Figure 10 curves — base-table frequency-set scans, rollup
//! (the §3 Rollup Property), and subset projection (Cube Incognito's
//! building block). Rollup and projection should beat rescanning by a wide
//! margin, which is exactly why the paper's optimizations pay off.
//!
//! Plain `fn main()` harness (see `incognito_bench::micro`); run with
//! `cargo bench -p incognito-bench --bench substrate`.

use incognito_bench::micro::Micro;
use incognito_data::{adults, AdultsConfig};
use incognito_table::GroupSpec;

fn bench_frequency_scan() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let group = Micro::group("freq_scan").samples(20);
    for n in [2usize, 4, 6] {
        let spec = GroupSpec::ground(&(0..n).collect::<Vec<_>>()).unwrap();
        group.case(&format!("{n}_attrs"), || table.frequency_set(&spec).unwrap());
    }
}

fn bench_rollup_vs_rescan() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let schema = table.schema().clone();
    // Ground frequency set over ⟨Age, Gender, Marital⟩; target one level up
    // on Age.
    let ground = table.frequency_set(&GroupSpec::ground(&[0, 1, 3]).unwrap()).unwrap();
    let target = [1u8, 0, 0];

    let group = Micro::group("rollup_vs_rescan").samples(20);
    group.case("rollup", || ground.rollup(&schema, &target).unwrap());
    let rescan_spec = GroupSpec::new(vec![(0, 1), (1, 0), (3, 0)]).unwrap();
    group.case("rescan", || table.frequency_set(&rescan_spec).unwrap());
}

fn bench_projection() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let wide = table.frequency_set(&GroupSpec::ground(&[0, 1, 2, 3, 4]).unwrap()).unwrap();
    let group = Micro::group("cube_projection").samples(20);
    group.case("project_5_to_3", || wide.project(&[0, 1, 3]).unwrap());
    let narrow_spec = GroupSpec::ground(&[0, 1, 3]).unwrap();
    group.case("scan_3_direct", || table.frequency_set(&narrow_spec).unwrap());
}

fn bench_parallel_scan() {
    let table =
        incognito_data::lands_end(&incognito_data::LandsEndConfig { rows: 300_000, seed: 1 });
    let spec = GroupSpec::ground(&[0, 1, 2, 3]).unwrap();
    let group = Micro::group("parallel_scan_300k");
    for threads in [1usize, 2, 4, 8] {
        group.case(&format!("{threads}_threads"), || {
            table.frequency_set_parallel(&spec, threads).unwrap()
        });
    }
}

fn bench_external_vs_in_memory() {
    // The §7 out-of-core pipeline vs the in-memory scan: the spill costs a
    // constant factor; its payoff is bounded peak memory, not speed.
    use incognito_table::ExternalFrequencySet;
    let table =
        incognito_data::lands_end(&incognito_data::LandsEndConfig { rows: 100_000, seed: 1 });
    let spec = GroupSpec::ground(&[0, 2, 3]).unwrap();
    let spill = std::env::temp_dir();
    let group = Micro::group("external_freq_100k");
    group.case("in_memory", || table.frequency_set(&spec).unwrap().is_k_anonymous(10));
    group.case("spill_16_partitions", || {
        let ext = ExternalFrequencySet::build(&table, &spec, 16, &spill).unwrap();
        ext.is_k_anonymous(10).unwrap()
    });
}

fn bench_generalize_view() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let levels = [2u8, 1, 0, 1, 1, 0, 0, 0, 0];
    let group = Micro::group("materialize_generalized_view").samples(20);
    group.case("generalize", || table.generalize(&levels).unwrap());
}

fn main() {
    bench_frequency_scan();
    bench_rollup_vs_rescan();
    bench_projection();
    bench_parallel_scan();
    bench_external_vs_in_memory();
    bench_generalize_view();
}
