//! End-to-end algorithm benchmarks on the synthetic Adults data — the
//! microbench companion to the Figure 10 harness binaries, pinned at a
//! quasi-identifier size small enough for repeated sampling.
//!
//! Plain `fn main()` harness (see `incognito_bench::micro`); run with
//! `cargo bench -p incognito-bench --bench algorithms`.

use incognito_bench::micro::Micro;
use incognito_bench::Algo;
use incognito_data::{adults, AdultsConfig};

fn bench_algorithms() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let group = Micro::group("adults_qid5_k2");
    for algo in Algo::ALL {
        group.case(algo.label(), || algo.run(&table, &qi, 2));
    }
}

fn bench_k_sensitivity() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let group = Micro::group("incognito_k_sensitivity");
    for k in [2u64, 10, 50] {
        group.case(&format!("k{k}"), || Algo::BasicIncognito.run(&table, &qi, k));
    }
}

fn main() {
    bench_algorithms();
    bench_k_sensitivity();
}
