//! End-to-end algorithm benchmarks on the synthetic Adults data — the
//! Criterion companion to the Figure 10 harness binaries, pinned at a
//! quasi-identifier size small enough for statistical sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use incognito_bench::Algo;
use incognito_data::{adults, AdultsConfig};

fn bench_algorithms(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let mut group = c.benchmark_group("adults_qid5_k2");
    group.sample_size(10);
    for algo in Algo::ALL {
        group.bench_function(algo.label(), |b| {
            b.iter(|| black_box(algo.run(&table, &qi, 2)));
        });
    }
    group.finish();
}

fn bench_k_sensitivity(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let mut group = c.benchmark_group("incognito_k_sensitivity");
    group.sample_size(10);
    for k in [2u64, 10, 50] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| black_box(Algo::BasicIncognito.run(&table, &qi, k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_k_sensitivity);
criterion_main!(benches);
