//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A1 rollup** — Incognito with rollup-from-parent on vs. off
//!   (§4.2.1's "rollup goes a long way");
//! * **A2 a-priori pruning** — the prune phase on vs. off (Figure 7's
//!   pruned graph vs. the full join product);
//! * **A3 prune structure** — Apriori hash tree vs. flat hash set in the
//!   prune phase;
//! * **A4 super-roots** — root grouping on vs. off (§4.2.2's scan savings).
//!
//! Plain `fn main()` harness (see `incognito_bench::micro`); run with
//! `cargo bench -p incognito-bench --bench ablations`.

use incognito_bench::micro::Micro;
use incognito_core::{incognito, Config};
use incognito_data::{adults, AdultsConfig};
use incognito_lattice::{generate_next, CandidateGraph, PruneStrategy};

fn bench_rollup_ablation() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let group = Micro::group("ablation_rollup");
    group.case("with_rollup", || incognito(&table, &qi, &Config::new(2)).unwrap());
    group.case("without_rollup", || {
        incognito(&table, &qi, &Config::new(2).with_rollup(false)).unwrap()
    });
}

fn bench_apriori_ablation() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let group = Micro::group("ablation_apriori");
    group.case("with_prune", || incognito(&table, &qi, &Config::new(2)).unwrap());
    group.case("without_prune", || {
        incognito(&table, &qi, &Config::new(2).with_prune(PruneStrategy::None)).unwrap()
    });
}

fn bench_prune_structure() {
    // Isolate the candidate-generation step: all C2 nodes alive, generate
    // C3 with each membership structure.
    let table = adults(&AdultsConfig { rows: 1, seed: 1 });
    let schema = table.schema().clone();
    let qi: Vec<usize> = (0..9).collect();
    let c1 = CandidateGraph::initial(&schema, &qi);
    let c2 = generate_next(&c1, &vec![true; c1.num_nodes()], PruneStrategy::HashTree);
    // Kill a third of the nodes so the prune phase has real work.
    let alive: Vec<bool> = (0..c2.num_nodes()).map(|i| i % 3 != 0).collect();

    let group = Micro::group("ablation_prune_structure").samples(20);
    group.case("hash_tree", || generate_next(&c2, &alive, PruneStrategy::HashTree));
    group.case("hash_set", || generate_next(&c2, &alive, PruneStrategy::HashSet));
}

fn bench_superroots_ablation() {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let group = Micro::group("ablation_superroots");
    group.case("basic", || incognito(&table, &qi, &Config::new(2)).unwrap());
    group.case("superroots", || {
        incognito(&table, &qi, &Config::new(2).with_superroots(true)).unwrap()
    });
}

fn bench_materialization_ablation() {
    // §7 future work: repeated anonymization (varying k) with and without
    // a materialized frequency-set store.
    use incognito_core::materialize::{incognito_with_store, FreqStore, MaterializationPolicy};
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let ks = [2u64, 5, 10, 25, 50];
    let group = Micro::group("ablation_materialization");
    group.case("rescan_each_k", || {
        for &k in &ks {
            std::hint::black_box(incognito(&table, &qi, &Config::new(k)).unwrap());
        }
    });
    group.case("zero_cube_store", || {
        let mut store = FreqStore::build(&table, &qi, MaterializationPolicy::ZeroCube).unwrap();
        for &k in &ks {
            std::hint::black_box(
                incognito_with_store(&table, &qi, &Config::new(k), &mut store).unwrap(),
            );
        }
    });
}

fn bench_sql_substrate_overhead() {
    // Native columnar engine vs the star-schema SQL path (the paper's DB2
    // formulation): same algorithm, generic relational substrate.
    let table = adults(&AdultsConfig { rows: 5_000, seed: 1 });
    let qi: Vec<usize> = vec![0, 1, 3];
    let group = Micro::group("ablation_sql_substrate");
    group.case("native_columnar", || incognito(&table, &qi, &Config::new(5)).unwrap());
    group.case("sql_star_schema", || {
        incognito_star::incognito_sql(&table, &qi, &Config::new(5)).unwrap()
    });
}

fn main() {
    bench_rollup_ablation();
    bench_apriori_ablation();
    bench_prune_structure();
    bench_superroots_ablation();
    bench_materialization_ablation();
    bench_sql_substrate_overhead();
}
