//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A1 rollup** — Incognito with rollup-from-parent on vs. off
//!   (§4.2.1's "rollup goes a long way");
//! * **A2 a-priori pruning** — the prune phase on vs. off (Figure 7's
//!   pruned graph vs. the full join product);
//! * **A3 prune structure** — Apriori hash tree vs. flat hash set in the
//!   prune phase;
//! * **A4 super-roots** — root grouping on vs. off (§4.2.2's scan savings).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use incognito_core::{incognito, Config};
use incognito_data::{adults, AdultsConfig};
use incognito_lattice::{generate_next, CandidateGraph, PruneStrategy};

fn bench_rollup_ablation(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let mut group = c.benchmark_group("ablation_rollup");
    group.sample_size(10);
    group.bench_function("with_rollup", |b| {
        b.iter(|| black_box(incognito(&table, &qi, &Config::new(2)).unwrap()));
    });
    group.bench_function("without_rollup", |b| {
        b.iter(|| black_box(incognito(&table, &qi, &Config::new(2).with_rollup(false)).unwrap()));
    });
    group.finish();
}

fn bench_apriori_ablation(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let mut group = c.benchmark_group("ablation_apriori");
    group.sample_size(10);
    group.bench_function("with_prune", |b| {
        b.iter(|| black_box(incognito(&table, &qi, &Config::new(2)).unwrap()));
    });
    group.bench_function("without_prune", |b| {
        b.iter(|| {
            black_box(
                incognito(&table, &qi, &Config::new(2).with_prune(PruneStrategy::None)).unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_prune_structure(c: &mut Criterion) {
    // Isolate the candidate-generation step: all C2 nodes alive, generate
    // C3 with each membership structure.
    let table = adults(&AdultsConfig { rows: 1, seed: 1 });
    let schema = table.schema().clone();
    let qi: Vec<usize> = (0..9).collect();
    let c1 = CandidateGraph::initial(&schema, &qi);
    let c2 = generate_next(&c1, &vec![true; c1.num_nodes()], PruneStrategy::HashTree);
    // Kill a third of the nodes so the prune phase has real work.
    let alive: Vec<bool> = (0..c2.num_nodes()).map(|i| i % 3 != 0).collect();

    let mut group = c.benchmark_group("ablation_prune_structure");
    group.bench_function("hash_tree", |b| {
        b.iter(|| black_box(generate_next(&c2, &alive, PruneStrategy::HashTree)));
    });
    group.bench_function("hash_set", |b| {
        b.iter(|| black_box(generate_next(&c2, &alive, PruneStrategy::HashSet)));
    });
    group.finish();
}

fn bench_superroots_ablation(c: &mut Criterion) {
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..6).collect();
    let mut group = c.benchmark_group("ablation_superroots");
    group.sample_size(10);
    group.bench_function("basic", |b| {
        b.iter(|| black_box(incognito(&table, &qi, &Config::new(2)).unwrap()));
    });
    group.bench_function("superroots", |b| {
        b.iter(|| {
            black_box(incognito(&table, &qi, &Config::new(2).with_superroots(true)).unwrap())
        });
    });
    group.finish();
}

fn bench_materialization_ablation(c: &mut Criterion) {
    // §7 future work: repeated anonymization (varying k) with and without
    // a materialized frequency-set store.
    use incognito_core::materialize::{incognito_with_store, FreqStore, MaterializationPolicy};
    let table = adults(&AdultsConfig { rows: 45_222, seed: 1 });
    let qi: Vec<usize> = (0..5).collect();
    let ks = [2u64, 5, 10, 25, 50];
    let mut group = c.benchmark_group("ablation_materialization");
    group.sample_size(10);
    group.bench_function("rescan_each_k", |b| {
        b.iter(|| {
            for &k in &ks {
                black_box(incognito(&table, &qi, &Config::new(k)).unwrap());
            }
        });
    });
    group.bench_function("zero_cube_store", |b| {
        b.iter(|| {
            let mut store =
                FreqStore::build(&table, &qi, MaterializationPolicy::ZeroCube).unwrap();
            for &k in &ks {
                black_box(
                    incognito_with_store(&table, &qi, &Config::new(k), &mut store).unwrap(),
                );
            }
        });
    });
    group.finish();
}

fn bench_sql_substrate_overhead(c: &mut Criterion) {
    // Native columnar engine vs the star-schema SQL path (the paper's DB2
    // formulation): same algorithm, generic relational substrate.
    let table = adults(&AdultsConfig { rows: 5_000, seed: 1 });
    let qi: Vec<usize> = vec![0, 1, 3];
    let mut group = c.benchmark_group("ablation_sql_substrate");
    group.sample_size(10);
    group.bench_function("native_columnar", |b| {
        b.iter(|| black_box(incognito(&table, &qi, &Config::new(5)).unwrap()));
    });
    group.bench_function("sql_star_schema", |b| {
        b.iter(|| {
            black_box(incognito_star::incognito_sql(&table, &qi, &Config::new(5)).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rollup_ablation,
    bench_apriori_ablation,
    bench_prune_structure,
    bench_superroots_ablation,
    bench_materialization_ablation,
    bench_sql_substrate_overhead
);
criterion_main!(benches);
