//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§4). Each binary prints the same
//! rows/series the paper reports and writes a CSV under `results/`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig09_datasets` | Figure 9 (dataset descriptions) |
//! | `fig10_qi_scaling` | Figure 10 (time vs QI size, both DBs, k = 2/10) |
//! | `table_nodes_searched` | §4.2.1 nodes-searched table |
//! | `fig11_vary_k` | Figure 11 (time vs k, fixed QI) |
//! | `fig12_cube_breakdown` | Figure 12 (cube build + anonymization cost) |
//!
//! Absolute times differ from the paper's (in-memory engine vs DB2 on a
//! 2003 Athlon); the relative ordering of the algorithms is the
//! reproduction target. See EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod report;

pub use report::BenchReport;

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use incognito_core::{
    binary_search::samarati_binary_search, bottom_up::bottom_up_search, cube::cube_incognito,
    incognito, AnonymizationResult, Config,
};
use incognito_data::{AdultsConfig, LandsEndConfig};
use incognito_table::Table;

/// The six search algorithms of Figure 10, in the paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Exhaustive bottom-up BFS, one table scan per lattice node.
    BottomUpNoRollup,
    /// Samarati's binary search on generalization height.
    BinarySearch,
    /// Exhaustive bottom-up BFS with rollup aggregation.
    BottomUpRollup,
    /// Basic Incognito (Figure 8).
    BasicIncognito,
    /// Cube Incognito (§3.3.2).
    CubeIncognito,
    /// Super-roots Incognito (§3.3.1).
    SuperRootsIncognito,
}

impl Algo {
    /// All six, in legend order.
    pub const ALL: [Algo; 6] = [
        Algo::BottomUpNoRollup,
        Algo::BinarySearch,
        Algo::BottomUpRollup,
        Algo::BasicIncognito,
        Algo::CubeIncognito,
        Algo::SuperRootsIncognito,
    ];

    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::BottomUpNoRollup => "Bottom-Up (w/o rollup)",
            Algo::BinarySearch => "Binary Search",
            Algo::BottomUpRollup => "Bottom-Up (w/ rollup)",
            Algo::BasicIncognito => "Basic Incognito",
            Algo::CubeIncognito => "Cube Incognito",
            Algo::SuperRootsIncognito => "Super-roots Incognito",
        }
    }

    /// Run the algorithm; returns the result and wall-clock time. Uses the
    /// process default thread count ([`Config::default_threads`]).
    pub fn run(self, table: &Table, qi: &[usize], k: u64) -> (AnonymizationResult, Duration) {
        self.run_with_threads(table, qi, k, Config::default_threads())
    }

    /// [`Algo::run`] with an explicit worker-thread count (the bench
    /// binaries' `--threads N` flag).
    pub fn run_with_threads(
        self,
        table: &Table,
        qi: &[usize],
        k: u64,
        threads: usize,
    ) -> (AnonymizationResult, Duration) {
        self.run_with_opts(table, qi, k, threads, Config::default_memory_budget())
    }

    /// [`Algo::run_with_threads`] with an explicit memory budget (the bench
    /// binaries' `--mem-budget BYTES` flag). `None` means unlimited: every
    /// frequency set stays in memory; with a budget, sets spill to disk
    /// while the process's live bytes exceed it.
    pub fn run_with_opts(
        self,
        table: &Table,
        qi: &[usize],
        k: u64,
        threads: usize,
        mem_budget: Option<u64>,
    ) -> (AnonymizationResult, Duration) {
        let cfg = match self {
            Algo::BottomUpNoRollup => Config::new(k).with_rollup(false),
            Algo::BottomUpRollup | Algo::BinarySearch => Config::new(k),
            Algo::BasicIncognito | Algo::CubeIncognito => Config::new(k),
            Algo::SuperRootsIncognito => Config::new(k).with_superroots(true),
        };
        let cfg = match mem_budget {
            Some(b) => cfg.with_threads(threads).with_memory_budget(b),
            None => cfg.with_threads(threads).with_unlimited_memory(),
        };
        let start = Instant::now();
        let result = match self {
            Algo::BottomUpNoRollup | Algo::BottomUpRollup => {
                bottom_up_search(table, qi, &cfg).expect("valid workload")
            }
            Algo::BinarySearch => match samarati_binary_search(table, qi, &cfg) {
                Ok(r) => r,
                // An unsatisfiable k (never the case in these workloads)
                // would still be a completed search.
                Err(e) => panic!("binary search failed: {e}"),
            },
            Algo::BasicIncognito | Algo::SuperRootsIncognito => {
                incognito(table, qi, &cfg).expect("valid workload")
            }
            Algo::CubeIncognito => cube_incognito(table, qi, &cfg).expect("valid workload"),
        };
        (result, start.elapsed())
    }
}

/// Apply an optional memory budget to a config: `Some` caps live bytes,
/// `None` lifts any budget (including the `INCOGNITO_MEM_BUDGET`
/// environment default). Shared by the bench binaries that build their
/// own [`Config`] instead of going through [`Algo::run_with_opts`].
pub fn apply_budget(cfg: Config, mem_budget: Option<u64>) -> Config {
    match mem_budget {
        Some(b) => cfg.with_memory_budget(b),
        None => cfg.with_unlimited_memory(),
    }
}

/// A result table that prints aligned to stdout and lands in
/// `results/<name>.csv`.
pub struct Series {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Series {
    /// Start a series with column headers.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Series {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity");
        self.rows.push(row);
    }

    /// Print as an aligned text table and write `results/<name>.csv`.
    pub fn emit(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers, &widths);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        println!("\n== {} ==\n{out}", self.name);

        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{}.csv", self.name));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(written to {})", path.display());
        }
    }
}

/// Where CSV outputs are collected (`results/` under the workspace root, or
/// the current directory as a fallback).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of this crate is <root>/crates/bench.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Format a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Tiny CLI parsing: `--flag value` pairs plus boolean `--quick`.
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Parse the process arguments.
    pub fn from_env() -> Self {
        Cli { args: std::env::args().skip(1).collect() }
    }

    /// Value of `--name <v>` parsed as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Is the boolean flag present?
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.args.contains(&flag)
    }

    /// Adults generator configuration from `--rows-adults N` (defaulting to
    /// the paper's 45,222 rows). Shared by every bench binary.
    pub fn adults_config(&self) -> AdultsConfig {
        AdultsConfig {
            rows: self.get("rows-adults").unwrap_or(AdultsConfig::default().rows),
            ..AdultsConfig::default()
        }
    }

    /// Lands End generator configuration from `--rows-landsend N`. Under
    /// `--quick` the default drops to `quick_rows` (full runs default to
    /// the generator's own row count).
    pub fn landsend_config(&self, quick_rows: usize) -> LandsEndConfig {
        let default_rows =
            if self.has("quick") { quick_rows } else { LandsEndConfig::default().rows };
        LandsEndConfig {
            rows: self.get("rows-landsend").unwrap_or(default_rows),
            ..LandsEndConfig::default()
        }
    }

    /// Worker threads from `--threads N` (≥ 1), falling back to the
    /// `INCOGNITO_THREADS` environment default. Recorded in `BENCH_*.json`
    /// so reports from different thread counts are distinguishable.
    pub fn threads(&self) -> usize {
        self.get::<usize>("threads")
            .filter(|&n| n >= 1)
            .unwrap_or_else(Config::default_threads)
    }

    /// Memory budget in bytes from `--mem-budget BYTES`, falling back to
    /// the `INCOGNITO_MEM_BUDGET` environment default. `None` (no flag, no
    /// env var) means unlimited. Recorded in `BENCH_*.json` so reports from
    /// budgeted runs are distinguishable.
    pub fn mem_budget(&self) -> Option<u64> {
        self.get::<u64>("mem-budget").or_else(Config::default_memory_budget)
    }

    /// Trace output path from `--trace [path]`. `None` when the flag is
    /// absent; with the flag but no path (or the "path" is another flag),
    /// defaults to `results/TRACE_<name>.json`.
    pub fn trace_path(&self, name: &str) -> Option<PathBuf> {
        let idx = self.args.iter().position(|a| a == "--trace")?;
        match self.args.get(idx + 1) {
            Some(v) if !v.starts_with("--") => Some(PathBuf::from(v)),
            _ => Some(results_dir().join(format!("TRACE_{name}.json"))),
        }
    }
}

/// Turn trace collection on when the CLI asked for it ([`Cli::trace_path`])
/// and return where the trace should land; pass that path to
/// [`write_trace`] once the runs are done.
pub fn init_tracing(cli: &Cli, name: &str) -> Option<PathBuf> {
    let path = cli.trace_path(name)?;
    incognito_obs::trace::set_enabled(true);
    Some(path)
}

/// Drain every collected trace span — plus any allocator counter samples
/// (`mem.live_bytes` tracks, rendered by Perfetto as counter plots) — and
/// write the Chrome Trace Event Format file (loadable in Perfetto /
/// `chrome://tracing`).
pub fn write_trace(path: &std::path::Path) {
    let records = incognito_obs::trace::drain();
    let samples = incognito_obs::trace::drain_counter_samples();
    match incognito_obs::trace::write_chrome_trace_with_counters(path, &records, &samples) {
        Ok(bytes) => println!(
            "(trace: {} spans, {} counter samples, {} bytes written to {})",
            records.len(),
            samples.len(),
            bytes,
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incognito_data::patients;

    #[test]
    fn all_algorithms_run_and_agree_on_patients() {
        let t = patients();
        let complete: Vec<Algo> = vec![
            Algo::BottomUpNoRollup,
            Algo::BottomUpRollup,
            Algo::BasicIncognito,
            Algo::CubeIncognito,
            Algo::SuperRootsIncognito,
        ];
        let (reference, _) = Algo::BasicIncognito.run(&t, &[0, 1, 2], 2);
        for algo in complete {
            let (r, _) = algo.run(&t, &[0, 1, 2], 2);
            assert_eq!(r.generalizations(), reference.generalizations(), "{algo:?}");
        }
        // Binary search returns the height-minimal subset of the reference.
        let (bs, _) = Algo::BinarySearch.run(&t, &[0, 1, 2], 2);
        for g in bs.generalizations() {
            assert!(reference.contains(&g.levels));
            assert_eq!(Some(g.height()), reference.minimal_height());
        }
    }

    #[test]
    fn series_formatting() {
        let mut s = Series::new("unit_test_series", &["a", "b"]);
        s.push(vec!["1".into(), "2".into()]);
        assert_eq!(s.rows.len(), 1);
    }

    #[test]
    fn cli_parsing() {
        let cli = Cli { args: vec!["--rows".into(), "100".into(), "--quick".into()] };
        assert_eq!(cli.get::<usize>("rows"), Some(100));
        assert_eq!(cli.get::<usize>("missing"), None);
        assert!(cli.has("quick"));
        assert!(!cli.has("slow"));
    }

    #[test]
    fn cli_threads_flag() {
        let cli = Cli { args: vec!["--threads".into(), "4".into()] };
        assert_eq!(cli.threads(), 4);
        let zero = Cli { args: vec!["--threads".into(), "0".into()] };
        assert_eq!(zero.threads(), Config::default_threads());
        let absent = Cli { args: Vec::new() };
        assert_eq!(absent.threads(), Config::default_threads());
    }

    #[test]
    fn dataset_config_helpers() {
        let cli = Cli { args: vec!["--rows-adults".into(), "123".into(), "--quick".into()] };
        assert_eq!(cli.adults_config().rows, 123);
        assert_eq!(cli.landsend_config(5_000).rows, 5_000);
        let full = Cli { args: Vec::new() };
        assert_eq!(full.adults_config().rows, AdultsConfig::default().rows);
        assert_eq!(full.landsend_config(5_000).rows, LandsEndConfig::default().rows);
    }
}
