//! Machine-readable run reports for the bench binaries.
//!
//! Every binary builds a [`BenchReport`] alongside its [`crate::Series`]
//! CSV output and finishes by writing `results/BENCH_<name>.json`: one
//! ordered JSON object carrying provenance (tool version, git describe,
//! timestamp), the binary's workload parameters, and one entry per
//! algorithm run with per-phase timings, per-iteration counters, the
//! table/lattice engine metrics recorded while that run executed, and the
//! run's allocation accounting (peak live bytes, bytes/count flows) from
//! the tracking allocator. A top-level `memory` object summarizes the
//! whole process. See EXPERIMENTS.md for the regeneration workflow.

use std::path::PathBuf;
use std::time::Duration;

use incognito_core::{AnonymizationResult, SearchStats};
use incognito_obs::report::snapshot_to_json;
use incognito_obs::{Json, MemStats, MetricsSnapshot, RunReport};

/// Builder for one `BENCH_<name>.json` report, shared by all bench bins.
///
/// Constructing it enables global observation (`incognito_obs`), so the
/// engine probes are live for everything the binary subsequently runs;
/// [`BenchReport::record_run`] attributes the metrics recorded since the
/// previous call to the run being recorded (snapshot diffing, so unrelated
/// earlier activity is excluded).
pub struct BenchReport {
    report: RunReport,
    runs: Vec<Json>,
    last: MetricsSnapshot,
    last_mem: MemStats,
    peak_overall: u64,
}

impl BenchReport {
    /// Start a report for the binary `name` (the file stem of
    /// `BENCH_<name>.json`). Enables observation — including allocator
    /// span attribution — and stamps provenance. The allocation peak is
    /// rebased here and after every recorded run, so each run's
    /// `memory.peak_live_bytes` reflects that run alone.
    pub fn new(name: &str) -> BenchReport {
        incognito_obs::set_enabled(true);
        incognito_obs::mem::set_enabled(true);
        let mut report = RunReport::new(name);
        report.set_provenance(env!("CARGO_PKG_VERSION"));
        incognito_obs::mem::reset_peak();
        BenchReport {
            report,
            runs: Vec::new(),
            last: incognito_obs::snapshot(),
            last_mem: incognito_obs::mem::stats(),
            peak_overall: 0,
        }
    }

    /// Allocation accounting since the previous record call, as a JSON
    /// object; rebases the peak and the flow baseline for the next run.
    fn take_memory(&mut self) -> Json {
        let now = incognito_obs::mem::stats();
        let delta = now.delta(&self.last_mem);
        self.peak_overall = self.peak_overall.max(delta.peak_live_bytes);
        incognito_obs::mem::reset_peak();
        self.last_mem = incognito_obs::mem::stats();
        delta.to_json()
    }

    /// Set a top-level field (workload parameters: rows, QI description…).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut BenchReport {
        self.report.set(key, value);
        self
    }

    /// Record the memory budget the binary ran under (`--mem-budget` /
    /// `INCOGNITO_MEM_BUDGET`), `null` when unlimited.
    pub fn set_mem_budget(&mut self, budget: Option<u64>) -> &mut BenchReport {
        match budget {
            Some(b) => self.report.set("mem_budget", b),
            None => self.report.set("mem_budget", Json::Null),
        };
        self
    }

    /// Record one completed algorithm run: its identity (`label`,
    /// `dataset`, `k`, `qi_arity`), end-to-end wall-clock, the search
    /// statistics (per-phase timings and per-iteration counters), and the
    /// engine metrics recorded since the last `record_run` call.
    pub fn record_run(
        &mut self,
        label: &str,
        dataset: &str,
        k: u64,
        qi_arity: usize,
        result: &AnonymizationResult,
        wall: Duration,
    ) -> &mut BenchReport {
        let now = incognito_obs::snapshot();
        let delta = now.diff(&self.last);
        self.last = now;

        let stats = result.stats();
        let mut run = Json::obj();
        run.set("label", label);
        run.set("dataset", dataset);
        run.set("k", k);
        run.set("qi_arity", qi_arity);
        run.set("wall_secs", wall.as_secs_f64());
        run.set("generalizations", result.len());
        match result.minimal_height() {
            Some(h) => run.set("minimal_height", u64::from(h)),
            None => run.set("minimal_height", Json::Null),
        };
        run.set("stats", stats_json(stats));
        run.set("timings", timings_json(stats));
        run.set("iterations", iterations_json(stats));
        run.set("metrics", snapshot_to_json(&delta));
        run.set("memory", self.take_memory());
        self.runs.push(run);
        self
    }

    /// Record one measurement that did not come from an anonymization run
    /// (e.g. the footnote-2 distance-matrix probe). `fields` supplies the
    /// measurement's identity and numbers; the engine metrics recorded
    /// since the previous record call are attached as `metrics`.
    pub fn record_point(&mut self, label: &str, mut fields: Json) -> &mut BenchReport {
        let now = incognito_obs::snapshot();
        let delta = now.diff(&self.last);
        self.last = now;

        let mut run = Json::obj();
        run.set("label", label);
        if let Json::Obj(pairs) = &mut fields {
            for (k, v) in pairs.drain(..) {
                run.set(&k, v);
            }
        }
        run.set("metrics", snapshot_to_json(&delta));
        run.set("memory", self.take_memory());
        self.runs.push(run);
        self
    }

    /// Print every recorded run's allocation accounting as an aligned
    /// table (the bench binaries' `--mem` flag).
    pub fn print_memory_table(&self) {
        let mut s = crate::Series::new(
            format!("{}_memory", self.report.name()),
            &["label", "peak_live_mb", "alloc_mb", "allocs", "live_mb"],
        );
        for run in &self.runs {
            let get = |k: &str| run.get("memory").and_then(|m| m.get(k)).and_then(Json::as_int);
            let mb = |v: Option<i64>| format!("{:.2}", v.unwrap_or(0) as f64 / (1 << 20) as f64);
            s.push(vec![
                run.get("label").and_then(Json::as_str).unwrap_or("?").to_string(),
                mb(get("peak_live_bytes")),
                mb(get("allocated_bytes")),
                get("allocs").unwrap_or(0).to_string(),
                mb(get("live_bytes")),
            ]);
        }
        s.emit();
    }

    /// Write `results/BENCH_<name>.json` and return its path. Failures are
    /// reported to stderr, never fatal — the CSVs are the primary output.
    pub fn finish(mut self) -> PathBuf {
        let runs = std::mem::take(&mut self.runs);
        self.report.set("runs", Json::Arr(runs));
        let mut end = incognito_obs::mem::stats();
        end.peak_live_bytes = end.peak_live_bytes.max(self.peak_overall);
        self.report.set("memory", end.to_json());
        self.report.set("spill", spill_json(&incognito_obs::snapshot()));
        let path = crate::results_dir().join(format!("BENCH_{}.json", self.report.name()));
        match self.report.write_to(&path) {
            Ok(_) => println!("(report written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        path
    }
}

/// The out-of-core activity gauges (`table.spill.*`) as an ordered JSON
/// object. All zeros when the run never exceeded its memory budget (or had
/// none) — the section is always present so report consumers can rely on
/// its shape.
fn spill_json(snap: &MetricsSnapshot) -> Json {
    let mut o = Json::obj();
    o.set("spilled_sets", snap.gauge("table.spill.spilled_sets"));
    o.set("partitions", snap.gauge("table.spill.partitions"));
    o.set("bytes", snap.gauge("table.spill.bytes"));
    o.set("upgrades", snap.gauge("table.spill.upgrades"));
    o
}

/// The aggregate counters of [`SearchStats`] as an ordered JSON object.
fn stats_json(s: &SearchStats) -> Json {
    let mut o = Json::obj();
    o.set("nodes_checked", s.nodes_checked());
    o.set("nodes_marked", s.nodes_marked());
    o.set("candidates", s.candidates());
    o.set("freq_from_scan", s.freq_from_scan);
    o.set("freq_from_rollup", s.freq_from_rollup);
    o.set("freq_from_projection", s.freq_from_projection);
    o.set("table_scans", s.table_scans);
    o
}

/// The per-phase wall-clock breakdown as fractional seconds.
fn timings_json(s: &SearchStats) -> Json {
    let t = &s.timings;
    let mut o = Json::obj();
    o.set("total_secs", t.total.as_secs_f64());
    match t.cube_build {
        Some(d) => o.set("cube_build_secs", d.as_secs_f64()),
        None => o.set("cube_build_secs", Json::Null),
    };
    o.set("scan_secs", t.scan.as_secs_f64());
    o.set("rollup_secs", t.rollup.as_secs_f64());
    o.set("candidate_gen_secs", t.candidate_gen.as_secs_f64());
    o
}

/// One JSON object per subset-size iteration, including its wall-clock.
fn iterations_json(s: &SearchStats) -> Json {
    let arr: Vec<Json> = s
        .iterations
        .iter()
        .map(|it| {
            let mut o = Json::obj();
            o.set("arity", it.arity);
            o.set("candidates", it.candidates);
            o.set("edges", it.edges);
            o.set("nodes_checked", it.nodes_checked);
            o.set("nodes_marked", it.nodes_marked);
            o.set("survivors", it.survivors);
            o.set("wall_secs", it.wall.as_secs_f64());
            o
        })
        .collect();
    Json::Arr(arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use incognito_data::patients;

    #[test]
    fn report_records_runs_with_timings_and_metrics() {
        let t = patients();
        let mut rep = BenchReport::new("unit_report");
        rep.set("rows", t.num_rows());
        let (result, wall) = Algo::BasicIncognito.run(&t, &[0, 1, 2], 2);
        rep.record_run("Basic Incognito", "patients", 2, 3, &result, wall);
        let (result, wall) = Algo::CubeIncognito.run(&t, &[0, 1, 2], 2);
        rep.record_run("Cube Incognito", "patients", 2, 3, &result, wall);

        let json = rep.report.to_json().clone();
        let runs_so_far = rep.runs.len();
        assert_eq!(runs_so_far, 2);
        assert_eq!(json.get("name").and_then(Json::as_str), Some("unit_report"));

        let basic = &rep.runs[0];
        assert_eq!(basic.get("label").and_then(Json::as_str), Some("Basic Incognito"));
        assert!(basic.get("wall_secs").is_some());
        let iters = basic.get("iterations").and_then(Json::as_arr).unwrap();
        assert_eq!(iters.len(), 3);
        assert!(iters[0].get("wall_secs").is_some());
        // The engine probes were live: the Basic run scanned the table.
        let metrics = basic.get("metrics").unwrap();
        assert!(metrics.get("table.scan.count").and_then(Json::as_int).unwrap_or(0) > 0);

        // Allocation accounting is attached per run; running an
        // anonymization certainly allocated something.
        let mem = basic.get("memory").unwrap();
        assert!(mem.get("peak_live_bytes").and_then(Json::as_int).unwrap_or(0) > 0);
        assert!(mem.get("allocs").and_then(Json::as_int).unwrap_or(0) > 0);

        // Cube run carries the cube-build phase; Basic does not.
        let basic_cb = basic.get("timings").unwrap().get("cube_build_secs").unwrap();
        assert!(matches!(basic_cb, Json::Null));
        let cube_cb = rep.runs[1].get("timings").unwrap().get("cube_build_secs").unwrap();
        assert!(!matches!(cube_cb, Json::Null));

        // finish() writes a parseable file.
        let path = rep.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("runs").and_then(Json::as_arr).unwrap().len(), 2);
        // Top-level memory summary: process flows plus the max per-run peak.
        let mem = parsed.get("memory").unwrap();
        assert!(mem.get("peak_live_bytes").and_then(Json::as_int).unwrap_or(0) > 0);
        // Spill section is always present; this unbudgeted run never spilled.
        let spill = parsed.get("spill").unwrap();
        for key in ["spilled_sets", "partitions", "bytes", "upgrades"] {
            assert_eq!(spill.get(key).and_then(Json::as_int), Some(0), "{key}");
        }
        std::fs::remove_file(&path).ok();
    }
}
