//! E5 — Figure 12: the combined cost of Cube Incognito, split into the
//! zero-generalization cube build and the anonymization phase that runs on
//! top of it, for k = 2 and varied quasi-identifier size (Adults 3–9,
//! Lands End 3–8).
//!
//! The paper's observation to reproduce: on the small Adults table the
//! cube is cheap to build and Cube Incognito beats Basic; on the large
//! Lands End table the build dominates, but the *marginal* anonymization
//! cost once the cube is materialized is lower than Basic Incognito.
//!
//! Usage: `cargo run -p incognito-bench --release --bin fig12_cube_breakdown
//!         [--rows-adults N] [--rows-landsend N] [--threads N]
//!         [--mem-budget BYTES] [--quick] [--trace [path]]`

use std::time::Instant;

use incognito_bench::{apply_budget, init_tracing, secs, write_trace, BenchReport, Cli, Series};
use incognito_core::cube::{anonymize_with_cube, Cube};
use incognito_core::{incognito, Config};
use incognito_data::{adults, landsend};
use incognito_table::Table;

fn panel(
    name: &str,
    dataset: &str,
    table: &Table,
    sizes: &[usize],
    threads: usize,
    mem_budget: Option<u64>,
    report: &mut BenchReport,
) {
    let mut series = Series::new(
        name,
        &["QI size", "Cube build", "Anonymization", "Cube total", "Basic Incognito"],
    );
    for &n in sizes {
        let qi: Vec<usize> = (0..n).collect();
        let cfg = apply_budget(Config::new(2).with_threads(threads), mem_budget);

        let t0 = Instant::now();
        let cube = Cube::build_with_config(table, &qi, &cfg).expect("valid workload");
        let build = t0.elapsed();
        let t1 = Instant::now();
        let r = anonymize_with_cube(table, &cube, &cfg, &mut |_| {}).expect("valid workload");
        let anon = t1.elapsed();
        drop(cube);
        report.record_run("Cube Incognito", dataset, cfg.k, n, &r, build + anon);

        let t2 = Instant::now();
        let basic = incognito(table, &qi, &cfg).expect("valid workload");
        let basic_time = t2.elapsed();
        assert_eq!(r.generalizations(), basic.generalizations(), "variants agree");
        report.record_run("Basic Incognito", dataset, cfg.k, n, &basic, basic_time);

        series.push(vec![
            n.to_string(),
            secs(build),
            secs(anon),
            secs(build + anon),
            secs(basic_time),
        ]);
        eprintln!(
            "  {name} qi={n}: build={} anon={} basic={}",
            secs(build),
            secs(anon),
            secs(basic_time)
        );
    }
    series.emit();
}

fn main() {
    let cli = Cli::from_env();
    let quick = cli.has("quick");
    let adults_cfg = cli.adults_config();
    let landsend_cfg = cli.landsend_config(100_000);

    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let trace = init_tracing(&cli, "fig12_cube_breakdown");
    let mut report = BenchReport::new("fig12_cube_breakdown");
    report.set("rows_adults", adults_cfg.rows);
    report.set("rows_landsend", landsend_cfg.rows);
    report.set("quick", quick);
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    eprintln!("generating Adults ({} rows)...", adults_cfg.rows);
    let a = adults::adults(&adults_cfg);
    let adult_sizes: Vec<usize> = if quick { (3..=6).collect() } else { (3..=9).collect() };
    panel("fig12_adults_k2", "adults", &a, &adult_sizes, threads, mem_budget, &mut report);
    drop(a);

    eprintln!("generating Lands End ({} rows)...", landsend_cfg.rows);
    let l = landsend::lands_end(&landsend_cfg);
    let lands_sizes: Vec<usize> = if quick { (3..=5).collect() } else { (3..=8).collect() };
    panel("fig12_landsend_k2", "landsend", &l, &lands_sizes, threads, mem_budget, &mut report);

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
