//! E2 — Figure 10: elapsed time of all six algorithms as the
//! quasi-identifier grows, on Adults and Lands End, for k = 2 and k = 10.
//!
//! The paper begins with the first three attributes of each schema
//! (Figure 9 order) and adds attributes in listed order; Adults sweeps QI
//! sizes 3–9, Lands End 1–6. Output: one table (and CSV) per panel, one
//! column per algorithm, elapsed seconds; plus `BENCH_fig10_qi_scaling.json`
//! with per-run timings and engine metrics.
//!
//! Usage: `cargo run -p incognito-bench --release --bin fig10_qi_scaling
//!         [--rows-adults N] [--rows-landsend N] [--threads N]
//!         [--mem-budget BYTES] [--quick] [--trace [path]]`
//!
//! `--quick` trims each sweep's largest sizes and the slowest baseline so a
//! laptop pass completes in ~a minute.

use incognito_bench::{init_tracing, secs, write_trace, Algo, BenchReport, Cli, Series};
use incognito_data::{adults, landsend};
use incognito_table::Table;

#[allow(clippy::too_many_arguments)]
fn panel(
    name: &str,
    dataset: &str,
    table: &Table,
    k: u64,
    sizes: &[usize],
    algos: &[Algo],
    threads: usize,
    mem_budget: Option<u64>,
    report: &mut BenchReport,
) {
    let mut headers = vec!["QI size".to_string()];
    headers.extend(algos.iter().map(|a| a.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut series = Series::new(name, &header_refs);
    for &n in sizes {
        let qi: Vec<usize> = (0..n).collect();
        let mut row = vec![n.to_string()];
        for &algo in algos {
            let (result, elapsed) = algo.run_with_opts(table, &qi, k, threads, mem_budget);
            row.push(secs(elapsed));
            eprintln!(
                "  {name} qi={n} {}: {}s ({} gens, {} nodes checked)",
                algo.label(),
                secs(elapsed),
                result.len(),
                result.stats().nodes_checked()
            );
            report.record_run(algo.label(), dataset, k, n, &result, elapsed);
        }
        series.push(row);
    }
    series.emit();
}

fn main() {
    let cli = Cli::from_env();
    let quick = cli.has("quick");
    let adults_cfg = cli.adults_config();
    let landsend_cfg = cli.landsend_config(100_000);

    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let trace = init_tracing(&cli, "fig10_qi_scaling");
    let mut report = BenchReport::new("fig10_qi_scaling");
    report.set("rows_adults", adults_cfg.rows);
    report.set("rows_landsend", landsend_cfg.rows);
    report.set("quick", quick);
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    let algos: Vec<Algo> = if quick {
        Algo::ALL.into_iter().filter(|a| *a != Algo::BottomUpNoRollup).collect()
    } else {
        Algo::ALL.to_vec()
    };

    eprintln!("generating Adults ({} rows)...", adults_cfg.rows);
    let a = adults::adults(&adults_cfg);
    let adult_sizes: Vec<usize> = if quick { (3..=6).collect() } else { (3..=9).collect() };
    panel("fig10_adults_k2", "adults", &a, 2, &adult_sizes, &algos, threads, mem_budget, &mut report);
    panel("fig10_adults_k10", "adults", &a, 10, &adult_sizes, &algos, threads, mem_budget, &mut report);
    drop(a);

    eprintln!("generating Lands End ({} rows)...", landsend_cfg.rows);
    let l = landsend::lands_end(&landsend_cfg);
    let lands_sizes: Vec<usize> = if quick { (1..=4).collect() } else { (1..=6).collect() };
    panel("fig10_landsend_k2", "landsend", &l, 2, &lands_sizes, &algos, threads, mem_budget, &mut report);
    panel("fig10_landsend_k10", "landsend", &l, 10, &lands_sizes, &algos, threads, mem_budget, &mut report);

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
