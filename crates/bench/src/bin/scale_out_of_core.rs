//! E7 — out-of-core scaling: the §7 "what if the frequency sets don't fit
//! in memory" case. Runs Basic Incognito on Lands End (whose Zipcode
//! domain is ~32k values, so ground frequency sets genuinely grow with
//! the data) at growing row counts (×1, ×2, ×4), once unbudgeted and once
//! under a fixed memory budget, and measures each search's **peak
//! allocation delta** — the high-water mark of live bytes above the level
//! at search start (the table itself grows with the rows, so the absolute
//! peak cannot be flat; the search's own footprint can).
//!
//! The property to demonstrate: the unbudgeted search's peak grows with
//! the data, while the budgeted search's peak stays roughly flat — its
//! frequency sets spill to hash partitions on disk and are processed one
//! partition at a time, with a row-count-independent write-buffer cap.
//! Both modes must return identical generalizations (asserted here).
//!
//! Usage: `cargo run -p incognito-bench --release --bin scale_out_of_core
//!         [--rows N] [--k K] [--threads N] [--mem-budget BYTES] [--quick]
//!         [--trace [path]]`
//!
//! `--rows` sets the ×1 base (default 40,000; `--quick` halves it);
//! `--mem-budget` sets the budgeted mode's cap (default 256 KiB — below
//! the base table's own footprint at every scale, so every frequency set
//! spills).

use incognito_bench::{init_tracing, secs, write_trace, Algo, BenchReport, Cli, Series};
use incognito_data::{landsend::lands_end, LandsEndConfig};
use incognito_obs::Json;

fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let cli = Cli::from_env();
    let quick = cli.has("quick");
    let base_rows: usize = cli.get("rows").unwrap_or(if quick { 20_000 } else { 40_000 });
    let k: u64 = cli.get("k").unwrap_or(2);
    let threads = cli.threads();
    let budget: u64 = cli.get("mem-budget").unwrap_or(256 << 10);
    let qi: Vec<usize> = (0..3).collect(); // Zipcode × Order date × Gender

    let trace = init_tracing(&cli, "scale_out_of_core");
    let mut report = BenchReport::new("scale_out_of_core");
    report.set("base_rows", base_rows);
    report.set("k", k);
    report.set("qi_arity", qi.len());
    report.set("threads", threads);
    report.set_mem_budget(Some(budget));

    let mut series = Series::new(
        "scale_out_of_core",
        &[
            "rows",
            "in-memory peak",
            "budgeted peak",
            "spilled",
            "in-memory time",
            "budgeted time",
        ],
    );

    let mut budgeted_peaks: Vec<u64> = Vec::new();
    for scale in [1usize, 2, 4] {
        let rows = base_rows * scale;
        eprintln!("generating Lands End ({rows} rows)...");
        let table = lands_end(&LandsEndConfig { rows, ..LandsEndConfig::default() });
        // Absorb the table-generation allocations into a setup point, so
        // the subsequent run records reflect the searches alone.
        let mut setup = Json::obj();
        setup.set("rows", rows);
        report.record_point("setup", setup);

        let mut measure = |mem_budget: Option<u64>, mode: &str| {
            incognito_obs::mem::reset_peak();
            let live0 = incognito_obs::mem::live_bytes();
            let before = incognito_obs::snapshot();
            let (r, wall) =
                Algo::BasicIncognito.run_with_opts(&table, &qi, k, threads, mem_budget);
            let peak_delta = incognito_obs::mem::peak_live_bytes().saturating_sub(live0);
            let after = incognito_obs::snapshot();
            let spilled_bytes =
                after.gauge("table.spill.bytes") - before.gauge("table.spill.bytes");
            let spilled_sets =
                after.gauge("table.spill.spilled_sets") - before.gauge("table.spill.spilled_sets");

            let mut point = Json::obj();
            point.set("rows", rows);
            point.set("mode", mode);
            match mem_budget {
                Some(b) => point.set("mem_budget", b),
                None => point.set("mem_budget", Json::Null),
            };
            point.set("peak_delta_bytes", peak_delta);
            point.set("wall_secs", wall.as_secs_f64());
            point.set("generalizations", r.len());
            point.set("spilled_bytes", spilled_bytes);
            point.set("spilled_sets", spilled_sets);
            report.record_point(&format!("{mode} rows={rows}"), point);
            eprintln!(
                "  rows={rows} {mode}: peak Δ {} spilled {} in {}s",
                mb(peak_delta),
                mb(spilled_bytes.max(0) as u64),
                secs(wall)
            );
            (r, wall, peak_delta, spilled_bytes)
        };

        let (r_mem, wall_mem, peak_mem, _) = measure(None, "in-memory");
        let (r_ext, wall_ext, peak_ext, spilled) = measure(Some(budget), "budgeted");
        assert_eq!(
            r_mem.generalizations(),
            r_ext.generalizations(),
            "budgeted results must be identical to in-memory (rows={rows})"
        );
        budgeted_peaks.push(peak_ext);

        series.push(vec![
            rows.to_string(),
            mb(peak_mem),
            mb(peak_ext),
            mb(spilled.max(0) as u64),
            secs(wall_mem),
            secs(wall_ext),
        ]);
    }
    series.emit();

    let (first, last) = (budgeted_peaks[0], budgeted_peaks[budgeted_peaks.len() - 1]);
    let growth = last as f64 / first.max(1) as f64;
    report.set("budgeted_peak_growth_x4_rows", growth);
    println!(
        "Budgeted peak grew {growth:.2}x while rows grew 4x (in-memory peak tracks the data); \
         results identical at every budget."
    );

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
