//! E6b — footnote 2: *"Samarati suggests an alternative approach whereby a
//! matrix of distance vectors is constructed between unique tuples.
//! However, we found constructing this matrix prohibitively expensive for
//! large databases."*
//!
//! Regenerates that finding: as the number of distinct quasi-identifier
//! tuples `u` grows, the matrix construction scales ~u² while the
//! frequency-set check stays linear in the row count.
//!
//! Usage: `cargo run -p incognito-bench --release --bin footnote2_distance_matrix
//!         [--threads N] [--mem-budget BYTES] [--trace [path]]`

use std::time::Instant;

use incognito_bench::{apply_budget, init_tracing, secs, write_trace, BenchReport, Cli, Series};
use incognito_core::distance_matrix::DistanceMatrix;
use incognito_core::Config;
use incognito_data::{adults, AdultsConfig};
use incognito_obs::Json;
use incognito_table::GroupSpec;

fn main() {
    let cli = Cli::from_env();
    let qi = [0usize, 3, 4]; // Age × Marital × Education
    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let cfg = apply_budget(Config::new(2).with_threads(threads), mem_budget);

    let trace = init_tracing(&cli, "footnote2_distance_matrix");
    let mut report = BenchReport::new("footnote2_distance_matrix");
    report.set("k", cfg.k);
    report.set("qi_arity", qi.len());
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    let mut series = Series::new(
        "footnote2_distance_matrix",
        &["rows", "distinct tuples", "matrix build", "matrix check", "freq-set check"],
    );
    for rows in [500usize, 1_000, 2_000, 4_000, 8_000, 16_000] {
        let table = adults(&AdultsConfig { rows, seed: 123 });

        let t0 = Instant::now();
        let matrix = DistanceMatrix::build(&table, &qi, cfg.k).expect("valid workload");
        let build = t0.elapsed();
        let t1 = Instant::now();
        let via_matrix = matrix.is_k_anonymous(&[1, 1, 1], &cfg);
        let check = t1.elapsed();

        let t2 = Instant::now();
        let spec = GroupSpec::new(qi.iter().map(|&a| (a, 1u8)).collect()).expect("valid spec");
        let freq = if threads > 1 {
            table.frequency_set_parallel(&spec, threads).expect("valid spec")
        } else {
            table.frequency_set(&spec).expect("valid spec")
        };
        let via_freq = freq.is_k_anonymous(cfg.k);
        let freq_time = t2.elapsed();
        assert_eq!(via_matrix, via_freq, "both checks must agree");

        let mut point = Json::obj();
        point.set("rows", rows);
        point.set("distinct_tuples", matrix.num_tuples());
        point.set("matrix_build_secs", build.as_secs_f64());
        point.set("matrix_check_secs", check.as_secs_f64());
        point.set("freq_set_check_secs", freq_time.as_secs_f64());
        report.record_point("distance matrix vs frequency set", point);

        series.push(vec![
            rows.to_string(),
            matrix.num_tuples().to_string(),
            secs(build),
            secs(check),
            secs(freq_time),
        ]);
        eprintln!(
            "  rows={rows}: tuples={} build={} freq={}",
            matrix.num_tuples(),
            secs(build),
            secs(freq_time)
        );
    }
    series.emit();
    println!(
        "The matrix build grows quadratically in distinct tuples while the frequency-set \
         check stays linear in rows — the paper's reason for the group-by formulation."
    );

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
