//! E1 — Figure 9: descriptions of the Adults and Lands End databases.
//!
//! Prints, for each dataset, the attribute list with distinct ground-value
//! counts and generalization-hierarchy heights, plus the generated row
//! counts — the reproduction of the paper's dataset-description table.
//!
//! Usage: `cargo run -p incognito-bench --release --bin fig09_datasets
//!         [--rows-adults N] [--rows-landsend N]`

use incognito_bench::{Cli, Series};
use incognito_data::{adults, landsend, AdultsConfig, LandsEndConfig};

fn main() {
    let cli = Cli::from_env();
    let adults_cfg = AdultsConfig {
        rows: cli.get("rows-adults").unwrap_or(AdultsConfig::default().rows),
        ..AdultsConfig::default()
    };
    let landsend_cfg = LandsEndConfig {
        rows: cli.get("rows-landsend").unwrap_or(LandsEndConfig::default().rows),
        ..LandsEndConfig::default()
    };

    let a = adults::adults(&adults_cfg);
    let mut s = Series::new("fig09_adults", &["#", "Attribute", "Distinct values", "Hierarchy height"]);
    for (i, attr) in a.schema().attributes().iter().enumerate() {
        s.push(vec![
            (i + 1).to_string(),
            attr.name().to_string(),
            attr.hierarchy().ground_size().to_string(),
            attr.hierarchy().height().to_string(),
        ]);
    }
    s.emit();
    println!(
        "Adults: {} records (paper: 45,222 records, 5.5 MB). Synthetic; see DESIGN.md.",
        a.num_rows()
    );

    let l = landsend::lands_end(&landsend_cfg);
    let mut s =
        Series::new("fig09_landsend", &["#", "Attribute", "Distinct values", "Hierarchy height"]);
    for (i, attr) in l.schema().attributes().iter().enumerate() {
        s.push(vec![
            (i + 1).to_string(),
            attr.name().to_string(),
            attr.hierarchy().ground_size().to_string(),
            attr.hierarchy().height().to_string(),
        ]);
    }
    s.emit();
    println!(
        "Lands End: {} records (paper: 4,591,581 records, 268 MB; pass --rows-landsend 4591581 for paper scale). Synthetic; see DESIGN.md.",
        l.num_rows()
    );
}
