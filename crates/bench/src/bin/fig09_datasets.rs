//! E1 — Figure 9: descriptions of the Adults and Lands End databases.
//!
//! Prints, for each dataset, the attribute list with distinct ground-value
//! counts and generalization-hierarchy heights, plus the generated row
//! counts — the reproduction of the paper's dataset-description table.
//! Also runs one Basic Incognito probe per dataset (QI = first 5
//! attributes, k = 2) so the `BENCH_fig09_datasets.json` report carries
//! per-iteration wall-clock and table-engine counters for the exact data
//! being described.
//!
//! Usage: `cargo run -p incognito-bench --release --bin fig09_datasets
//!         [--rows-adults N] [--rows-landsend N] [--threads N]
//!         [--mem-budget BYTES] [--quick] [--trace [path]]`

use incognito_bench::{init_tracing, write_trace, Algo, BenchReport, Cli, Series};
use incognito_data::{adults, landsend};
use incognito_table::Table;

fn describe(name: &str, table: &Table) {
    let mut s = Series::new(name, &["#", "Attribute", "Distinct values", "Hierarchy height"]);
    for (i, attr) in table.schema().attributes().iter().enumerate() {
        s.push(vec![
            (i + 1).to_string(),
            attr.name().to_string(),
            attr.hierarchy().ground_size().to_string(),
            attr.hierarchy().height().to_string(),
        ]);
    }
    s.emit();
}

fn main() {
    let cli = Cli::from_env();
    let adults_cfg = cli.adults_config();
    let landsend_cfg = cli.landsend_config(100_000);
    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let trace = init_tracing(&cli, "fig09_datasets");
    let mut report = BenchReport::new("fig09_datasets");
    report.set("rows_adults", adults_cfg.rows);
    report.set("rows_landsend", landsend_cfg.rows);
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    let a = adults::adults(&adults_cfg);
    describe("fig09_adults", &a);
    println!(
        "Adults: {} records (paper: 45,222 records, 5.5 MB). Synthetic; see DESIGN.md.",
        a.num_rows()
    );
    let qi: Vec<usize> = (0..5).collect();
    let (r, wall) = Algo::BasicIncognito.run_with_opts(&a, &qi, 2, threads, mem_budget);
    report.record_run("Basic Incognito", "adults", 2, qi.len(), &r, wall);
    drop(a);

    let l = landsend::lands_end(&landsend_cfg);
    describe("fig09_landsend", &l);
    println!(
        "Lands End: {} records (paper: 4,591,581 records, 268 MB; pass --rows-landsend 4591581 for paper scale). Synthetic; see DESIGN.md.",
        l.num_rows()
    );
    let qi: Vec<usize> = (0..5).collect();
    let (r, wall) = Algo::BasicIncognito.run_with_opts(&l, &qi, 2, threads, mem_budget);
    report.record_run("Basic Incognito", "landsend", 2, qi.len(), &r, wall);

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
