//! E4 — Figure 11: performance for fixed quasi-identifier size and varied
//! k ∈ {2, 5, 10, 25, 50}.
//!
//! Left panel (Adults, QI size 8): Binary Search, Bottom-Up (w/ rollup),
//! Basic Incognito, Super-roots Incognito. Right panel (Lands End,
//! staggered QI): Binary Search at QI 6, Basic and Super-roots Incognito
//! at QI 8 — the paper staggers the sizes because binary search cannot
//! finish QI 8 on the large table in reasonable time.
//!
//! Usage: `cargo run -p incognito-bench --release --bin fig11_vary_k
//!         [--rows-adults N] [--rows-landsend N] [--threads N]
//!         [--mem-budget BYTES] [--quick] [--trace [path]]`

use incognito_bench::{init_tracing, secs, write_trace, Algo, BenchReport, Cli, Series};
use incognito_data::{adults, landsend};

const KS: [u64; 5] = [2, 5, 10, 25, 50];

fn main() {
    let cli = Cli::from_env();
    let quick = cli.has("quick");
    let adults_cfg = cli.adults_config();
    let landsend_cfg = cli.landsend_config(100_000);

    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let trace = init_tracing(&cli, "fig11_vary_k");
    let mut report = BenchReport::new("fig11_vary_k");
    report.set("rows_adults", adults_cfg.rows);
    report.set("rows_landsend", landsend_cfg.rows);
    report.set("quick", quick);
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    eprintln!("generating Adults ({} rows)...", adults_cfg.rows);
    let a = adults::adults(&adults_cfg);
    let adults_n = if quick { 6 } else { 8 };
    let adults_qi: Vec<usize> = (0..adults_n).collect();
    let algos = [
        Algo::BinarySearch,
        Algo::BottomUpRollup,
        Algo::BasicIncognito,
        Algo::SuperRootsIncognito,
    ];
    let mut headers = vec!["k".to_string()];
    headers.extend(algos.iter().map(|a| a.label().to_string()));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut series = Series::new("fig11_adults_qid8", &hdr);
    for k in KS {
        let mut row = vec![k.to_string()];
        for algo in algos {
            let (r, elapsed) = algo.run_with_opts(&a, &adults_qi, k, threads, mem_budget);
            row.push(secs(elapsed));
            eprintln!("  adults k={k} {}: {}s ({} checked)", algo.label(), secs(elapsed), r.stats().nodes_checked());
            report.record_run(algo.label(), "adults", k, adults_n, &r, elapsed);
        }
        series.push(row);
    }
    series.emit();
    drop(a);

    eprintln!("generating Lands End ({} rows)...", landsend_cfg.rows);
    let l = landsend::lands_end(&landsend_cfg);
    let (bs_n, inc_n) = if quick { (4, 6) } else { (6, 8) };
    let bs_qi: Vec<usize> = (0..bs_n).collect();
    let inc_qi: Vec<usize> = (0..inc_n).collect();
    let mut series = Series::new(
        "fig11_landsend_staggered",
        &[
            "k",
            &format!("Binary Search (QID = {bs_n})"),
            &format!("Basic Incognito (QID = {inc_n})"),
            &format!("Super-roots Incognito (QID = {inc_n})"),
        ],
    );
    for k in KS {
        let mut row = vec![k.to_string()];
        for (algo, qi) in [
            (Algo::BinarySearch, &bs_qi),
            (Algo::BasicIncognito, &inc_qi),
            (Algo::SuperRootsIncognito, &inc_qi),
        ] {
            let (r, elapsed) = algo.run_with_opts(&l, qi, k, threads, mem_budget);
            row.push(secs(elapsed));
            eprintln!("  landsend k={k} {} qi={}: {}s ({} checked)", algo.label(), qi.len(), secs(elapsed), r.stats().nodes_checked());
            report.record_run(algo.label(), "landsend", k, qi.len(), &r, elapsed);
        }
        series.push(row);
    }
    series.emit();

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
