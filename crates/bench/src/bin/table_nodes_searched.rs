//! E3 — the §4.2.1 nodes-searched table: for the Adults database with
//! k = 2 and quasi-identifier sizes 3–9, the number of generalization
//! nodes whose k-anonymity status was determined by computing a frequency
//! set, for exhaustive Bottom-Up vs. Incognito.
//!
//! The paper's numbers (real Adults data):
//!
//! ```text
//! QID size   Bottom-Up   Incognito
//!        3          14          14
//!        4          47          35
//!        5         206         103
//!        6         680         246
//!        7        2088         664
//!        8        6366        1778
//!        9       12818        4307
//! ```
//!
//! Usage: `cargo run -p incognito-bench --release --bin table_nodes_searched
//!         [--rows-adults N] [--k K] [--threads N] [--mem-budget BYTES]
//!         [--trace [path]]`

use incognito_bench::{init_tracing, write_trace, Algo, BenchReport, Cli, Series};
use incognito_data::adults;

fn main() {
    let cli = Cli::from_env();
    let k: u64 = cli.get("k").unwrap_or(2);
    let cfg = cli.adults_config();

    let threads = cli.threads();
    let mem_budget = cli.mem_budget();
    let trace = init_tracing(&cli, "table_nodes_searched");
    let mut report = BenchReport::new("table_nodes_searched");
    report.set("rows_adults", cfg.rows);
    report.set("k", k);
    report.set("threads", threads);
    report.set_mem_budget(mem_budget);

    eprintln!("generating Adults ({} rows)...", cfg.rows);
    let table = adults::adults(&cfg);

    let mut series = Series::new(
        "table_nodes_searched",
        &["QID size", "Bottom-Up", "Incognito", "Incognito candidates", "Incognito marked"],
    );
    for n in 3..=9usize {
        let qi: Vec<usize> = (0..n).collect();
        let (bu, bu_wall) = Algo::BottomUpRollup.run_with_opts(&table, &qi, k, threads, mem_budget);
        let (inc, inc_wall) = Algo::BasicIncognito.run_with_opts(&table, &qi, k, threads, mem_budget);
        series.push(vec![
            n.to_string(),
            bu.stats().nodes_checked().to_string(),
            inc.stats().nodes_checked().to_string(),
            inc.stats().candidates().to_string(),
            inc.stats().nodes_marked().to_string(),
        ]);
        eprintln!("  qi={n}: bottom-up={} incognito={}", bu.stats().nodes_checked(), inc.stats().nodes_checked());
        report.record_run(Algo::BottomUpRollup.label(), "adults", k, n, &bu, bu_wall);
        report.record_run(Algo::BasicIncognito.label(), "adults", k, n, &inc, inc_wall);
    }
    series.emit();
    println!("Paper (real Adults, k=2): 14/14, 47/35, 206/103, 680/246, 2088/664, 6366/1778, 12818/4307.");

    if cli.has("mem") {
        report.print_memory_table();
    }
    report.finish();
    if let Some(path) = trace {
        write_trace(&path);
    }
}
