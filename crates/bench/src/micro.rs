//! A minimal microbenchmark harness for the `benches/` targets.
//!
//! The workspace builds offline, so instead of an external benchmark
//! framework the bench targets are plain `fn main()` binaries
//! (`harness = false`) driving this: per case, one warmup call, then N
//! timed samples, reporting min / median / mean. Run with
//! `cargo bench -p incognito-bench`; pass `--quick` (after `--`) to cut
//! the sample count for smoke runs.

use std::time::{Duration, Instant};

/// True when `--quick` was passed on the command line.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// One named group of benchmark cases.
pub struct Micro {
    samples: usize,
}

impl Micro {
    /// Start a group: prints the header and picks the default sample count
    /// (10, or 3 under `--quick`).
    pub fn group(name: &str) -> Micro {
        println!("== {name}");
        Micro { samples: if quick() { 3 } else { 10 } }
    }

    /// Override the sample count (still reduced under `--quick`).
    pub fn samples(mut self, n: usize) -> Micro {
        self.samples = if quick() { n.min(3) } else { n };
        self
    }

    /// Run one case: a warmup call, then `samples` timed calls.
    pub fn case<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let started = Instant::now();
            std::hint::black_box(f());
            times.push(started.elapsed());
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {label:<28} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   (n={})",
            self.samples
        );
    }
}
