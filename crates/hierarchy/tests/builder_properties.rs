//! Property tests for the hierarchy builders: whatever the input, a built
//! hierarchy satisfies the structural laws the rest of the system assumes
//! (γ⁺ composition, nesting, onto-ness, monotone level sizes).
//!
//! Inputs are generated from the workspace's seeded PRNG
//! ([`incognito_obs::Rng`]) so every run checks the same case set —
//! failures reproduce by case number.

use std::collections::BTreeSet;

use incognito_hierarchy::{builders, Hierarchy};
use incognito_obs::Rng;

/// Structural laws every hierarchy must satisfy.
fn check_laws(h: &Hierarchy) {
    // Level sizes shrink (weakly) going up; composition of γ equals γ⁺.
    for l in 0..h.height() {
        assert!(h.level_size(l + 1) <= h.level_size(l), "level sizes must not grow");
        for g in 0..h.ground_size() as u32 {
            assert_eq!(h.parent(l, h.generalize(g, l)), h.generalize(g, l + 1));
        }
        // γ is onto: every value above has a child.
        for id in 0..h.level_size(l + 1) as u32 {
            assert!(!h.children(l + 1, id).is_empty());
        }
    }
    // between_map composes with map_to_level.
    for from in 0..=h.height() {
        for to in from..=h.height() {
            let m = h.between_map(from, to).unwrap();
            for g in 0..h.ground_size() as u32 {
                assert_eq!(m[h.generalize(g, from) as usize], h.generalize(g, to));
            }
        }
    }
    // Subtree leaves partition the ground domain at every level.
    for l in 0..=h.height() {
        let mut covered = vec![false; h.ground_size()];
        for id in 0..h.level_size(l) as u32 {
            for leaf in h.subtree_leaves(l, id) {
                assert!(!covered[leaf as usize], "leaf in two subtrees");
                covered[leaf as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "subtrees must cover the domain");
    }
}

/// A random set of `1..max_len` distinct values drawn from `draw`.
fn random_set<T: Ord>(rng: &mut Rng, max_len: usize, mut draw: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let target = rng.range_usize(1, max_len);
    let mut set = BTreeSet::new();
    // Domains are much larger than max_len, so this converges quickly.
    while set.len() < target {
        set.insert(draw(rng));
    }
    set.into_iter().collect()
}

#[test]
fn ranges_builder_laws() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xB11D_0000 + case);
        let values = random_set(&mut rng, 40, |r| r.range_usize(0, 1000) as i64 - 500);
        let base = rng.range_usize(2, 5) as i64;
        let depth = rng.range_usize(1, 4);
        let suppress = rng.gen_bool(0.5);

        let widths: Vec<i64> = (1..=depth as u32).map(|d| base.pow(d)).collect();
        let h = builders::ranges("X", &values, &widths, suppress).unwrap();
        assert_eq!(h.ground_size(), values.len(), "case {case}");
        let expected_height = depth as u8 + u8::from(suppress);
        assert_eq!(h.height(), expected_height, "case {case}");
        check_laws(&h);
        // Ground dictionary is numerically sorted.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (i, v) in sorted.iter().enumerate() {
            assert_eq!(h.label(0, i as u32), v.to_string(), "case {case}");
        }
        // Interval labels nest: same level-1 bucket ⇒ same level-2 bucket.
        if depth >= 2 {
            for a in 0..values.len() as u32 {
                for b in 0..values.len() as u32 {
                    if h.generalize(a, 1) == h.generalize(b, 1) {
                        assert_eq!(h.generalize(a, 2), h.generalize(b, 2), "case {case}");
                    }
                }
            }
        }
    }
}

#[test]
fn round_digits_builder_laws() {
    for case in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0xD161_0000 + case);
        let codes = random_set(&mut rng, 60, |r| r.below(100_000) as u32);
        let steps = rng.range_usize(1, 6);

        let labels: Vec<String> = codes.iter().map(|c| format!("{c:05}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let h = builders::round_digits("Zip", &refs, steps).unwrap();
        assert_eq!(h.height(), steps as u8, "case {case}");
        check_laws(&h);
        // The level-ℓ label of a value is its prefix plus ℓ stars.
        for (i, label) in labels.iter().enumerate() {
            for l in 1..=steps {
                let expect = format!("{}{}", &label[..5 - l], "*".repeat(l));
                assert_eq!(h.label(l as u8, h.generalize(i as u32, l as u8)), expect, "case {case}");
            }
        }
    }
}

#[test]
fn suppression_builder_laws() {
    // The input space is one small integer — check it exhaustively.
    for n in 1usize..50 {
        let labels: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let h = builders::suppression("S", &refs).unwrap();
        assert_eq!(h.height(), 1);
        assert_eq!(h.level_size(1), 1);
        check_laws(&h);
    }
}

/// Balanced taxonomy trees: build with a given shape, verify ground size
/// and laws. `shape[d]` = children per node at depth `d`; leaves at depth
/// `shape.len()`. The shape space (1–3 levels of fan-out 1–3) is small, so
/// it is enumerated exhaustively.
#[test]
fn taxonomy_builder_laws() {
    fn grow(shape: &[usize], depth: usize, counter: &mut u32) -> builders::TaxonomyNode {
        if depth == shape.len() {
            *counter += 1;
            return builders::TaxonomyNode::leaf(format!("leaf-{counter}"));
        }
        let children = (0..shape[depth]).map(|_| grow(shape, depth + 1, counter)).collect();
        *counter += 1;
        builders::TaxonomyNode::node(format!("n{depth}-{counter}"), children)
    }

    let mut shapes: Vec<Vec<usize>> = Vec::new();
    for a in 1..4 {
        shapes.push(vec![a]);
        for b in 1..4 {
            shapes.push(vec![a, b]);
            for c in 1..4 {
                shapes.push(vec![a, b, c]);
            }
        }
    }
    for shape in shapes {
        let mut counter = 0;
        let root = grow(&shape, 0, &mut counter);
        let h = builders::taxonomy("T", root).unwrap();
        assert_eq!(h.height() as usize, shape.len(), "shape {shape:?}");
        assert_eq!(h.ground_size(), shape.iter().product::<usize>(), "shape {shape:?}");
        check_laws(&h);
    }
}
