//! Property tests for the hierarchy builders: whatever the input, a built
//! hierarchy satisfies the structural laws the rest of the system assumes
//! (γ⁺ composition, nesting, onto-ness, monotone level sizes).

use proptest::prelude::*;

use incognito_hierarchy::{builders, Hierarchy};

/// Structural laws every hierarchy must satisfy.
fn check_laws(h: &Hierarchy) {
    // Level sizes shrink (weakly) going up; composition of γ equals γ⁺.
    for l in 0..h.height() {
        assert!(h.level_size(l + 1) <= h.level_size(l), "level sizes must not grow");
        for g in 0..h.ground_size() as u32 {
            assert_eq!(h.parent(l, h.generalize(g, l)), h.generalize(g, l + 1));
        }
        // γ is onto: every value above has a child.
        for id in 0..h.level_size(l + 1) as u32 {
            assert!(!h.children(l + 1, id).is_empty());
        }
    }
    // between_map composes with map_to_level.
    for from in 0..=h.height() {
        for to in from..=h.height() {
            let m = h.between_map(from, to).unwrap();
            for g in 0..h.ground_size() as u32 {
                assert_eq!(m[h.generalize(g, from) as usize], h.generalize(g, to));
            }
        }
    }
    // Subtree leaves partition the ground domain at every level.
    for l in 0..=h.height() {
        let mut covered = vec![false; h.ground_size()];
        for id in 0..h.level_size(l) as u32 {
            for leaf in h.subtree_leaves(l, id) {
                assert!(!covered[leaf as usize], "leaf in two subtrees");
                covered[leaf as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "subtrees must cover the domain");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ranges_builder_laws(
        values in proptest::collection::btree_set(-500i64..500, 1..40),
        base in 2i64..5,
        depth in 1usize..4,
        suppress in any::<bool>(),
    ) {
        let values: Vec<i64> = values.into_iter().collect();
        let widths: Vec<i64> = (1..=depth as u32).map(|d| base.pow(d)).collect();
        let h = builders::ranges("X", &values, &widths, suppress).unwrap();
        prop_assert_eq!(h.ground_size(), values.len());
        let expected_height = depth as u8 + u8::from(suppress);
        prop_assert_eq!(h.height(), expected_height);
        check_laws(&h);
        // Ground dictionary is numerically sorted.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (i, v) in sorted.iter().enumerate() {
            prop_assert_eq!(h.label(0, i as u32), &v.to_string());
        }
        // Interval labels nest: same level-1 bucket ⇒ same level-2 bucket.
        if depth >= 2 {
            for a in 0..values.len() as u32 {
                for b in 0..values.len() as u32 {
                    if h.generalize(a, 1) == h.generalize(b, 1) {
                        prop_assert_eq!(h.generalize(a, 2), h.generalize(b, 2));
                    }
                }
            }
        }
    }

    #[test]
    fn round_digits_builder_laws(
        codes in proptest::collection::btree_set(0u32..100_000, 1..60),
        steps in 1usize..=5,
    ) {
        let labels: Vec<String> = codes.iter().map(|c| format!("{c:05}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let h = builders::round_digits("Zip", &refs, steps).unwrap();
        prop_assert_eq!(h.height(), steps as u8);
        check_laws(&h);
        // The level-ℓ label of a value is its prefix plus ℓ stars.
        for (i, label) in labels.iter().enumerate() {
            for l in 1..=steps {
                let expect = format!("{}{}", &label[..5 - l], "*".repeat(l));
                prop_assert_eq!(h.label(l as u8, h.generalize(i as u32, l as u8)), &expect);
            }
        }
    }

    #[test]
    fn suppression_builder_laws(n in 1usize..50) {
        let labels: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let h = builders::suppression("S", &refs).unwrap();
        prop_assert_eq!(h.height(), 1);
        prop_assert_eq!(h.level_size(1), 1);
        check_laws(&h);
    }

    /// Random balanced taxonomy trees: build with the given shape, verify
    /// ground size and laws.
    #[test]
    fn taxonomy_builder_laws(shape in proptest::collection::vec(1usize..4, 1..4)) {
        // shape[d] = children per node at depth d; leaves at depth shape.len().
        fn grow(shape: &[usize], depth: usize, counter: &mut u32) -> builders::TaxonomyNode {
            if depth == shape.len() {
                *counter += 1;
                return builders::TaxonomyNode::leaf(format!("leaf-{counter}"));
            }
            let children = (0..shape[depth])
                .map(|_| grow(shape, depth + 1, counter))
                .collect();
            *counter += 1;
            builders::TaxonomyNode::node(format!("n{depth}-{counter}"), children)
        }
        let mut counter = 0;
        let root = grow(&shape, 0, &mut counter);
        let h = builders::taxonomy("T", root).unwrap();
        prop_assert_eq!(h.height() as usize, shape.len());
        prop_assert_eq!(h.ground_size(), shape.iter().product::<usize>());
        check_laws(&h);
    }
}
