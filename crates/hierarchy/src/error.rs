use std::fmt;

/// Errors raised while constructing or querying a [`crate::Hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// The ground domain was empty.
    EmptyDomain,
    /// A duplicate label appeared within one level.
    DuplicateLabel {
        /// Level at which the duplicate occurred.
        level: u8,
        /// The offending label.
        label: String,
    },
    /// A parent map entry referenced an id outside the next level's domain.
    ParentOutOfRange {
        /// Level the map generalizes *from*.
        level: u8,
        /// Child id with the bad parent pointer.
        child: u32,
        /// The out-of-range parent id.
        parent: u32,
    },
    /// A parent map's length did not match the size of its source level.
    ParentMapLength {
        /// Level the map generalizes *from*.
        level: u8,
        /// Expected number of entries (size of the source level).
        expected: usize,
        /// Number of entries supplied.
        actual: usize,
    },
    /// A value at some level had no children — γ must be onto so every
    /// generalized value corresponds to at least one ground value.
    UnreachableValue {
        /// Level containing the orphan value.
        level: u8,
        /// Its id.
        id: u32,
    },
    /// Taxonomy-tree leaves were not all at the same depth, which full-domain
    /// generalization requires.
    UnbalancedTaxonomy {
        /// Depth of the first leaf encountered.
        expected_depth: usize,
        /// Label of a leaf at a different depth.
        leaf: String,
        /// That leaf's depth.
        actual_depth: usize,
    },
    /// The requested level exceeds the hierarchy height.
    LevelOutOfRange {
        /// Requested level.
        level: u8,
        /// Height of the hierarchy.
        height: u8,
    },
    /// A label was looked up that does not exist in the ground domain.
    UnknownValue(String),
    /// A hierarchy must have at least two levels to be useful; a chain of
    /// length one is permitted only via [`crate::builders::identity`].
    NoGeneralizations,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::EmptyDomain => write!(f, "ground domain is empty"),
            HierarchyError::DuplicateLabel { level, label } => {
                write!(f, "duplicate label {label:?} at level {level}")
            }
            HierarchyError::ParentOutOfRange { level, child, parent } => write!(
                f,
                "parent map at level {level}: child {child} points to out-of-range parent {parent}"
            ),
            HierarchyError::ParentMapLength { level, expected, actual } => write!(
                f,
                "parent map at level {level} has {actual} entries, expected {expected}"
            ),
            HierarchyError::UnreachableValue { level, id } => {
                write!(f, "value {id} at level {level} has no children")
            }
            HierarchyError::UnbalancedTaxonomy { expected_depth, leaf, actual_depth } => write!(
                f,
                "taxonomy leaf {leaf:?} at depth {actual_depth}, expected all leaves at depth {expected_depth}"
            ),
            HierarchyError::LevelOutOfRange { level, height } => {
                write!(f, "level {level} out of range for hierarchy of height {height}")
            }
            HierarchyError::UnknownValue(v) => write!(f, "unknown ground value {v:?}"),
            HierarchyError::NoGeneralizations => {
                write!(f, "hierarchy must define at least one generalization step")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}
