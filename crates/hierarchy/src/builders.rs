//! Constructors for the generalization styles used in the paper's
//! experimental schemas (Figure 9): categorical taxonomy trees, digit
//! rounding, numeric ranges, and plain attribute suppression.

use crate::{Hierarchy, HierarchyError, ValueId};

/// A node of a categorical taxonomy tree (e.g. the Marital Status or
/// Education hierarchies of the Adults schema).
///
/// Leaves become the ground domain (in depth-first order); each interior
/// level of the tree becomes one generalization level. All leaves must sit at
/// the same depth, because full-domain generalization maps an entire domain
/// to a single more general domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyNode {
    /// Human-readable label of this node.
    pub label: String,
    /// Child nodes; empty for leaves.
    pub children: Vec<TaxonomyNode>,
}

impl TaxonomyNode {
    /// An interior node.
    pub fn node(label: impl Into<String>, children: Vec<TaxonomyNode>) -> Self {
        TaxonomyNode { label: label.into(), children }
    }

    /// A leaf value.
    pub fn leaf(label: impl Into<String>) -> Self {
        TaxonomyNode { label: label.into(), children: Vec::new() }
    }

    fn depth_of_leaves(&self, depth: usize, first: &mut Option<usize>) -> Result<(), HierarchyError> {
        if self.children.is_empty() {
            match *first {
                None => *first = Some(depth),
                Some(d) if d != depth => {
                    return Err(HierarchyError::UnbalancedTaxonomy {
                        expected_depth: d,
                        leaf: self.label.clone(),
                        actual_depth: depth,
                    })
                }
                Some(_) => {}
            }
            return Ok(());
        }
        for c in &self.children {
            c.depth_of_leaves(depth + 1, first)?;
        }
        Ok(())
    }
}

/// Build a [`Hierarchy`] from a balanced taxonomy tree.
///
/// The tree root becomes the single value of the top level; its label is
/// conventionally `"*"` or a category name like `"Person"` (Figure 2 f).
pub fn taxonomy(name: impl Into<String>, root: TaxonomyNode) -> Result<Hierarchy, HierarchyError> {
    let mut leaf_depth = None;
    root.depth_of_leaves(0, &mut leaf_depth)?;
    let height = leaf_depth.expect("tree has at least the root");
    // levels[l] for l in 0..=height; level `height` is the root.
    let mut levels: Vec<Vec<String>> = vec![Vec::new(); height + 1];
    let mut parent_maps: Vec<Vec<ValueId>> = vec![Vec::new(); height];

    // Depth-first walk assigning ids level by level. `stack` holds
    // (node, depth-from-root, parent-id-at-that-level).
    fn walk(
        node: &TaxonomyNode,
        depth: usize,
        height: usize,
        parent_id: Option<ValueId>,
        levels: &mut [Vec<String>],
        parent_maps: &mut [Vec<ValueId>],
    ) {
        let level = height - depth;
        let my_id = levels[level].len() as ValueId;
        levels[level].push(node.label.clone());
        if let Some(p) = parent_id {
            // parent_maps[level] maps level -> level + 1.
            parent_maps[level].push(p);
        }
        for c in &node.children {
            walk(c, depth + 1, height, Some(my_id), levels, parent_maps);
        }
    }
    walk(&root, 0, height, None, &mut levels, &mut parent_maps);
    Hierarchy::from_levels(name, levels, parent_maps)
}

/// Suppression-only hierarchy: ground values generalize directly to `"*"`
/// (height 1). Used for Gender, Race, Salary class, Quantity, Shipment, and
/// Style in the paper's schemas.
pub fn suppression(
    name: impl Into<String>,
    values: &[&str],
) -> Result<Hierarchy, HierarchyError> {
    let ground: Vec<String> = values.iter().map(|s| s.to_string()).collect();
    let map = vec![0; ground.len()];
    Hierarchy::from_levels(name, vec![ground, vec!["*".into()]], vec![map])
}

/// Height-0 hierarchy for attributes that are never generalized (sensitive
/// attributes kept alongside the quasi-identifier).
pub fn identity(name: impl Into<String>, values: &[&str]) -> Result<Hierarchy, HierarchyError> {
    let ground: Vec<String> = values.iter().map(|s| s.to_string()).collect();
    Hierarchy::from_levels(name, vec![ground], vec![])
}

/// Digit-rounding hierarchy for fixed-width codes such as zipcodes: each step
/// replaces one more trailing character with `*` ("Round each digit" in
/// Figure 9). With `steps` equal to the code width the top level is full
/// suppression.
///
/// All values must have the same width and `steps` must not exceed it.
pub fn round_digits(
    name: impl Into<String>,
    values: &[&str],
    steps: usize,
) -> Result<Hierarchy, HierarchyError> {
    if values.is_empty() {
        return Err(HierarchyError::EmptyDomain);
    }
    let width = values[0].chars().count();
    for v in values {
        if v.chars().count() != width {
            return Err(HierarchyError::UnknownValue(format!(
                "value {v:?} does not have uniform width {width}"
            )));
        }
    }
    if steps > width {
        return Err(HierarchyError::LevelOutOfRange { level: steps as u8, height: width as u8 });
    }
    let rounded = |v: &str, s: usize| -> String {
        let keep: String = v.chars().take(width - s).collect();
        format!("{keep}{}", "*".repeat(s))
    };
    build_derived(name, values, (1..=steps).map(|s| move |v: &str| rounded(v, s)))
}

/// Numeric-range hierarchy: the ground domain is the distinct numeric values;
/// each width `w` in `widths` adds a level of `[lo, lo+w)` intervals aligned
/// to multiples of `w` (the "5-, 10-, 20-year ranges" of the Adults Age
/// attribute). If `suppress_top` is set, a final `*` level is appended, which
/// matches Figure 9's height of 4 for Age.
///
/// Each width must be a multiple of the previous one so the intervals nest,
/// as full-domain generalization requires.
pub fn ranges(
    name: impl Into<String>,
    values: &[i64],
    widths: &[i64],
    suppress_top: bool,
) -> Result<Hierarchy, HierarchyError> {
    if values.is_empty() {
        return Err(HierarchyError::EmptyDomain);
    }
    let mut prev = 1i64;
    for &w in widths {
        if w <= 0 || w % prev != 0 {
            return Err(HierarchyError::UnknownValue(format!(
                "range width {w} does not nest over {prev}"
            )));
        }
        prev = w;
    }
    let mut ground: Vec<i64> = values.to_vec();
    ground.sort_unstable();
    ground.dedup();
    let ground_labels: Vec<String> = ground.iter().map(|v| v.to_string()).collect();
    let ground_refs: Vec<&str> = ground_labels.iter().map(|s| s.as_str()).collect();

    type Derivation = Box<dyn Fn(&str) -> String>;
    let bucket = |v: i64, w: i64| -> i64 { v.div_euclid(w) * w };
    let mut derivations: Vec<Derivation> = Vec::new();
    for &w in widths {
        derivations.push(Box::new(move |s: &str| {
            let v: i64 = s.parse().expect("ground labels are integers");
            let lo = bucket(v, w);
            format!("[{}-{})", lo, lo + w)
        }));
    }
    if suppress_top {
        derivations.push(Box::new(|_s: &str| "*".to_string()));
    }
    // The derivation functions operate on *ground* labels; build_derived
    // handles deduplication and parent-map construction level by level.
    build_derived(name, &ground_refs, derivations.into_iter())
}

/// Shared construction for hierarchies where each level's label is a function
/// of the ground label. Consecutive levels must nest: two ground values with
/// equal labels at level `l` must also have equal labels at level `l + 1`.
fn build_derived<F>(
    name: impl Into<String>,
    ground: &[&str],
    derivations: impl Iterator<Item = F>,
) -> Result<Hierarchy, HierarchyError>
where
    F: Fn(&str) -> String,
{
    let ground_labels: Vec<String> = ground.iter().map(|s| s.to_string()).collect();
    let mut levels: Vec<Vec<String>> = vec![ground_labels];
    let mut parent_maps: Vec<Vec<ValueId>> = Vec::new();
    // prev_ground_ids[g] = id of ground value g at the previous level.
    let mut prev_ids: Vec<ValueId> = (0..ground.len() as u32).collect();

    for derive in derivations {
        let mut labels: Vec<String> = Vec::new();
        let mut index: std::collections::HashMap<String, ValueId> = std::collections::HashMap::new();
        let mut cur_ids: Vec<ValueId> = Vec::with_capacity(ground.len());
        for g in ground {
            let lbl = derive(g);
            let id = *index.entry(lbl.clone()).or_insert_with(|| {
                labels.push(lbl);
                (labels.len() - 1) as ValueId
            });
            cur_ids.push(id);
        }
        // Build the parent map prev-level -> current-level and check nesting.
        let prev_size = levels.last().expect("nonempty").len();
        let mut map: Vec<Option<ValueId>> = vec![None; prev_size];
        for (g, (&pid, &cid)) in prev_ids.iter().zip(cur_ids.iter()).enumerate() {
            match map[pid as usize] {
                None => map[pid as usize] = Some(cid),
                Some(existing) if existing != cid => {
                    return Err(HierarchyError::UnknownValue(format!(
                        "derivation does not nest: ground {:?} splits level value",
                        ground[g]
                    )));
                }
                Some(_) => {}
            }
        }
        let map: Vec<ValueId> = map
            .into_iter()
            .map(|m| m.expect("every prev value has a ground witness"))
            .collect();
        parent_maps.push(map);
        levels.push(labels);
        prev_ids = cur_ids;
    }
    if levels.len() == 1 {
        return Err(HierarchyError::NoGeneralizations);
    }
    Hierarchy::from_levels(name, levels, parent_maps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_builder() {
        // Figure 2 (e, f): Sex generalizes to Person/'*'.
        let s = suppression("Sex", &["Male", "Female"]).unwrap();
        assert_eq!(s.height(), 1);
        assert_eq!(s.level_size(1), 1);
        assert_eq!(s.generalize(0, 1), s.generalize(1, 1));
    }

    #[test]
    fn identity_builder() {
        let h = identity("Disease", &["Flu", "Hepatitis"]).unwrap();
        assert_eq!(h.height(), 0);
    }

    #[test]
    fn round_digits_zipcode() {
        let z = round_digits("Zipcode", &["53715", "53710", "53706", "53703"], 5).unwrap();
        assert_eq!(z.height(), 5);
        let g = z.ground_id("53715").unwrap();
        assert_eq!(z.label(1, z.generalize(g, 1)), "5371*");
        assert_eq!(z.label(2, z.generalize(g, 2)), "537**");
        assert_eq!(z.label(5, z.generalize(g, 5)), "*****");
        assert_eq!(z.level_size(5), 1);
        // {53715, 53710} -> 5371*, {53706, 53703} -> 5370* at level 1.
        assert_eq!(z.level_size(1), 2);
        assert_eq!(z.level_size(2), 1);
    }

    #[test]
    fn round_digits_rejects_ragged_values() {
        assert!(round_digits("z", &["123", "4567"], 1).is_err());
        assert!(round_digits("z", &["123"], 4).is_err());
    }

    #[test]
    fn ranges_age() {
        let ages: Vec<i64> = (17..=90).collect(); // 74 distinct, like Adults
        let h = ranges("Age", &ages, &[5, 10, 20], true).unwrap();
        assert_eq!(h.height(), 4);
        let id30 = h.ground_id("30").unwrap();
        assert_eq!(h.label(1, h.generalize(id30, 1)), "[30-35)");
        assert_eq!(h.label(2, h.generalize(id30, 2)), "[30-40)");
        assert_eq!(h.label(3, h.generalize(id30, 3)), "[20-40)");
        assert_eq!(h.label(4, h.generalize(id30, 4)), "*");
        let id34 = h.ground_id("34").unwrap();
        assert_eq!(h.generalize(id30, 1), h.generalize(id34, 1));
        let id35 = h.ground_id("35").unwrap();
        assert_ne!(h.generalize(id30, 1), h.generalize(id35, 1));
        assert_eq!(h.generalize(id30, 2), h.generalize(id35, 2));
    }

    #[test]
    fn ranges_reject_non_nesting_widths() {
        assert!(ranges("x", &[1, 2, 3], &[4, 6], false).is_err());
        assert!(ranges("x", &[1], &[0], false).is_err());
    }

    #[test]
    fn ranges_handle_negatives() {
        let h = ranges("t", &[-7, -3, 2, 9], &[5], false).unwrap();
        let m7 = h.ground_id("-7").unwrap();
        assert_eq!(h.label(1, h.generalize(m7, 1)), "[-10--5)");
    }

    #[test]
    fn taxonomy_builder_balanced() {
        // A small work-class style tree of height 2.
        let root = TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::node(
                    "employed",
                    vec![TaxonomyNode::leaf("private"), TaxonomyNode::leaf("gov")],
                ),
                TaxonomyNode::node(
                    "not-employed",
                    vec![TaxonomyNode::leaf("unemployed"), TaxonomyNode::leaf("retired")],
                ),
            ],
        );
        let h = taxonomy("WorkClass", root).unwrap();
        assert_eq!(h.height(), 2);
        assert_eq!(h.ground_size(), 4);
        assert_eq!(h.level_size(1), 2);
        assert_eq!(h.level_size(2), 1);
        let private = h.ground_id("private").unwrap();
        let gov = h.ground_id("gov").unwrap();
        let retired = h.ground_id("retired").unwrap();
        assert_eq!(h.generalize(private, 1), h.generalize(gov, 1));
        assert_ne!(h.generalize(private, 1), h.generalize(retired, 1));
        assert_eq!(h.generalize(private, 2), h.generalize(retired, 2));
        assert_eq!(h.label(1, h.generalize(private, 1)), "employed");
    }

    #[test]
    fn taxonomy_rejects_unbalanced() {
        let root = TaxonomyNode::node(
            "*",
            vec![
                TaxonomyNode::leaf("shallow"),
                TaxonomyNode::node("deep", vec![TaxonomyNode::leaf("leafy")]),
            ],
        );
        let err = taxonomy("x", root).unwrap_err();
        assert!(matches!(err, HierarchyError::UnbalancedTaxonomy { .. }));
    }

    #[test]
    fn derived_levels_nest() {
        // Rounding by character always nests; ranges with nesting widths nest.
        let z = round_digits("z", &["11", "12", "21"], 2).unwrap();
        for g in 0..z.ground_size() as u32 {
            let l1 = z.generalize(g, 1);
            let via = z.parent(1, l1);
            assert_eq!(via, z.generalize(g, 2));
        }
    }
}
